"""PALM-style batch latch-free concurrent updates (paper §VI-B, Fig. 12).

The paper adapts the PALM tree's multi-threaded scheme [27] to samtrees:
instead of latching every node on an update path, a *batch* of updates is

1. sorted by source-vertex ID,
2. partitioned across threads so each samtree is owned by exactly one
   thread (latch-free by construction — threads share no tree), and
3. applied bottom-up inside each tree: the leaf modifications first,
   then the CSTable refreshes propagate towards the root in rounds
   (which is what :meth:`~repro.core.samtree.Samtree.insert` already
   does per operation).

Two execution back-ends are provided:

``simulate=False``
    A real ``ThreadPoolExecutor`` applies per-thread group lists
    concurrently.  Because CPython's GIL serialises pure-Python CPU
    work, this back-end demonstrates *correctness* of the latch-free
    partitioning (no torn trees, deterministic results) but not speed-up.

``simulate=True``
    The deterministic **makespan model**: the same partitioning is
    executed serially while metering each thread's assigned work; the
    reported batch latency is ``max(per-thread time) + sync_overhead``.
    This is the quantity the paper's Figure 11(c) plots — the critical
    path of the partitioned batch — and is the documented substitution
    for the GIL (see DESIGN.md).  Both back-ends run byte-identical
    batching code.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import List, Sequence

from repro.concurrency.batch import OpGroup, group_batch, partition_groups, sort_batch
from repro.core.topology import DynamicGraphStore
from repro.core.types import EdgeOp
from repro.errors import ConfigurationError

__all__ = ["BatchResult", "PalmExecutor"]


@dataclass
class BatchResult:
    """Outcome of one batch application."""

    num_ops: int
    num_groups: int
    num_threads: int
    #: Wall-clock (real mode) or modeled critical path (simulate mode),
    #: in seconds.
    elapsed: float
    #: Per-thread busy time in seconds (simulate mode; empty otherwise).
    thread_times: List[float] = field(default_factory=list)
    #: Results of the individual operations, in submission order.
    outcomes: List[bool] = field(default_factory=list)

    @property
    def makespan(self) -> float:
        """Alias for ``elapsed`` emphasising the critical-path meaning."""
        return self.elapsed


class PalmExecutor:
    """Applies :class:`EdgeOp` batches to a :class:`DynamicGraphStore`
    with the paper's sort → partition → latch-free-apply scheme.

    Parameters
    ----------
    store:
        The samtree store to mutate.
    num_threads:
        Worker count (paper Figure 11c sweeps 1–32).
    simulate:
        Use the makespan model instead of real threads (see module docs).
    sync_overhead:
        Modeled per-batch synchronisation cost in seconds added by the
        simulate back-end (barrier + redistribution, paper Fig. 12).
    """

    def __init__(
        self,
        store: DynamicGraphStore,
        num_threads: int = 4,
        simulate: bool = False,
        sync_overhead: float = 0.0,
        tree_batching: bool = True,
    ) -> None:
        if num_threads < 1:
            raise ConfigurationError(
                f"num_threads must be >= 1, got {num_threads}"
            )
        self.store = store
        self.num_threads = num_threads
        self.simulate = simulate
        self.sync_overhead = float(sync_overhead)
        # Intra-tree bottom-up batching (paper Appendix B) when the store
        # supports it; falls back to per-op application otherwise.
        self.tree_batching = tree_batching and hasattr(
            store, "apply_source_batch"
        )

    # ------------------------------------------------------------------
    def apply_batch(self, ops: Sequence[EdgeOp]) -> BatchResult:
        """Apply one batch; returns per-batch timing and op outcomes."""
        ordered = sort_batch(ops)
        groups = group_batch(ordered)
        assignments = partition_groups(groups, self.num_threads)
        if self.simulate:
            return self._apply_simulated(ops, groups, assignments)
        return self._apply_threaded(ops, groups, assignments)

    # ------------------------------------------------------------------
    def _apply_group(self, group: OpGroup) -> List[bool]:
        store = self.store
        if self.tree_batching:
            tree_ops = [
                (op.kind.value, op.dst, op.weight) for op in group.ops
            ]
            return store.apply_source_batch(group.src, group.etype, tree_ops)
        return [store.apply(op) for op in group.ops]

    def _apply_threaded(
        self,
        ops: Sequence[EdgeOp],
        groups: List[OpGroup],
        assignments: List[List[OpGroup]],
    ) -> BatchResult:
        start = time.perf_counter()
        results: dict = {}

        def run(thread_groups: List[OpGroup]) -> None:
            for group in thread_groups:
                results[group.key] = self._apply_group(group)

        busy = [a for a in assignments if a]
        if len(busy) <= 1:
            for a in busy:
                run(a)
        else:
            with ThreadPoolExecutor(max_workers=len(busy)) as pool:
                list(pool.map(run, busy))
        elapsed = time.perf_counter() - start
        return BatchResult(
            num_ops=len(ops),
            num_groups=len(groups),
            num_threads=self.num_threads,
            elapsed=elapsed,
            outcomes=self._collect(ops, results),
        )

    def _apply_simulated(
        self,
        ops: Sequence[EdgeOp],
        groups: List[OpGroup],
        assignments: List[List[OpGroup]],
    ) -> BatchResult:
        results: dict = {}
        thread_times: List[float] = []
        for thread_groups in assignments:
            t0 = time.perf_counter()
            for group in thread_groups:
                results[group.key] = self._apply_group(group)
            thread_times.append(time.perf_counter() - t0)
        makespan = (max(thread_times) if thread_times else 0.0) + self.sync_overhead
        return BatchResult(
            num_ops=len(ops),
            num_groups=len(groups),
            num_threads=self.num_threads,
            elapsed=makespan,
            thread_times=thread_times,
            outcomes=self._collect(ops, results),
        )

    @staticmethod
    def _collect(ops: Sequence[EdgeOp], results: dict) -> List[bool]:
        """Re-assemble per-op outcomes in the original submission order."""
        cursors: dict = {}
        outcomes: List[bool] = []
        for op in ops:
            key = (op.etype, op.src)
            i = cursors.get(key, 0)
            outcomes.append(results[key][i])
            cursors[key] = i + 1
        return outcomes
