"""Batch-based latch-free concurrency (paper §VI-B): PALM-style batching,
thread partitioning, and the batch executor.
"""

from repro.concurrency.batch import (
    OpGroup,
    group_batch,
    partition_groups,
    sort_batch,
)
from repro.concurrency.palm import BatchResult, PalmExecutor

__all__ = [
    "OpGroup",
    "group_batch",
    "partition_groups",
    "sort_batch",
    "BatchResult",
    "PalmExecutor",
]
