"""Update batching for the PALM-style concurrent executor (paper §VI-B).

The executor's first two stages operate on plain data, so they live in
their own module: a batch of :class:`~repro.core.types.EdgeOp` is

1. **sorted by source key** — the paper sorts "queries according to the
   IDs of vertices" so updates to one samtree become contiguous;
2. **grouped per (etype, src)** — one group is one tree's worth of work
   and is always executed by a single thread (that is what makes the
   scheme latch-free: no two threads ever touch the same tree);
3. **partitioned across threads** with a greedy longest-processing-time
   assignment, balancing per-thread op counts even when the degree
   distribution is highly skewed (a handful of WeChat-scale hub vertices
   would otherwise serialise the batch).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.types import EdgeOp
from repro.errors import ConfigurationError

__all__ = ["OpGroup", "sort_batch", "group_batch", "partition_groups"]


@dataclass
class OpGroup:
    """All operations of one batch that target one samtree."""

    etype: int
    src: int
    ops: List[EdgeOp] = field(default_factory=list)

    @property
    def key(self) -> Tuple[int, int]:
        return (self.etype, self.src)

    def __len__(self) -> int:
        return len(self.ops)


def sort_batch(ops: Sequence[EdgeOp]) -> List[EdgeOp]:
    """Stable-sort a batch by (etype, src) — PALM stage 1.

    Stability preserves the submission order of operations that target
    the same edge, so ``insert(e); delete(e)`` in one batch still nets
    out to a deletion.
    """
    return sorted(ops, key=lambda op: (op.etype, op.src))


def group_batch(ops: Sequence[EdgeOp]) -> List[OpGroup]:
    """Group a batch per target tree, preserving intra-group order."""
    groups: Dict[Tuple[int, int], OpGroup] = {}
    for op in ops:
        key = (op.etype, op.src)
        group = groups.get(key)
        if group is None:
            group = OpGroup(op.etype, op.src)
            groups[key] = group
        group.ops.append(op)
    # Deterministic order: by key, like the sorted batch.
    return [groups[k] for k in sorted(groups)]


def partition_groups(
    groups: Sequence[OpGroup], num_threads: int
) -> List[List[OpGroup]]:
    """Assign groups to threads, balancing total op counts (LPT greedy).

    Returns ``num_threads`` lists (some possibly empty).  Groups are never
    split: a tree belongs to exactly one thread, which is the latch-free
    guarantee.
    """
    if num_threads < 1:
        raise ConfigurationError(
            f"num_threads must be >= 1, got {num_threads}"
        )
    assignments: List[List[OpGroup]] = [[] for _ in range(num_threads)]
    if not groups:
        return assignments
    # Longest-processing-time first onto the least-loaded thread.
    order = sorted(range(len(groups)), key=lambda i: -len(groups[i]))
    heap: List[Tuple[int, int]] = [(0, t) for t in range(num_threads)]
    heapq.heapify(heap)
    for i in order:
        load, t = heapq.heappop(heap)
        assignments[t].append(groups[i])
        heapq.heappush(heap, (load + len(groups[i]), t))
    return assignments
