"""Timing utilities for the benchmark harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, List

__all__ = ["Timer", "timed"]


@dataclass
class Timer:
    """Accumulating stopwatch with per-lap records."""

    laps: List[float] = field(default_factory=list)
    _start: float = 0.0

    def start(self) -> None:
        self._start = time.perf_counter()

    def stop(self) -> float:
        lap = time.perf_counter() - self._start
        self.laps.append(lap)
        return lap

    @property
    def total(self) -> float:
        return sum(self.laps)

    @property
    def mean(self) -> float:
        return self.total / len(self.laps) if self.laps else 0.0

    @property
    def count(self) -> int:
        return len(self.laps)

    def reset(self) -> None:
        self.laps.clear()


@contextmanager
def timed(timer: Timer) -> Iterator[None]:
    """``with timed(t): ...`` records one lap."""
    timer.start()
    try:
        yield
    finally:
        timer.stop()
