"""Shared benchmark workloads: store factories, build/update/sampling
drivers, and full-scale memory extrapolation.

Every table/figure driver in ``benchmarks/`` is a thin parameterisation
of these functions, so the systems are always exercised through the same
code path.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.aligraph import AliGraphStore
from repro.baselines.platogl import PlatoGLStore
from repro.core.memory import DEFAULT_MEMORY_MODEL, MemoryModel
from repro.core.samtree import SamtreeConfig
from repro.core.topology import DynamicGraphStore
from repro.core.types import GraphStoreAPI
from repro.datasets.presets import DATASET_SPECS, GraphData
from repro.datasets.stream import EdgeStream
from repro.errors import ConfigurationError, StoreOutOfMemoryError
from repro.gnn.samplers import sample_subgraph

__all__ = [
    "STORE_NAMES",
    "CLUSTER_BUDGET_BYTES",
    "make_store",
    "build_store",
    "BuildResult",
    "run_update_batches",
    "neighbor_sampling_sweep",
    "subgraph_sampling_sweep",
    "full_scale_bytes",
    "sources_of",
]

#: The systems of the paper's comparison, plus the w/o-CP ablation.
STORE_NAMES = ("AliGraph", "PlatoGL", "PlatoD2GL", "PlatoD2GL (w/o CP)")


def make_store(
    name: str,
    capacity: int = 256,
    alpha: int = 0,
) -> GraphStoreAPI:
    """Instantiate a system by its paper name."""
    if name == "PlatoD2GL":
        return DynamicGraphStore(
            SamtreeConfig(capacity=capacity, alpha=alpha, compress=True)
        )
    if name == "PlatoD2GL (w/o CP)":
        return DynamicGraphStore(
            SamtreeConfig(capacity=capacity, alpha=alpha, compress=False)
        )
    if name == "PlatoGL":
        # The baseline runs at its own best parameter (paper §VII-A),
        # independent of the samtree capacity sweep.
        return PlatoGLStore()
    if name == "AliGraph":
        return AliGraphStore()
    raise ConfigurationError(
        f"unknown system {name!r}; known: {STORE_NAMES}"
    )


def _peak_bytes(store: GraphStoreAPI, model: MemoryModel) -> int:
    """Budget checks use the build-time peak where the store has one
    (AliGraph's load pipeline), otherwise the steady footprint."""
    peak = getattr(store, "peak_nbytes", None)
    if peak is not None:
        return peak(model)
    return store.nbytes(model)


@dataclass
class BuildResult:
    """Outcome of a dynamic graph build."""

    store: GraphStoreAPI
    seconds: float
    num_ops: int
    out_of_memory: bool = False

    @property
    def ops_per_second(self) -> float:
        return self.num_ops / self.seconds if self.seconds > 0 else 0.0


def build_store(
    store: GraphStoreAPI,
    data: GraphData,
    batch_size: int = 4096,
    memory_budget: Optional[int] = None,
    model: MemoryModel = DEFAULT_MEMORY_MODEL,
    enforce_cluster_budget_for: Optional[str] = None,
    use_bulk: bool = False,
) -> BuildResult:
    """Dynamically insert every dataset edge (Figure 8's workload).

    ``memory_budget`` (bytes) aborts the build once the modeled footprint
    exceeds the budget.  ``enforce_cluster_budget_for`` (a dataset name)
    instead aborts when the *full-scale extrapolated* build peak exceeds
    the paper's cluster budget — reproducing the "o.o.m" entries the way
    they happen in production: partway through loading.

    ``use_bulk=True`` streams the same batches columnar through the
    store's bulk ingestion path (``bulk_load``) instead of one
    ``apply`` per edge — same final state, the Fig. 8 comparison axis
    of the bulk-ingestion benchmark.
    """
    stream = EdgeStream(data)
    num_ops = 0
    start = time.perf_counter()
    batches = (
        stream.build_batches_columnar(batch_size)
        if use_bulk
        else stream.build_batches(batch_size)
    )
    for batch in batches:
        if use_bulk:
            store.bulk_load(batch)
        else:
            for op in batch:
                store.apply(op)
        num_ops += len(batch)
        oom = False
        if memory_budget is not None:
            oom = _peak_bytes(store, model) > memory_budget
        if not oom and enforce_cluster_budget_for is not None:
            # Let per-edge cost stabilise before extrapolating.
            if num_ops >= min(10 * batch_size, data.num_edges):
                oom = (
                    full_scale_bytes(
                        store,
                        data,
                        enforce_cluster_budget_for,
                        model,
                        use_peak=True,
                    )
                    > CLUSTER_BUDGET_BYTES
                )
        if oom:
            return BuildResult(
                store,
                time.perf_counter() - start,
                num_ops,
                out_of_memory=True,
            )
    return BuildResult(store, time.perf_counter() - start, num_ops)


def run_update_batches(
    store: GraphStoreAPI,
    stream: EdgeStream,
    batch_size: int,
    num_batches: int,
    mix: Tuple[float, float, float] = (0.5, 0.3, 0.2),
    use_bulk: bool = False,
) -> float:
    """Apply churn batches; returns mean seconds per batch (Figure 9).

    ``use_bulk=True`` applies each batch through the columnar
    ``apply_edge_batch`` path (one lexsort + per-tree rebuild/PALM
    dispatch) instead of one ``apply`` per op; only application time is
    measured either way.
    """
    total = 0.0
    count = 0
    if use_bulk:
        for cbatch in stream.churn_batches_columnar(
            batch_size, num_batches, mix
        ):
            start = time.perf_counter()
            store.apply_edge_batch(cbatch)
            total += time.perf_counter() - start
            count += 1
        return total / count if count else 0.0
    for batch in stream.churn_batches(batch_size, num_batches, mix):
        start = time.perf_counter()
        for op in batch:
            store.apply(op)
        total += time.perf_counter() - start
        count += 1
    return total / count if count else 0.0


def sources_of(store: GraphStoreAPI, limit: Optional[int] = None) -> List[int]:
    """Materialise (a prefix of) the store's source vertices."""
    out: List[int] = []
    for src in store.sources():
        out.append(src)
        if limit is not None and len(out) >= limit:
            break
    return out


def neighbor_sampling_sweep(
    store: GraphStoreAPI,
    sources: Sequence[int],
    batch_sizes: Sequence[int],
    k: int = 50,
    seed: int = 0,
) -> Dict[int, float]:
    """Neighbor-sampling latency per batch size (Figures 10a-c).

    For each batch size, samples ``k`` neighbors for every vertex of a
    batch drawn (with replacement) from ``sources``; returns seconds per
    batch.
    """
    rng = random.Random(seed)
    results: Dict[int, float] = {}
    for batch_size in batch_sizes:
        batch = [sources[rng.randrange(len(sources))] for _ in range(batch_size)]
        start = time.perf_counter()
        store.sample_neighbors_batch(batch, k, rng)
        results[batch_size] = time.perf_counter() - start
    return results


def subgraph_sampling_sweep(
    store: GraphStoreAPI,
    sources: Sequence[int],
    batch_sizes: Sequence[int],
    fanouts: Sequence[int] = (10, 10),
    seed: int = 0,
) -> Dict[int, float]:
    """2-hop subgraph-sampling latency per batch size (Figures 10d-f)."""
    rng = random.Random(seed)
    results: Dict[int, float] = {}
    for batch_size in batch_sizes:
        batch = [sources[rng.randrange(len(sources))] for _ in range(batch_size)]
        start = time.perf_counter()
        for seed_vertex in batch:
            sample_subgraph(store, seed_vertex, fanouts, rng)
        results[batch_size] = time.perf_counter() - start
    return results


#: The paper's storage tier: 54 of 74 servers × 110 GB DRAM (§VII-A).
CLUSTER_BUDGET_BYTES = 54 * 110 * (1 << 30)


def full_scale_bytes(
    store: GraphStoreAPI,
    data: GraphData,
    dataset_name: str,
    model: MemoryModel = DEFAULT_MEMORY_MODEL,
    use_peak: bool = False,
) -> float:
    """Extrapolate the store's modeled footprint to the published size.

    The per-edge cost of every store is scale-free (the directory adds a
    per-source term, also scaled), so ``bytes/edge × published edges``
    estimates the paper-scale footprint of Table IV.  ``use_peak``
    extrapolates the build-time peak instead (o.o.m checks against the
    paper's cluster budget, :data:`CLUSTER_BUDGET_BYTES`).
    """
    specs = DATASET_SPECS[dataset_name]
    # Table III's #edges columns report the bi-directed stored totals, so
    # per-stored-edge cost times the published count is directly
    # comparable with Table IV.
    published_edges = sum(s.num_edges for s in specs)
    measured_edges = store.num_edges
    if measured_edges == 0:
        return 0.0
    measured = _peak_bytes(store, model) if use_peak else store.nbytes(model)
    return measured / measured_edges * published_edges
