"""Benchmark harness: timers, report formatting, and shared workloads."""

from repro.bench.report import format_series, format_table, reduction_pct, speedup
from repro.bench.timers import Timer, timed
from repro.bench.workloads import (
    CLUSTER_BUDGET_BYTES,
    STORE_NAMES,
    BuildResult,
    build_store,
    full_scale_bytes,
    make_store,
    neighbor_sampling_sweep,
    run_update_batches,
    sources_of,
    subgraph_sampling_sweep,
)

__all__ = [
    "format_series",
    "format_table",
    "reduction_pct",
    "speedup",
    "Timer",
    "timed",
    "STORE_NAMES",
    "CLUSTER_BUDGET_BYTES",
    "BuildResult",
    "build_store",
    "full_scale_bytes",
    "make_store",
    "neighbor_sampling_sweep",
    "run_update_batches",
    "sources_of",
    "subgraph_sampling_sweep",
]
