"""Table/series renderers that mirror the paper's figures and tables."""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

__all__ = ["format_table", "format_series", "speedup", "reduction_pct"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Fixed-width ASCII table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    xs: Sequence[object],
    series: Mapping[str, Sequence[float]],
    unit: str = "ms",
    title: Optional[str] = None,
) -> str:
    """Render figure-style data: one row per x, one column per system."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        row: List[object] = [x]
        for name in series:
            value = series[name][i]
            row.append("o.o.m" if value != value else f"{value:.3f}{unit}")
        rows.append(row)
    return format_table(headers, rows, title)


def speedup(baseline: float, ours: float) -> float:
    """``baseline / ours`` (the paper's "faster by up to N times")."""
    return baseline / ours if ours > 0 else float("inf")


def reduction_pct(baseline: float, ours: float) -> float:
    """Percentage reduction vs. a baseline (Table IV's ↓ column)."""
    return 100.0 * (1.0 - ours / baseline) if baseline > 0 else 0.0
