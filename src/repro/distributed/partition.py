"""Graph partitioning for the distributed storage layer (paper §I, §VIII).

The deployments the paper discusses spread a billion-edge graph over a
cluster of *graph servers*.  PlatoD2GL (like PlatoGL and AliGraph's
default) uses **hash-by-source**: every out-adjacency lives wholly on
``hash(src) % num_shards``, so a dynamic edge update touches exactly one
server and a neighbor-sampling request for one vertex is answered by one
server — the property that makes dynamic graphs tractable (static
partitioners such as METIS [19] would need a full re-partition per
update, which is the paper's criticism of the static systems).

A deterministic mixing hash (splitmix64) is used instead of Python's
``hash`` so shard placement is reproducible across runs and processes.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.errors import PartitionError

__all__ = [
    "Partitioner",
    "HashBySourcePartitioner",
    "splitmix64",
    "splitmix64_array",
]

_MASK64 = (1 << 64) - 1


def splitmix64(x: int) -> int:
    """SplitMix64 finaliser: a fast, well-mixed 64-bit integer hash."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def splitmix64_array(xs) -> np.ndarray:
    """Vectorized :func:`splitmix64` (bit-exact, one pass over uint64).

    The columnar ingest path hashes the whole ``src`` column at once;
    ``uint64`` arithmetic wraps modulo :math:`2^{64}`, matching the
    scalar masking.
    """
    x = np.asarray(xs).astype(np.uint64)
    with np.errstate(over="ignore"):
        x = x + np.uint64(0x9E3779B97F4A7C15)
        x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return x ^ (x >> np.uint64(31))


class Partitioner(abc.ABC):
    """Maps a source vertex to the shard that owns its out-adjacency."""

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise PartitionError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = num_shards

    @abc.abstractmethod
    def shard_for(self, src: int) -> int:
        """Shard index in ``[0, num_shards)`` owning ``src``."""

    def shards_for(self, srcs: Sequence[int]) -> list:
        """Vector form of :meth:`shard_for`."""
        return [self.shard_for(s) for s in srcs]

    def shards_for_array(self, srcs) -> np.ndarray:
        """Array form of :meth:`shard_for` (loop fallback; hash-based
        partitioners vectorize it)."""
        return np.asarray(
            [self.shard_for(int(s)) for s in np.asarray(srcs).ravel()],
            dtype=np.int64,
        )


class HashBySourcePartitioner(Partitioner):
    """Hash-by-source placement (the dynamic-graph-friendly default)."""

    def shard_for(self, src: int) -> int:
        return splitmix64(int(src)) % self.num_shards

    def shards_for_array(self, srcs) -> np.ndarray:
        """One vectorized hash pass over the whole ``src`` column —
        agrees element-wise with :meth:`shard_for`."""
        hashed = splitmix64_array(srcs)
        return (hashed % np.uint64(self.num_shards)).astype(np.int64)
