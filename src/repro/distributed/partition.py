"""Graph partitioning for the distributed storage layer (paper §I, §VIII).

The deployments the paper discusses spread a billion-edge graph over a
cluster of *graph servers*.  PlatoD2GL (like PlatoGL and AliGraph's
default) uses **hash-by-source**: every out-adjacency lives wholly on
``hash(src) % num_shards``, so a dynamic edge update touches exactly one
server and a neighbor-sampling request for one vertex is answered by one
server — the property that makes dynamic graphs tractable (static
partitioners such as METIS [19] would need a full re-partition per
update, which is the paper's criticism of the static systems).

A deterministic mixing hash (splitmix64) is used instead of Python's
``hash`` so shard placement is reproducible across runs and processes.
"""

from __future__ import annotations

import abc
from typing import Sequence

from repro.errors import PartitionError

__all__ = ["Partitioner", "HashBySourcePartitioner", "splitmix64"]

_MASK64 = (1 << 64) - 1


def splitmix64(x: int) -> int:
    """SplitMix64 finaliser: a fast, well-mixed 64-bit integer hash."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


class Partitioner(abc.ABC):
    """Maps a source vertex to the shard that owns its out-adjacency."""

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise PartitionError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = num_shards

    @abc.abstractmethod
    def shard_for(self, src: int) -> int:
        """Shard index in ``[0, num_shards)`` owning ``src``."""

    def shards_for(self, srcs: Sequence[int]) -> list:
        """Vector form of :meth:`shard_for`."""
        return [self.shard_for(s) for s in srcs]


class HashBySourcePartitioner(Partitioner):
    """Hash-by-source placement (the dynamic-graph-friendly default)."""

    def shard_for(self, src: int) -> int:
        return splitmix64(int(src)) % self.num_shards
