"""LocalCluster: an in-process stand-in for the paper's 74-server rig.

Builds the partitioner, the graph servers, and a routing client in one
call; exposes per-shard statistics so benchmarks and examples can report
shard balance the way a production deployment dashboard would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.memory import DEFAULT_MEMORY_MODEL, MemoryModel
from repro.core.samtree import SamtreeConfig
from repro.core.types import GraphStoreAPI
from repro.distributed.client import GraphClient
from repro.distributed.partition import HashBySourcePartitioner, Partitioner
from repro.distributed.rpc import NetworkModel
from repro.distributed.server import GraphServer
from repro.errors import ConfigurationError

__all__ = ["LocalCluster", "ShardInfo"]


@dataclass(frozen=True)
class ShardInfo:
    """Snapshot of one shard's load."""

    shard_id: int
    num_sources: int
    num_edges: int
    nbytes: int


class LocalCluster:
    """A fully wired single-process cluster.

    Parameters
    ----------
    num_servers:
        Shard count (the paper's storage tier uses 54 of 74 machines).
    config:
        Samtree parameters for the default PlatoD2GL store; ignored when
        ``store_factory`` is given.
    store_factory:
        Optional callable producing the per-shard topology store —
        passing ``PlatoGLStore`` or ``AliGraphStore`` runs the whole
        distributed stack over a baseline.
    network:
        Optional :class:`NetworkModel` accounting simulated traffic.
    """

    def __init__(
        self,
        num_servers: int = 4,
        config: Optional[SamtreeConfig] = None,
        store_factory: Optional[Callable[[], GraphStoreAPI]] = None,
        network: Optional[NetworkModel] = None,
        partitioner: Optional[Partitioner] = None,
    ) -> None:
        if num_servers < 1:
            raise ConfigurationError(
                f"num_servers must be >= 1, got {num_servers}"
            )
        self.partitioner = partitioner or HashBySourcePartitioner(num_servers)
        if self.partitioner.num_shards != num_servers:
            raise ConfigurationError(
                "partitioner shard count does not match num_servers"
            )
        self.servers: List[GraphServer] = []
        for shard in range(num_servers):
            store = store_factory() if store_factory is not None else None
            self.servers.append(GraphServer(shard, store=store, config=config))
        self.network = network
        self.client = GraphClient(self.servers, self.partitioner, network)

    def __len__(self) -> int:
        return len(self.servers)

    def shard_infos(self, model: MemoryModel = DEFAULT_MEMORY_MODEL) -> List[ShardInfo]:
        """Per-shard load snapshot (balance diagnostics)."""
        return [
            ShardInfo(
                shard_id=s.shard_id,
                num_sources=s.store.num_sources,
                num_edges=s.store.num_edges,
                nbytes=s.nbytes(model),
            )
            for s in self.servers
        ]

    def total_nbytes(self, model: MemoryModel = DEFAULT_MEMORY_MODEL) -> int:
        """Cluster-wide modeled memory."""
        return sum(s.nbytes(model) for s in self.servers)

    def reset_stats(self) -> None:
        """Clear server request counters (and network stats if present)."""
        for s in self.servers:
            s.stats.reset()
        if self.network is not None:
            self.network.stats.reset()
