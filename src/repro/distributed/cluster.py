"""LocalCluster: an in-process stand-in for the paper's 74-server rig.

Builds the partitioner, the graph servers, and a routing client in one
call; exposes per-shard statistics so benchmarks and examples can report
shard balance the way a production deployment dashboard would.

The fault-tolerant configuration adds, per shard:

* ``replication_factor=R`` — a replica group of R full servers
  (primary + R-1 backups); the client applies writes primary-backup and
  fails reads over to backups;
* ``durable=True`` — a per-replica write-ahead log
  (:class:`~repro.storage.wal.ShardWAL`) plus binary checkpoints, so a
  crashed replica recovers to exactly its pre-crash state;
* ``fault_policy`` — one seeded
  :class:`~repro.distributed.faults.FaultInjector` shared by every
  server, so a single seed reproduces the whole cluster's fault
  schedule;
* ``retry`` — the client-side :class:`~repro.distributed.retry.RetryPolicy`
  used by every read/write path.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.core.memory import DEFAULT_MEMORY_MODEL, MemoryModel
from repro.core.samtree import SamtreeConfig
from repro.core.types import GraphStoreAPI
from repro.distributed.client import GraphClient
from repro.distributed.faults import FaultInjector, FaultPolicy
from repro.distributed.partition import HashBySourcePartitioner, Partitioner
from repro.distributed.retry import RetryPolicy
from repro.distributed.rpc import NetworkModel
from repro.distributed.server import GraphServer
from repro.errors import ConfigurationError
from repro.obs.instrument import register_cluster
from repro.obs.registry import MetricsRegistry
from repro.storage.wal import ShardWAL

__all__ = ["LocalCluster", "ShardInfo"]


@dataclass(frozen=True)
class ShardInfo:
    """Snapshot of one shard's load (first live replica's view)."""

    shard_id: int
    num_sources: int
    num_edges: int
    nbytes: int
    live_replicas: int = 1


class LocalCluster:
    """A fully wired single-process cluster.

    Parameters
    ----------
    num_servers:
        Shard count (the paper's storage tier uses 54 of 74 machines).
    config:
        Samtree parameters for the default PlatoD2GL store; ignored when
        ``store_factory`` is given.
    store_factory:
        Optional callable producing the per-shard topology store —
        passing ``PlatoGLStore`` or ``AliGraphStore`` runs the whole
        distributed stack over a baseline.
    network:
        Optional :class:`NetworkModel` accounting simulated traffic.
    replication_factor:
        Replicas per shard (1 = no replication).
    durable:
        Attach a write-ahead log to every replica (crash recovery via
        checkpoint + WAL-tail replay).
    wal_dir:
        Directory for file-backed WALs; ``None`` keeps logs in memory
        (the default for tests and simulations).
    fault_policy:
        Optional :class:`FaultPolicy`; when given, one seeded
        :class:`FaultInjector` is shared by every server.
    fault_seed:
        Seed of the shared fault injector.
    retry:
        Optional client-side :class:`RetryPolicy`.
    degraded_reads:
        Return per-source ``UNAVAILABLE`` markers instead of raising
        when every replica of a shard is down.
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry`; a fresh
        one is created when omitted.  Every layer's stats holder —
        network, faults, retries, per-replica server/WAL/store — is
        registered into it as live views under the ``repro_*`` naming
        scheme (DESIGN.md §11), so ``cluster.registry.snapshot()`` /
        Prometheus export always reflect current counters.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer` handed to the client
        and every server, producing client→RPC→server span trees.
    """

    def __init__(
        self,
        num_servers: int = 4,
        config: Optional[SamtreeConfig] = None,
        store_factory: Optional[Callable[[], GraphStoreAPI]] = None,
        network: Optional[NetworkModel] = None,
        partitioner: Optional[Partitioner] = None,
        replication_factor: int = 1,
        durable: bool = False,
        wal_dir: Optional[str] = None,
        fault_policy: Optional[FaultPolicy] = None,
        fault_seed: int = 0,
        retry: Optional[RetryPolicy] = None,
        degraded_reads: bool = False,
        registry: Optional[MetricsRegistry] = None,
        tracer=None,
    ) -> None:
        if num_servers < 1:
            raise ConfigurationError(
                f"num_servers must be >= 1, got {num_servers}"
            )
        if replication_factor < 1:
            raise ConfigurationError(
                f"replication_factor must be >= 1, got {replication_factor}"
            )
        if wal_dir is not None and not durable:
            raise ConfigurationError("wal_dir requires durable=True")
        self.partitioner = partitioner or HashBySourcePartitioner(num_servers)
        if self.partitioner.num_shards != num_servers:
            raise ConfigurationError(
                "partitioner shard count does not match num_servers"
            )
        self.replication_factor = replication_factor
        self.fault_injector: Optional[FaultInjector] = (
            FaultInjector(fault_policy, seed=fault_seed, network=network)
            if fault_policy is not None
            else None
        )
        self.retry = retry
        if wal_dir is not None:
            os.makedirs(wal_dir, exist_ok=True)
        self.replica_groups: List[List[GraphServer]] = []
        for shard in range(num_servers):
            group: List[GraphServer] = []
            for r in range(replication_factor):
                store = store_factory() if store_factory is not None else None
                wal: Optional[ShardWAL] = None
                if durable:
                    path = (
                        os.path.join(wal_dir, f"shard{shard:04d}_r{r}.wal")
                        if wal_dir is not None
                        else None
                    )
                    wal = ShardWAL(path, shard_id=shard)
                group.append(
                    GraphServer(
                        shard,
                        store=store,
                        config=config,
                        wal=wal,
                        faults=self.fault_injector,
                        store_factory=store_factory,
                        replica_index=r,
                        tracer=tracer,
                    )
                )
            self.replica_groups.append(group)
        self.servers: List[GraphServer] = [g[0] for g in self.replica_groups]
        self.network = network
        self.tracer = tracer
        self.client = GraphClient(
            self.servers,
            self.partitioner,
            network,
            replica_groups=self.replica_groups,
            retry=retry,
            degraded_reads=degraded_reads,
            tracer=tracer,
        )
        self.registry = registry if registry is not None else MetricsRegistry()
        register_cluster(self.registry, self)
        #: Trainers whose phase telemetry :meth:`reset_stats` should
        #: clear alongside the server/network counters
        #: (:meth:`register_trainer`).
        self._trainers: List[object] = []

    def __len__(self) -> int:
        return len(self.servers)

    # ------------------------------------------------------------------
    # fault-tolerance control plane
    # ------------------------------------------------------------------
    def crash(self, shard: int, replica: int = 0) -> None:
        """Hard-crash one replica (volatile state lost)."""
        self.replica_groups[shard][replica].crash()

    def crash_shard(self, shard: int) -> None:
        """Crash *every* replica of a shard (total shard outage)."""
        for server in self.replica_groups[shard]:
            server.crash()

    def recover(self, shard: int, replica: int = 0, sync: bool = True) -> int:
        """Recover one replica; returns WAL records replayed.

        With ``sync=True`` and a live peer in the group, the replica
        rejoins via state transfer from that peer (it may have missed
        writes while down); otherwise it rebuilds from its own
        checkpoint + WAL tail.
        """
        target = self.replica_groups[shard][replica]
        peer: Optional[GraphServer] = None
        if sync:
            for candidate in self.replica_groups[shard]:
                if candidate is not target and candidate.alive:
                    peer = candidate
                    break
        return target.recover(sync_from=peer)

    def recover_all(self, sync: bool = True) -> int:
        """Recover every crashed replica; returns WAL records replayed."""
        replayed = 0
        for shard, group in enumerate(self.replica_groups):
            for r, server in enumerate(group):
                if not server.alive:
                    replayed += self.recover(shard, r, sync=sync)
        return replayed

    def checkpoint_all(self) -> int:
        """Checkpoint every live replica; returns total image bytes."""
        total = 0
        for group in self.replica_groups:
            for server in group:
                if server.alive:
                    total += server.checkpoint()
        return total

    def freeze_all(self, etype: Optional[int] = None) -> int:
        """Compile frozen CSC shards on every live replica.

        One control-plane call after a bulk load (or between training
        epochs) turns every shard's batched-read RPC into a single
        frozen-kernel pass; returns the number of shards compiled.
        Stale shards invalidate themselves through each store's
        mutation epoch, so calling this again after a write burst is
        always safe.
        """
        compiled = 0
        for group in self.replica_groups:
            for server in group:
                if server.alive:
                    compiled += server.freeze(etype)
        return compiled

    def dead_replicas(self) -> List[Tuple[int, int]]:
        """``(shard, replica)`` pairs currently down."""
        return [
            (shard, r)
            for shard, group in enumerate(self.replica_groups)
            for r, server in enumerate(group)
            if not server.alive
        ]

    def all_alive(self) -> bool:
        return not self.dead_replicas()

    # ------------------------------------------------------------------
    # dashboards
    # ------------------------------------------------------------------
    def shard_infos(self, model: MemoryModel = DEFAULT_MEMORY_MODEL) -> List[ShardInfo]:
        """Per-shard load snapshot (balance diagnostics).

        Reports the first live replica's view; a fully-down shard
        reports zeros with ``live_replicas=0``.
        """
        infos: List[ShardInfo] = []
        for shard, group in enumerate(self.replica_groups):
            live = [s for s in group if s.alive]
            if live:
                view = live[0]
                infos.append(
                    ShardInfo(
                        shard_id=shard,
                        num_sources=view.store.num_sources,
                        num_edges=view.store.num_edges,
                        nbytes=view.nbytes(model),
                        live_replicas=len(live),
                    )
                )
            else:
                infos.append(
                    ShardInfo(
                        shard_id=shard,
                        num_sources=0,
                        num_edges=0,
                        nbytes=0,
                        live_replicas=0,
                    )
                )
        return infos

    def total_nbytes(self, model: MemoryModel = DEFAULT_MEMORY_MODEL) -> int:
        """Cluster-wide modeled memory (primary replicas only, so the
        figure stays comparable across replication factors)."""
        return sum(s.nbytes(model) for s in self.servers)

    def register_trainer(self, trainer) -> None:
        """Tie a :class:`~repro.gnn.training.Trainer`'s telemetry
        lifecycle to this cluster: :meth:`reset_stats` will also zero
        its phase histograms and batch/seed counters (idempotent)."""
        if trainer not in self._trainers:
            self._trainers.append(trainer)

    def reset_stats(self) -> None:
        """Clear server, network, fault, and retry counters (plus any
        registry-owned metrics, archived traces, and the phase
        telemetry of every :meth:`register_trainer`-ed trainer).

        Registered *views* need no reset of their own — they read the
        stats holders live, so clearing the holders clears the views.
        """
        for group in self.replica_groups:
            for s in group:
                s.stats.reset()
                store = getattr(s, "store", None)
                if store is not None:
                    op_stats = getattr(store, "stats", None)
                    if op_stats is not None:
                        op_stats.reset()
                    cache = getattr(store, "snapshot_cache", None)
                    if cache is not None:
                        cache.stats.reset()
                    ingest = getattr(store, "ingest_stats", None)
                    if ingest is not None:
                        ingest.reset()
                    frozen = getattr(store, "frozen_stats", None)
                    if frozen is not None:
                        frozen.reset()
                wal = getattr(s, "wal", None)
                if wal is not None:
                    # Zero the append ledger in place; truncate() would
                    # also drop records a future recovery still needs.
                    wal.records_appended = 0
                    wal.bytes_appended = 0
        if self.network is not None:
            self.network.stats.reset()
        if self.fault_injector is not None:
            self.fault_injector.stats.reset()
        if self.retry is not None:
            self.retry.stats.reset()
        self.registry.reset_owned()
        for trainer in self._trainers:
            reset = getattr(trainer, "reset_phase_stats", None)
            if reset is not None:
                reset()
        if self.tracer is not None:
            self.tracer.reset()
