"""LocalCluster: an in-process stand-in for the paper's 74-server rig.

Builds the partitioner, the graph servers, and a routing client in one
call; exposes per-shard statistics so benchmarks and examples can report
shard balance the way a production deployment dashboard would.

The fault-tolerant configuration adds, per shard:

* ``replication_factor=R`` — a replica group of R full servers
  (primary + R-1 backups); the client applies writes primary-backup and
  fails reads over to backups;
* ``durable=True`` — a per-replica write-ahead log
  (:class:`~repro.storage.wal.ShardWAL`) plus binary checkpoints, so a
  crashed replica recovers to exactly its pre-crash state;
* ``fault_policy`` — one seeded
  :class:`~repro.distributed.faults.FaultInjector` shared by every
  server, so a single seed reproduces the whole cluster's fault
  schedule;
* ``retry`` — the client-side :class:`~repro.distributed.retry.RetryPolicy`
  used by every read/write path.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.core.ingest import OP_DELETE, EdgeBatch
from repro.core.memory import DEFAULT_MEMORY_MODEL, MemoryModel
from repro.core.samtree import SamtreeConfig
from repro.core.types import DEFAULT_ETYPE, GraphStoreAPI
from repro.distributed.client import GraphClient
from repro.distributed.faults import FaultInjector, FaultPolicy
from repro.distributed.hotset import (
    DEFAULT_DECAY_INTERVAL,
    HotSetTracker,
)
from repro.distributed.partition import HashBySourcePartitioner, Partitioner
from repro.distributed.retry import RetryPolicy
from repro.distributed.rpc import NetworkModel
from repro.distributed.server import GraphServer
from repro.errors import ConfigurationError
from repro.obs.instrument import register_cluster
from repro.obs.registry import MetricsRegistry
from repro.storage.wal import ShardWAL

__all__ = ["LocalCluster", "ShardInfo"]


@dataclass(frozen=True)
class ShardInfo:
    """Snapshot of one shard's load (first live replica's view)."""

    shard_id: int
    num_sources: int
    num_edges: int
    nbytes: int
    live_replicas: int = 1


class LocalCluster:
    """A fully wired single-process cluster.

    Parameters
    ----------
    num_servers:
        Shard count (the paper's storage tier uses 54 of 74 machines).
    config:
        Samtree parameters for the default PlatoD2GL store; ignored when
        ``store_factory`` is given.
    store_factory:
        Optional callable producing the per-shard topology store —
        passing ``PlatoGLStore`` or ``AliGraphStore`` runs the whole
        distributed stack over a baseline.
    network:
        Optional :class:`NetworkModel` accounting simulated traffic.
    replication_factor:
        Replicas per shard (1 = no replication).
    durable:
        Attach a write-ahead log to every replica (crash recovery via
        checkpoint + WAL-tail replay).
    wal_dir:
        Directory for file-backed WALs; ``None`` keeps logs in memory
        (the default for tests and simulations).
    fault_policy:
        Optional :class:`FaultPolicy`; when given, one seeded
        :class:`FaultInjector` is shared by every server.
    fault_seed:
        Seed of the shared fault injector.
    retry:
        Optional client-side :class:`RetryPolicy`.
    degraded_reads:
        Return per-source ``UNAVAILABLE`` markers instead of raising
        when every replica of a shard is down.
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry`; a fresh
        one is created when omitted.  Every layer's stats holder —
        network, faults, retries, per-replica server/WAL/store — is
        registered into it as live views under the ``repro_*`` naming
        scheme (DESIGN.md §11), so ``cluster.registry.snapshot()`` /
        Prometheus export always reflect current counters.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer` handed to the client
        and every server, producing client→RPC→server span trees.
    hot_set_capacity:
        When > 0, attach a :class:`HotSetTracker` of that capacity to
        the client's batched read path (decayed SpaceSaving top-k of
        source read traffic) — the input of :meth:`replicate_hot` and
        the traffic-based rebalance planner.
    hot_decay_interval:
        Halve the tracker's counts every this many observations.
    coalesce:
        Coalesce duplicate in-flight sources within each batched
        sampling window (default on; the zipf bench's baseline mode
        turns it off).
    """

    def __init__(
        self,
        num_servers: int = 4,
        config: Optional[SamtreeConfig] = None,
        store_factory: Optional[Callable[[], GraphStoreAPI]] = None,
        network: Optional[NetworkModel] = None,
        partitioner: Optional[Partitioner] = None,
        replication_factor: int = 1,
        durable: bool = False,
        wal_dir: Optional[str] = None,
        fault_policy: Optional[FaultPolicy] = None,
        fault_seed: int = 0,
        retry: Optional[RetryPolicy] = None,
        degraded_reads: bool = False,
        registry: Optional[MetricsRegistry] = None,
        tracer=None,
        hot_set_capacity: int = 0,
        hot_decay_interval: int = DEFAULT_DECAY_INTERVAL,
        coalesce: bool = True,
    ) -> None:
        if num_servers < 1:
            raise ConfigurationError(
                f"num_servers must be >= 1, got {num_servers}"
            )
        if replication_factor < 1:
            raise ConfigurationError(
                f"replication_factor must be >= 1, got {replication_factor}"
            )
        if wal_dir is not None and not durable:
            raise ConfigurationError("wal_dir requires durable=True")
        self.partitioner = partitioner or HashBySourcePartitioner(num_servers)
        if self.partitioner.num_shards != num_servers:
            raise ConfigurationError(
                "partitioner shard count does not match num_servers"
            )
        self.replication_factor = replication_factor
        self.fault_injector: Optional[FaultInjector] = (
            FaultInjector(fault_policy, seed=fault_seed, network=network)
            if fault_policy is not None
            else None
        )
        self.retry = retry
        if wal_dir is not None:
            os.makedirs(wal_dir, exist_ok=True)
        self.replica_groups: List[List[GraphServer]] = []
        for shard in range(num_servers):
            group: List[GraphServer] = []
            for r in range(replication_factor):
                store = store_factory() if store_factory is not None else None
                wal: Optional[ShardWAL] = None
                if durable:
                    path = (
                        os.path.join(wal_dir, f"shard{shard:04d}_r{r}.wal")
                        if wal_dir is not None
                        else None
                    )
                    wal = ShardWAL(path, shard_id=shard)
                group.append(
                    GraphServer(
                        shard,
                        store=store,
                        config=config,
                        wal=wal,
                        faults=self.fault_injector,
                        store_factory=store_factory,
                        replica_index=r,
                        tracer=tracer,
                    )
                )
            self.replica_groups.append(group)
        self.servers: List[GraphServer] = [g[0] for g in self.replica_groups]
        self.network = network
        self.tracer = tracer
        #: Decayed top-k read-frequency tracker (``hot_set_capacity=0``
        #: disables tracking — and with it ``replicate_hot``).
        self.hot_tracker: Optional[HotSetTracker] = (
            HotSetTracker(hot_set_capacity, hot_decay_interval)
            if hot_set_capacity > 0
            else None
        )
        self.client = GraphClient(
            self.servers,
            self.partitioner,
            network,
            replica_groups=self.replica_groups,
            retry=retry,
            degraded_reads=degraded_reads,
            tracer=tracer,
            hot_tracker=self.hot_tracker,
            coalesce=coalesce,
        )
        self.hot_replicas = self.client.hot_replicas
        self.registry = registry if registry is not None else MetricsRegistry()
        register_cluster(self.registry, self)
        #: Trainers whose phase telemetry :meth:`reset_stats` should
        #: clear alongside the server/network counters
        #: (:meth:`register_trainer`).
        self._trainers: List[object] = []
        #: Continuous-monitoring loop over this cluster's registry
        #: (:meth:`attach_monitor`); ``None`` until attached.
        self.monitor = None
        #: Flight recorder of structured events across every layer
        #: (:meth:`attach_recorder`); ``None`` until attached.
        self.recorder = None

    def __len__(self) -> int:
        return len(self.servers)

    # ------------------------------------------------------------------
    # fault-tolerance control plane
    # ------------------------------------------------------------------
    def crash(self, shard: int, replica: int = 0) -> None:
        """Hard-crash one replica (volatile state lost)."""
        self.replica_groups[shard][replica].crash()

    def crash_shard(self, shard: int) -> None:
        """Crash *every* replica of a shard (total shard outage)."""
        for server in self.replica_groups[shard]:
            server.crash()

    def recover(self, shard: int, replica: int = 0, sync: bool = True) -> int:
        """Recover one replica; returns WAL records replayed.

        With ``sync=True`` and a live peer in the group, the replica
        rejoins via state transfer from that peer (it may have missed
        writes while down); otherwise it rebuilds from its own
        checkpoint + WAL tail.
        """
        target = self.replica_groups[shard][replica]
        peer: Optional[GraphServer] = None
        if sync:
            for candidate in self.replica_groups[shard]:
                if candidate is not target and candidate.alive:
                    peer = candidate
                    break
        return target.recover(sync_from=peer)

    def recover_all(self, sync: bool = True) -> int:
        """Recover every crashed replica; returns WAL records replayed."""
        replayed = 0
        for shard, group in enumerate(self.replica_groups):
            for r, server in enumerate(group):
                if not server.alive:
                    replayed += self.recover(shard, r, sync=sync)
        return replayed

    def checkpoint_all(self) -> int:
        """Checkpoint every live replica; returns total image bytes."""
        total = 0
        for group in self.replica_groups:
            for server in group:
                if server.alive:
                    total += server.checkpoint()
        return total

    def freeze_all(self, etype: Optional[int] = None) -> int:
        """Compile frozen CSC shards on every live replica.

        One control-plane call after a bulk load (or between training
        epochs) turns every shard's batched-read RPC into a single
        frozen-kernel pass; returns the number of shards compiled.
        Stale shards invalidate themselves through each store's
        mutation epoch, so calling this again after a write burst is
        always safe.
        """
        compiled = 0
        for group in self.replica_groups:
            for server in group:
                if server.alive:
                    compiled += server.freeze(etype)
        return compiled

    # ------------------------------------------------------------------
    # hot-vertex read replication (load, not fault-tolerance)
    # ------------------------------------------------------------------
    def replicate_hot(
        self,
        top_n: int = 8,
        copies: int = 1,
        min_count: int = 1,
    ) -> List[Tuple[int, List[int]]]:
        """Replicate the tracker's hottest sources to extra shards.

        For each of the ``top_n`` hottest tracked sources (with decayed
        count >= ``min_count``), copies its full adjacency to the
        ``copies`` least-sampled shards that do not already hold it —
        through the columnar ingest path via the client, so WALs and
        fault-tolerance replica groups stay consistent — then installs
        the source's read set in the hot-replica directory.  Reads
        rotate across the set from the next batch on; writes fan out to
        every copy (see :meth:`GraphClient._hot_write_extras`).

        Returns ``(src, read_set)`` pairs actually installed.  Requires
        ``hot_set_capacity > 0`` at construction.
        """
        if self.hot_tracker is None:
            raise ConfigurationError(
                "replicate_hot requires hot_set_capacity > 0"
            )
        if copies < 1:
            raise ConfigurationError(f"copies must be >= 1, got {copies}")
        num_shards = len(self.servers)
        if num_shards < 2:
            return []
        directory = self.client.hot_replicas
        installed: List[Tuple[int, List[int]]] = []
        # Projected per-shard load: seeded from measured sampling
        # traffic, then updated as each hot source's read set is placed —
        # otherwise every hot source would pick the SAME least-loaded
        # shards and simply mint new hot spots.
        projected = [
            float(server.stats.sample_sources) for server in self.servers
        ]
        for entry in self.hot_tracker.top(top_n):
            if entry.count < min_count:
                continue
            src = entry.src
            primary = self.partitioner.shard_for(src)
            current = directory.shards(src) or [primary]
            wanted = min(copies, num_shards - 1) - (len(current) - 1)
            if wanted <= 0:
                installed.append((src, list(current)))
                continue
            # Cheapest targets first: least projected sampling traffic.
            targets = sorted(
                (s for s in range(num_shards) if s not in current),
                key=lambda s: projected[s],
            )[:wanted]
            read_set = list(current)
            for shard in targets:
                if self._copy_adjacency(src, primary, shard):
                    read_set.append(shard)
            if len(read_set) > 1:
                directory.set_replicas(src, read_set)
                installed.append((src, read_set))
                # Round-robin reads split this source's traffic evenly
                # across the read set from now on.
                share = entry.count / len(read_set)
                projected[primary] -= entry.count - share
                for shard in read_set:
                    if shard != primary:
                        projected[shard] += share
        return installed

    def _copy_adjacency(self, src: int, from_shard: int, to_shard: int) -> bool:
        """Copy one source's full adjacency between shards (columnar,
        WAL-covered, replica-group coherent); returns success."""
        store = self.client._live_store(from_shard)
        etypes = getattr(store, "etypes", lambda: [DEFAULT_ETYPE])()
        wrote = False
        for etype in list(etypes):
            adjacency = store.neighbors(src, etype)
            if not adjacency:
                continue
            dsts = np.asarray([d for d, _ in adjacency], dtype=np.int64)
            weights = np.asarray([w for _, w in adjacency], dtype=np.float64)
            batch = EdgeBatch.inserts(
                np.full(dsts.size, src, dtype=np.int64), dsts, weights, etype
            )
            try:
                self.client._write_shard(
                    to_shard,
                    batch.payload_nbytes(),
                    lambda s, b=batch: s.ingest_batch(b),
                )
            except Exception:
                return False
            wrote = True
        return wrote

    def drop_hot_replicas(self, srcs: Optional[List[int]] = None) -> int:
        """Tear down hot read replicas (all of them by default).

        Deletes each extra copy's adjacency through the columnar write
        path and removes the source from the directory; returns the
        number of copies dropped.  Reads fall back to the primary from
        the next batch on.
        """
        directory = self.client.hot_replicas
        targets = (
            list(srcs)
            if srcs is not None
            else [src for src, _ in directory.items()]
        )
        dropped = 0
        for src in targets:
            group = directory.shards(src)
            if not group:
                continue
            primary = self.partitioner.shard_for(src)
            for shard in group:
                if shard == primary:
                    continue
                store = self.client._live_store(shard)
                etypes = getattr(
                    store, "etypes", lambda: [DEFAULT_ETYPE]
                )()
                for etype in list(etypes):
                    adjacency = store.neighbors(src, etype)
                    if not adjacency:
                        continue
                    dsts = np.asarray(
                        [d for d, _ in adjacency], dtype=np.int64
                    )
                    batch = EdgeBatch(
                        np.full(dsts.size, src, dtype=np.int64),
                        dsts,
                        1.0,
                        etype,
                        OP_DELETE,
                    )
                    self.client._write_shard(
                        shard,
                        batch.payload_nbytes(),
                        lambda s, b=batch: s.ingest_batch(b),
                    )
                dropped += 1
            directory.drop(src)
        rec = self.recorder
        if rec is not None and targets:
            rec.record(
                "replica",
                "drop",
                t=self.network.now() if self.network is not None else None,
                copies=dropped,
                sources=len(targets),
            )
        return dropped

    def dead_replicas(self) -> List[Tuple[int, int]]:
        """``(shard, replica)`` pairs currently down."""
        return [
            (shard, r)
            for shard, group in enumerate(self.replica_groups)
            for r, server in enumerate(group)
            if not server.alive
        ]

    def all_alive(self) -> bool:
        return not self.dead_replicas()

    # ------------------------------------------------------------------
    # dashboards
    # ------------------------------------------------------------------
    def shard_infos(self, model: MemoryModel = DEFAULT_MEMORY_MODEL) -> List[ShardInfo]:
        """Per-shard load snapshot (balance diagnostics).

        Reports the first live replica's view; a fully-down shard
        reports zeros with ``live_replicas=0``.
        """
        infos: List[ShardInfo] = []
        for shard, group in enumerate(self.replica_groups):
            live = [s for s in group if s.alive]
            if live:
                view = live[0]
                infos.append(
                    ShardInfo(
                        shard_id=shard,
                        num_sources=view.store.num_sources,
                        num_edges=view.store.num_edges,
                        nbytes=view.nbytes(model),
                        live_replicas=len(live),
                    )
                )
            else:
                infos.append(
                    ShardInfo(
                        shard_id=shard,
                        num_sources=0,
                        num_edges=0,
                        nbytes=0,
                        live_replicas=0,
                    )
                )
        return infos

    def total_nbytes(self, model: MemoryModel = DEFAULT_MEMORY_MODEL) -> int:
        """Cluster-wide modeled memory (primary replicas only, so the
        figure stays comparable across replication factors)."""
        return sum(s.nbytes(model) for s in self.servers)

    def register_trainer(self, trainer) -> None:
        """Tie a :class:`~repro.gnn.training.Trainer`'s telemetry
        lifecycle to this cluster: :meth:`reset_stats` will also zero
        its phase histograms and batch/seed counters (idempotent)."""
        if trainer not in self._trainers:
            self._trainers.append(trainer)

    def attach_monitor(
        self,
        interval: float = 0.05,
        rules=None,
        max_points: int = 4096,
        name_filter=None,
    ):
        """Attach a continuous-monitoring scrape loop to this cluster.

        Creates a :class:`~repro.obs.monitor.Monitor` over the cluster's
        registry on the **simulated** clock (wall clock without a
        network model), with an :class:`~repro.obs.alerts.AlertManager`
        evaluating ``rules`` after every scrape.  The monitor's own
        health surfaces back into the registry as ``repro_monitor_*`` /
        ``repro_alerts_*`` series — views that follow re-attachment, so
        the exposition always describes the *current* monitor.

        :meth:`reset_stats` deliberately leaves the monitor alone: the
        time-series history is the flight recorder, and a stats reset
        mid-run is exactly the counter-reset event the store's
        adjustment logic exists to absorb.
        """
        from repro.obs.alerts import AlertManager
        from repro.obs.monitor import Monitor

        monitor = Monitor(
            self.registry,
            clock=self.network.now if self.network is not None else None,
            interval=interval,
            alerts=AlertManager(list(rules) if rules else []),
            max_points=max_points,
            name_filter=name_filter,
        )
        self.monitor = monitor
        # A recorder attached before the monitor must still see the new
        # manager's transitions (attach_recorder covers the other order).
        if self.recorder is not None:
            self.recorder.observe_alerts(monitor.alerts)
        if not self.registry.has("repro_monitor_scrapes_total"):
            # Views read through ``self.monitor`` so a re-attach (new
            # interval / rules) does not leave them pointing at a stale
            # monitor instance.
            self.registry.register_view(
                "repro_monitor_scrapes_total",
                lambda c=self: float(c.monitor.store.scrapes),
                help="Registry scrapes taken by the attached monitor",
            )
            self.registry.register_view(
                "repro_monitor_resets_total",
                lambda c=self: float(c.monitor.store.resets_total),
                help="Counter resets detected across scraped series",
            )
            self.registry.register_view(
                "repro_monitor_series",
                lambda c=self: float(c.monitor.store.num_series),
                help="Series currently held by the time-series store",
                kind="gauge",
            )
            self.registry.register_view(
                "repro_monitor_points",
                lambda c=self: float(c.monitor.store.num_points),
                help="Points across all series ring buffers",
                kind="gauge",
            )
            self.registry.register_view(
                "repro_alerts_evaluations_total",
                lambda c=self: float(c.monitor.alerts.evaluations),
                help="Alert-rule evaluation passes",
            )
            self.registry.register_view(
                "repro_alerts_transitions_total",
                lambda c=self: float(c.monitor.alerts.transitions),
                help="Alert lifecycle transitions recorded",
            )
            self.registry.register_view(
                "repro_alerts_pending",
                lambda c=self: float(len(c.monitor.alerts.pending())),
                help="Alerts currently pending",
                kind="gauge",
            )
            self.registry.register_view(
                "repro_alerts_firing",
                lambda c=self: float(len(c.monitor.alerts.firing())),
                help="Alerts currently firing",
                kind="gauge",
            )
        return monitor

    def attach_recorder(self, recorder=None, capacity: int = 1024):
        """Attach a :class:`~repro.obs.flight.FlightRecorder` to every
        layer of this cluster.

        Creates one on the cluster's simulated clock when ``recorder``
        is ``None``; otherwise adopts the given instance (binding its
        clock if unset).  Propagation covers the fault injector, the
        retry policy (cluster- and client-side), every replica server,
        the attached inference service, and — when a monitor is attached
        (before *or* after) — the alert manager's transition stream.
        The recorder's own health surfaces as ``repro_recorder_*``
        views; like the monitor, :meth:`reset_stats` leaves it alone —
        its rings *are* the incident history.
        """
        from repro.obs.flight import FlightRecorder

        clock = self.network.now if self.network is not None else None
        if recorder is None:
            recorder = FlightRecorder(clock=clock, capacity=capacity)
        elif recorder.clock is None:
            recorder.clock = clock
        self.recorder = recorder
        if self.fault_injector is not None:
            self.fault_injector.recorder = recorder
        if self.retry is not None:
            self.retry.recorder = recorder
        client_retry = getattr(self.client, "retry", None)
        if client_retry is not None:
            client_retry.recorder = recorder
        for group in self.replica_groups:
            for server in group:
                server.recorder = recorder
        service = getattr(self, "inference_service", None)
        if service is not None:
            service.set_recorder(recorder)
        if self.monitor is not None:
            recorder.observe_alerts(self.monitor.alerts)
        if not self.registry.has("repro_recorder_events_total"):
            # Views read through ``self.recorder`` so a re-attach
            # rebinds them to the current instance.
            self.registry.register_view(
                "repro_recorder_events_total",
                lambda c=self: float(c.recorder.events_total),
                help="Events appended to the flight recorder's rings",
            )
            self.registry.register_view(
                "repro_recorder_dropped_total",
                lambda c=self: float(c.recorder.dropped_total),
                help="Ring-evicted (overwritten) flight-recorder events",
            )
            self.registry.register_view(
                "repro_recorder_categories",
                lambda c=self: float(len(c.recorder.categories)),
                help="Event categories carried by the flight recorder",
                kind="gauge",
            )
        return recorder

    def reset_stats(self) -> None:
        """Clear server, network, fault, and retry counters (plus any
        registry-owned metrics, archived traces, and the phase
        telemetry of every :meth:`register_trainer`-ed trainer).

        Registered *views* need no reset of their own — they read the
        stats holders live, so clearing the holders clears the views.
        The attached monitor and flight recorder are deliberately left
        alone: their history *is* the incident evidence.
        """
        for group in self.replica_groups:
            for s in group:
                s.stats.reset()
                store = getattr(s, "store", None)
                if store is not None:
                    op_stats = getattr(store, "stats", None)
                    if op_stats is not None:
                        op_stats.reset()
                    cache = getattr(store, "snapshot_cache", None)
                    if cache is not None:
                        cache.stats.reset()
                    ingest = getattr(store, "ingest_stats", None)
                    if ingest is not None:
                        ingest.reset()
                    frozen = getattr(store, "frozen_stats", None)
                    if frozen is not None:
                        frozen.reset()
                wal = getattr(s, "wal", None)
                if wal is not None:
                    # Zero the append ledger in place; truncate() would
                    # also drop records a future recovery still needs.
                    wal.records_appended = 0
                    wal.bytes_appended = 0
        if self.network is not None:
            self.network.stats.reset()
        if self.fault_injector is not None:
            self.fault_injector.stats.reset()
        if self.retry is not None:
            self.retry.stats.reset()
        self.client.serving_stats.reset()
        if self.hot_tracker is not None:
            self.hot_tracker.stats.reset()
        # The online inference tier registers itself on construction
        # (``repro.serving.service.InferenceService``); clear its
        # request counters and latency histogram with everything else.
        service = getattr(self, "inference_service", None)
        if service is not None:
            service.reset_stats()
        self.registry.reset_owned()
        for trainer in self._trainers:
            reset = getattr(trainer, "reset_phase_stats", None)
            if reset is not None:
                reset()
        if self.tracer is not None:
            self.tracer.reset()
