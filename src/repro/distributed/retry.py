"""Retry with exponential backoff + jitter for the distributed client.

Every :class:`~repro.distributed.client.GraphClient` read and write path
runs its per-shard RPCs through a :class:`RetryPolicy`:

* :class:`~repro.errors.TransientRPCError` is retried up to
  ``max_attempts`` times with exponential backoff and seeded jitter;
* backoff sleeps are **simulated** — charged to the
  :class:`~repro.distributed.rpc.NetworkModel` clock (never
  ``time.sleep``), so the whole cluster remains a deterministic,
  fast-running simulation;
* a per-request ``deadline_seconds`` is enforced against the same
  simulated clock (send costs + latency spikes + backoff all advance
  it), raising :class:`~repro.errors.DeadlineExceededError`;
* exhausting the attempt budget raises
  :class:`~repro.errors.RetryExhaustedError` (chained to the last
  transient failure).

:class:`~repro.errors.ShardUnavailableError` is deliberately **not**
retried here — a crashed shard stays crashed until recovered, so the
client handles it one level up via replica failover / graceful
degradation instead of burning the attempt budget.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional, TypeVar

from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    RetryExhaustedError,
    TransientRPCError,
)

__all__ = ["RetryPolicy", "RetryStats"]

T = TypeVar("T")


@dataclass
class RetryStats:
    """Counters of retry activity (shared across requests)."""

    attempts: int = 0
    retries: int = 0
    transient_failures: int = 0
    recoveries: int = 0
    exhausted: int = 0
    deadline_exceeded: int = 0
    backoff_seconds: float = 0.0

    def reset(self) -> None:
        self.attempts = 0
        self.retries = 0
        self.transient_failures = 0
        self.recoveries = 0
        self.exhausted = 0
        self.deadline_exceeded = 0
        self.backoff_seconds = 0.0

    def to_dict(self) -> dict:
        return {
            "attempts": self.attempts,
            "retries": self.retries,
            "transient_failures": self.transient_failures,
            "recoveries": self.recoveries,
            "exhausted": self.exhausted,
            "deadline_exceeded": self.deadline_exceeded,
            "backoff_seconds": self.backoff_seconds,
        }


@dataclass
class RetryPolicy:
    """Exponential backoff + jitter over simulated time.

    Parameters
    ----------
    max_attempts:
        Total tries per request (first attempt included).
    base_backoff_seconds:
        Backoff before the second attempt; doubles (``backoff_multiplier``)
        per subsequent retry.
    backoff_multiplier:
        Geometric growth factor of the backoff.
    jitter:
        Fractional jitter: each delay is scaled by a seeded uniform draw
        from ``[1 - jitter, 1 + jitter]`` (decorrelates replica retry
        storms).
    deadline_seconds:
        Optional per-request budget of *simulated* seconds — measured on
        the clock passed to :meth:`run` (the network model's
        ``simulated_seconds`` in the client).
    seed:
        Seeds the jitter RNG so retry schedules are reproducible.
    """

    max_attempts: int = 4
    base_backoff_seconds: float = 1e-3
    backoff_multiplier: float = 2.0
    jitter: float = 0.5
    deadline_seconds: Optional[float] = None
    seed: int = 0
    stats: RetryStats = field(default_factory=RetryStats)
    #: Optional :class:`~repro.obs.flight.FlightRecorder`; retry events
    #: (transient failures, exhaustions, deadline aborts) land in its
    #: ``retry`` ring.  Excluded from equality/repr — it's wiring, not
    #: policy.
    recorder: Optional[object] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_backoff_seconds < 0:
            raise ConfigurationError("base_backoff_seconds must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError("backoff_multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ConfigurationError("deadline_seconds must be > 0")
        self._rng = random.Random(self.seed)

    # ------------------------------------------------------------------
    @staticmethod
    def remaining(
        deadline: Optional[float], now: Optional[Callable[[], float]] = None
    ) -> float:
        """Seconds left until an *absolute* ``deadline`` on ``now``'s clock.

        Returns ``inf`` when no deadline is set and never goes negative —
        admission gates compare this against their estimated service time
        to shed requests whose deadline is already unmeetable.
        """
        if deadline is None:
            return float("inf")
        current = now() if now is not None else 0.0
        return max(0.0, deadline - current)

    def backoff_for(self, attempt: int) -> float:
        """Jittered delay before retry number ``attempt`` (1-based)."""
        delay = self.base_backoff_seconds * (
            self.backoff_multiplier ** (attempt - 1)
        )
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        return delay

    def run(
        self,
        fn: Callable[[], T],
        now: Optional[Callable[[], float]] = None,
        sleep: Optional[Callable[[float], object]] = None,
        deadline: Optional[float] = None,
    ) -> T:
        """Invoke ``fn`` with retries on :class:`TransientRPCError`.

        ``now`` reads the simulated clock (defaults to a private virtual
        clock advanced only by backoff); ``sleep`` accounts a simulated
        backoff sleep (the client passes ``NetworkModel.sleep``).  Any
        exception other than :class:`TransientRPCError` propagates
        untouched.

        ``deadline`` is an *absolute* point on ``now``'s clock (the
        serving tier threads each request's deadline through
        ``GraphClient.deadline_scope``), enforced alongside the policy's
        own relative ``deadline_seconds`` budget.  An already-expired
        deadline raises :class:`DeadlineExceededError` before the first
        attempt — a hopeless request never burns retry budget it no
        longer has.
        """
        virtual = 0.0
        start = now() if now is not None else 0.0

        def elapsed() -> float:
            return (now() - start) if now is not None else virtual

        def clock() -> float:
            return now() if now is not None else start + virtual

        def budget_left() -> float:
            """Seconds until the tighter of the two deadlines (inf = none)."""
            left = float("inf")
            if self.deadline_seconds is not None:
                left = self.deadline_seconds - elapsed()
            if deadline is not None:
                left = min(left, deadline - clock())
            return left

        if deadline is not None and clock() >= deadline:
            self.stats.deadline_exceeded += 1
            raise DeadlineExceededError(
                f"absolute deadline {deadline:.6f}s already passed at "
                f"{clock():.6f}s — request not attempted",
                attempt=0,
                timestamp=clock(),
            )

        recorder = self.recorder
        last_exc: Optional[TransientRPCError] = None
        for attempt in range(1, self.max_attempts + 1):
            self.stats.attempts += 1
            try:
                result = fn()
            except TransientRPCError as exc:
                last_exc = exc
                self.stats.transient_failures += 1
                # Populate the structured context on the failure itself
                # so whoever ends up re-raising or logging it knows the
                # attempt and instant, not just the shard/endpoint the
                # injector stamped.
                exc.attempt = attempt
                if exc.timestamp is None:
                    exc.timestamp = clock()
                if recorder is not None:
                    recorder.record(
                        "retry",
                        "transient",
                        t=clock(),
                        attempt=attempt,
                        shard=exc.shard,
                        endpoint=exc.endpoint,
                    )
                if budget_left() <= 0.0:
                    self.stats.deadline_exceeded += 1
                    if recorder is not None:
                        recorder.record(
                            "retry",
                            "deadline",
                            t=clock(),
                            attempt=attempt,
                            shard=exc.shard,
                            endpoint=exc.endpoint,
                        )
                    raise DeadlineExceededError(
                        f"request deadline exceeded after {attempt} "
                        f"attempt(s) ({elapsed():.6f}s simulated)",
                        shard=exc.shard,
                        endpoint=exc.endpoint,
                        attempt=attempt,
                        timestamp=clock(),
                    ) from exc
                if attempt == self.max_attempts:
                    break
                delay = self.backoff_for(attempt)
                if delay >= budget_left():
                    self.stats.deadline_exceeded += 1
                    if recorder is not None:
                        recorder.record(
                            "retry",
                            "deadline",
                            t=clock(),
                            attempt=attempt,
                            shard=exc.shard,
                            endpoint=exc.endpoint,
                        )
                    raise DeadlineExceededError(
                        f"request deadline would elapse during backoff "
                        f"(attempt {attempt})",
                        shard=exc.shard,
                        endpoint=exc.endpoint,
                        attempt=attempt,
                        timestamp=clock(),
                    ) from exc
                self.stats.retries += 1
                self.stats.backoff_seconds += delay
                if sleep is not None:
                    sleep(delay)
                else:
                    virtual += delay
            else:
                if attempt > 1:
                    self.stats.recoveries += 1
                return result
        self.stats.exhausted += 1
        if recorder is not None:
            recorder.record(
                "retry",
                "exhausted",
                t=clock(),
                attempts=self.max_attempts,
                shard=last_exc.shard if last_exc is not None else None,
                endpoint=last_exc.endpoint if last_exc is not None else None,
            )
        raise RetryExhaustedError(
            f"request failed on all {self.max_attempts} attempts",
            shard=last_exc.shard if last_exc is not None else None,
            endpoint=last_exc.endpoint if last_exc is not None else None,
            attempt=self.max_attempts,
            timestamp=clock(),
        ) from last_exc
