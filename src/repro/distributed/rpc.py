"""Simulated RPC substrate for the in-process cluster.

The paper's evaluation platform is 74 physical servers; this repo runs
the same partition → route → batch → merge code path in one process and
*models* the network instead of paying it.  The model is deliberately
simple — a fixed per-message latency plus a bandwidth term — because the
experiments it supports (Figures 8–11) measure storage and sampling
costs, not networking; the model only needs to preserve the incentive
that fewer, larger messages are cheaper, which drives the batch APIs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = ["NetworkModel", "NetworkStats"]


@dataclass
class NetworkStats:
    """Counters of simulated traffic.

    ``simulated_seconds`` is the cluster's simulated clock: it advances
    on every :meth:`NetworkModel.send` *and* every simulated sleep
    (:meth:`NetworkModel.sleep`, used by retry backoff and injected
    latency spikes), so per-request deadlines measure transfer cost and
    backoff on one consistent time base.
    """

    messages: int = 0
    payload_bytes: int = 0
    simulated_seconds: float = 0.0
    #: Transfer cost of the most recent :meth:`NetworkModel.send` —
    #: the per-request latency the client propagates to retry deadlines.
    last_send_seconds: float = 0.0
    #: Simulated sleeps (retry backoff, injected latency spikes).
    sleeps: int = 0
    slept_seconds: float = 0.0

    def reset(self) -> None:
        self.messages = 0
        self.payload_bytes = 0
        self.simulated_seconds = 0.0
        self.last_send_seconds = 0.0
        self.sleeps = 0
        self.slept_seconds = 0.0


@dataclass
class NetworkModel:
    """Per-message latency + bandwidth cost model.

    Defaults approximate an intra-datacenter RPC: 50 µs per message and
    10 Gbit/s of bandwidth.
    """

    latency_seconds: float = 50e-6
    bandwidth_bytes_per_second: float = 10e9 / 8
    stats: NetworkStats = field(default_factory=NetworkStats)

    def __post_init__(self) -> None:
        if self.latency_seconds < 0:
            raise ConfigurationError("latency_seconds must be >= 0")
        if self.bandwidth_bytes_per_second <= 0:
            raise ConfigurationError("bandwidth must be > 0")

    def send(self, payload_bytes: int) -> float:
        """Account one message; returns its simulated transfer time."""
        cost = (
            self.latency_seconds
            + payload_bytes / self.bandwidth_bytes_per_second
        )
        self.stats.messages += 1
        self.stats.payload_bytes += payload_bytes
        self.stats.simulated_seconds += cost
        self.stats.last_send_seconds = cost
        return cost

    def sleep(self, seconds: float) -> float:
        """Advance the simulated clock without sending anything.

        Used for retry backoff and injected latency spikes — never a
        real ``time.sleep``, so chaos runs stay fast and deterministic.
        """
        if seconds < 0:
            raise ConfigurationError(f"sleep seconds must be >= 0, got {seconds}")
        self.stats.sleeps += 1
        self.stats.slept_seconds += seconds
        self.stats.simulated_seconds += seconds
        return seconds

    def now(self) -> float:
        """The simulated clock (transfer costs + sleeps so far)."""
        return self.stats.simulated_seconds
