"""Live shard rebalancing: moving hot sources between graph servers.

Hash-by-source placement balances *counts* but not *load*: power-law
graphs put multi-million-edge hub vertices on arbitrary shards, and one
hub can dominate a server's memory and sampling traffic.  Production
deployments therefore run a rebalancer: measure per-shard load, pick
source vertices to migrate, move their adjacencies, and record the
overrides in a routing table consulted before the hash.

This module implements that loop online for the in-process cluster:

* :func:`plan_rebalance` — a greedy planner that relocates the heaviest
  sources from overloaded shards to underloaded ones until every shard
  is within ``tolerance`` of the mean (or no single move helps).  Load
  is measured either in **edges** (memory balance — per-source degrees)
  or in **traffic** (serving balance): traffic mode consumes the same
  per-shard ``repro_server_sample_requests`` series the obs report's
  skew table renders, and ranks per-source candidates by the cluster's
  decayed :class:`~repro.distributed.hotset.HotSetTracker` counts — no
  shard re-scan on the planning path;
* :func:`execute_plan` — migrates each planned source's adjacency
  through the **columnar EdgeBatch write path** (WAL-covered,
  replica-group coherent) with an **epoch-coherent cutover**: the copy
  is re-read while the source keeps serving writes, the samtree version
  is compared before/after, and the override is installed only once a
  copy round observed no concurrent mutation — so no write is lost and
  the migrated adjacency (hence the sampled distribution) is exactly
  the reference;
* :class:`OverridePartitioner` — a partitioner wrapper the client uses,
  so reads/writes/samples route to the new owner transparently; it is
  picklable (RPC-shippable) and vectorizes ``shards_for_array`` with a
  sorted override patch over the base partitioner's hash pass.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.ingest import OP_DELETE, EdgeBatch
from repro.core.types import DEFAULT_ETYPE
from repro.distributed.cluster import LocalCluster
from repro.distributed.partition import Partitioner
from repro.errors import ConfigurationError, PartitionError

__all__ = [
    "Move",
    "MigrationStats",
    "OverridePartitioner",
    "plan_rebalance",
    "execute_plan",
]


@dataclass(frozen=True)
class Move:
    """One planned source migration."""

    src: int
    from_shard: int
    to_shard: int
    load: int  # edges (by="edges") or decayed read count (by="traffic")


@dataclass
class MigrationStats:
    """Outcome counters of one :func:`execute_plan` run."""

    moves: int = 0
    edges_moved: int = 0
    recopies: int = 0
    skipped: int = 0


class OverridePartitioner(Partitioner):
    """A partitioner with an explicit per-source override table.

    Plain attributes only (base partitioner + a dict), so it pickles
    through any RPC/checkpoint path unchanged.
    """

    def __init__(self, base: Partitioner) -> None:
        super().__init__(base.num_shards)
        self.base = base
        self.overrides: Dict[int, int] = {}

    def shard_for(self, src: int) -> int:
        override = self.overrides.get(int(src))
        if override is not None:
            return override
        return self.base.shard_for(src)

    def shards_for_array(self, srcs) -> np.ndarray:
        """Vectorized routing: one base hash pass, then a sorted-key
        patch for the (few) overridden sources."""
        out = self.base.shards_for_array(srcs)
        if self.overrides:
            keys = np.fromiter(
                self.overrides.keys(), dtype=np.int64, count=len(self.overrides)
            )
            vals = np.fromiter(
                self.overrides.values(), dtype=np.int64,
                count=len(self.overrides),
            )
            order = np.argsort(keys)
            keys, vals = keys[order], vals[order]
            flat = np.asarray(srcs, dtype=np.int64).ravel()
            idx = np.searchsorted(keys, flat)
            idx_clipped = np.minimum(idx, keys.size - 1)
            hit = keys[idx_clipped] == flat
            out[hit] = vals[idx_clipped[hit]]
        return out

    def add_override(self, src: int, shard: int) -> None:
        """Route ``src`` to ``shard`` regardless of the base hash.

        Overriding a source to its base shard is legal and normalised
        away (the table stays minimal, so pickled routing state never
        carries no-op entries).
        """
        if not 0 <= shard < self.num_shards:
            raise PartitionError(
                f"shard {shard} out of range [0, {self.num_shards})"
            )
        src = int(src)
        if self.base.shard_for(src) == shard:
            self.overrides.pop(src, None)
        else:
            self.overrides[src] = shard

    def remove_override(self, src: int) -> bool:
        """Drop one override (returns whether it existed); routing falls
        back to the base hash."""
        return self.overrides.pop(int(src), None) is not None


# ---------------------------------------------------------------------------
# load measurement
# ---------------------------------------------------------------------------
_SHARD_LABEL = re.compile(r'shard="(\d+)"')


def _traffic_by_shard(cluster: LocalCluster) -> List[int]:
    """Per-shard sampling traffic from the obs registry — the
    ``repro_server_sample_sources{shard, replica}`` *row volume* series
    (RPC counts would hide skew: the client ships one batched message
    per shard per window regardless of how many rows it carries),
    summed over each shard's replicas."""
    snapshot = cluster.registry.snapshot()
    loads = [0] * len(cluster.servers)
    for key, value in snapshot.scalars.items():
        if not key.startswith("repro_server_sample_sources{"):
            continue
        match = _SHARD_LABEL.search(key)
        if match is None:
            continue
        loads[int(match.group(1))] += int(value)
    return loads


def _shard_loads(cluster: LocalCluster, by: str) -> List[int]:
    if by == "edges":
        return [server.store.num_edges for server in cluster.servers]
    return _traffic_by_shard(cluster)


def _source_loads(
    cluster: LocalCluster, shard: int, by: str
) -> List[Tuple[int, int]]:
    """(load, src) pairs of move candidates on one shard, heaviest first.

    ``by="traffic"`` reads the decayed counts of the cluster's
    :class:`HotSetTracker` — only tracked (i.e. recently hot) sources
    are candidates, and **no shard re-scan happens at all**.
    ``by="edges"`` keeps the degree-walk semantics (memory balance needs
    every source's size, which no traffic sketch carries).
    """
    partitioner = cluster.client.partitioner
    if by == "traffic":
        tracker = cluster.hot_tracker
        out = [
            (int(entry.count), int(entry.src))
            for entry in tracker.top(len(tracker))
            if partitioner.shard_for(entry.src) == shard
        ]
        out.sort(reverse=True)
        return out
    server = cluster.servers[shard]
    loads: Dict[int, int] = {}
    etypes = getattr(server.store, "etypes", lambda: [DEFAULT_ETYPE])()
    for etype in etypes:
        for src in server.store.sources(etype):
            loads[src] = loads.get(src, 0) + server.store.degree(src, etype)
    out = [(load, src) for src, load in loads.items()]
    out.sort(reverse=True)
    return out


def plan_rebalance(
    cluster: LocalCluster,
    tolerance: float = 0.1,
    max_moves: int = 64,
    by: str = "auto",
) -> List[Move]:
    """Greedy plan bringing every shard within ``tolerance`` of the mean.

    Repeatedly takes the heaviest candidate on the most loaded shard and
    assigns it to the least loaded shard, while the move reduces the
    spread; sources whose load exceeds the imbalance are skipped in
    favour of smaller ones.  ``by`` selects the load dimension:
    ``"edges"`` (memory), ``"traffic"`` (serving; requires the obs
    registry plus a :class:`HotSetTracker` for per-source ranking), or
    ``"auto"`` — traffic when a tracker with observations exists,
    edges otherwise.  Sources currently in the hot-replica directory
    are never planned (they are already load-spread across copies).
    """
    if not 0.0 < tolerance < 1.0:
        raise ConfigurationError(
            f"tolerance must be in (0, 1), got {tolerance}"
        )
    if max_moves < 0:
        raise ConfigurationError(f"max_moves must be >= 0, got {max_moves}")
    if by not in ("auto", "edges", "traffic"):
        raise ConfigurationError(
            f"by must be 'auto', 'edges', or 'traffic', got {by!r}"
        )
    if by == "auto":
        tracker = cluster.hot_tracker
        by = (
            "traffic"
            if tracker is not None and tracker.stats.observations > 0
            else "edges"
        )
    if by == "traffic" and cluster.hot_tracker is None:
        raise ConfigurationError(
            "by='traffic' requires a cluster with hot_set_capacity > 0"
        )
    loads = _shard_loads(cluster, by)
    total = sum(loads)
    if total == 0:
        return []
    mean = total / len(loads)
    band = tolerance * mean
    replicated = {src for src, _ in cluster.client.hot_replicas.items()}
    # Per-shard candidate lists, fetched lazily.
    candidates: Dict[int, List[Tuple[int, int]]] = {}
    moves: List[Move] = []
    moved: set = set()
    while len(moves) < max_moves:
        hot = max(range(len(loads)), key=lambda i: loads[i])
        cold = min(range(len(loads)), key=lambda i: loads[i])
        gap = loads[hot] - loads[cold]
        if loads[hot] <= mean + band and loads[cold] >= mean - band:
            break
        if hot not in candidates:
            candidates[hot] = _source_loads(cluster, hot, by)
        # Largest source that still shrinks the gap (moving more than the
        # gap would just swap the roles of the two shards).
        pick = None
        for load, src in candidates[hot]:
            if src in moved or src in replicated:
                continue
            if 0 < load < gap:
                pick = (load, src)
                break
        if pick is None:
            break
        load, src = pick
        moved.add(src)
        moves.append(Move(src=src, from_shard=hot, to_shard=cold, load=load))
        loads[hot] -= load
        loads[cold] += load
    return moves


# ---------------------------------------------------------------------------
# execution
# ---------------------------------------------------------------------------
def _tree_versions(store, src: int) -> Optional[Dict[int, int]]:
    """Per-etype samtree versions of one source (``None`` when the store
    has no version API — baseline stores recopy unconditionally once)."""
    tree_fn = getattr(store, "tree", None)
    if tree_fn is None:
        return None
    etypes = getattr(store, "etypes", lambda: [DEFAULT_ETYPE])()
    versions: Dict[int, int] = {}
    for etype in etypes:
        tree = tree_fn(src, etype)
        if tree is not None:
            versions[etype] = tree.version
    return versions


def _read_adjacency(store, src: int) -> Dict[int, List[Tuple[int, float]]]:
    etypes = getattr(store, "etypes", lambda: [DEFAULT_ETYPE])()
    return {
        etype: store.neighbors(src, etype) for etype in list(etypes)
    }


def _adjacency_close(
    got: List[Tuple[int, float]],
    want: List[Tuple[int, float]],
    rel_tol: float = 1e-9,
    abs_tol: float = 1e-12,
) -> bool:
    """Same neighbor set with weights equal up to prefix-sum
    reconstruction noise (see :meth:`CSTable.to_weights`)."""
    if len(got) != len(want):
        return False
    got_sorted = sorted(got)
    want_sorted = sorted(want)
    for (dst_a, w_a), (dst_b, w_b) in zip(got_sorted, want_sorted):
        if dst_a != dst_b:
            return False
        if not math.isclose(w_a, w_b, rel_tol=rel_tol, abs_tol=abs_tol):
            return False
    return True


def _write_adjacency(
    cluster: LocalCluster,
    shard: int,
    src: int,
    adjacency: Dict[int, List[Tuple[int, float]]],
    op: Optional[int] = None,
) -> int:
    """Ship one source's adjacency to a shard as columnar batches
    (insert by default, ``op=OP_DELETE`` to retract); returns rows."""
    client = cluster.client
    rows = 0
    for etype, edges in adjacency.items():
        if not edges:
            continue
        dsts = np.asarray([d for d, _ in edges], dtype=np.int64)
        weights = np.asarray([w for _, w in edges], dtype=np.float64)
        batch = EdgeBatch(
            np.full(dsts.size, src, dtype=np.int64),
            dsts,
            weights if op is None else 1.0,
            etype,
            OP_DELETE if op == OP_DELETE else None,
        )
        client._write_shard(
            shard,
            batch.payload_nbytes(),
            lambda s, b=batch: s.ingest_batch(b),
        )
        rows += dsts.size
    return rows


def execute_plan(
    cluster: LocalCluster,
    moves: List[Move],
    partitioner: Optional[OverridePartitioner] = None,
    verify: bool = True,
    before_cutover: Optional[Callable[[Move], None]] = None,
    max_recopy: int = 8,
    stats: Optional[MigrationStats] = None,
) -> OverridePartitioner:
    """Migrate each planned source online and install routing overrides.

    Per move, the epoch-coherent cutover protocol:

    1. **Copy** — read the source's full adjacency off the current owner
       and ship it to the target through the columnar
       :class:`EdgeBatch` ingest path (WAL append-before-apply on every
       target replica), noting the source samtrees' versions first;
    2. **Converge** — run the optional ``before_cutover`` hook (tests
       inject concurrent churn here), then re-read the versions: if any
       tree mutated since the copy, retract the target copy and recopy
       (bounded by ``max_recopy``) — writes during the copy window are
       therefore never lost;
    3. **Verify** — with ``verify=True``, assert the target adjacency
       equals the source's byte-for-byte (equal adjacency + equal
       weights ⇒ the sampled distribution is identical, which the
       chi-square tests pin end-to-end);
    4. **Cutover** — install the override (atomic w.r.t. this thread:
       nothing runs between the coherence check and the override), so
       subsequent reads *and writes* route to the new owner;
    5. **Retract** — delete the adjacency from the old owner through the
       same columnar path.

    Returns the :class:`OverridePartitioner` (created around the
    cluster's partitioner when not supplied) after swapping it into the
    cluster's client **before** the first move, so every cutover takes
    effect the moment its override lands.
    """
    if max_recopy < 1:
        raise ConfigurationError(
            f"max_recopy must be >= 1, got {max_recopy}"
        )
    if partitioner is None:
        if isinstance(cluster.partitioner, OverridePartitioner):
            partitioner = cluster.partitioner
        else:
            partitioner = OverridePartitioner(cluster.partitioner)
    # Online cutover: routing must follow each override immediately.
    cluster.partitioner = partitioner
    cluster.client.partitioner = partitioner
    if stats is None:
        stats = MigrationStats()
    for move in moves:
        if move.from_shard == move.to_shard:
            partitioner.add_override(move.src, move.to_shard)
            stats.skipped += 1
            continue
        source_store = cluster.client._live_store(move.from_shard)
        target_store = cluster.client._live_store(move.to_shard)
        copied: Optional[Dict[int, List[Tuple[int, float]]]] = None
        for attempt in range(max_recopy):
            versions = _tree_versions(source_store, move.src)
            adjacency = _read_adjacency(source_store, move.src)
            if copied is not None:
                # A previous round raced a concurrent write: retract it
                # before recopying (idempotent delete).
                _write_adjacency(
                    cluster, move.to_shard, move.src, copied, op=OP_DELETE
                )
                stats.recopies += 1
            rows = _write_adjacency(cluster, move.to_shard, move.src, adjacency)
            copied = adjacency
            if before_cutover is not None and attempt == 0:
                before_cutover(move)
            if versions is None:
                # No version API: one extra read confirms quiescence.
                if _read_adjacency(source_store, move.src) == adjacency:
                    break
            elif _tree_versions(source_store, move.src) == versions:
                break
        else:
            raise ConfigurationError(
                f"source {move.src} mutated through {max_recopy} copy "
                f"rounds; rebalance it during a quieter window"
            )
        if verify:
            migrated = _read_adjacency(target_store, move.src)
            reference = _read_adjacency(source_store, move.src)
            for etype, edges in reference.items():
                # Weights are reconstructed from prefix-sum tables on
                # read, so two structurally different trees holding the
                # same logical adjacency can disagree in the last float
                # bits — compare with a relative tolerance, not ==.
                if not _adjacency_close(migrated.get(etype, []), edges):
                    raise ConfigurationError(
                        f"migration of source {move.src} diverged on "
                        f"etype {etype}: target adjacency != reference"
                    )
        # Cutover: atomic w.r.t. this thread — no mutation can interleave
        # between the coherence check above and this override.
        partitioner.add_override(move.src, move.to_shard)
        stats.moves += 1
        stats.edges_moved += rows
        rec = getattr(cluster, "recorder", None)
        if rec is not None:
            network = getattr(cluster, "network", None)
            rec.record(
                "migration",
                "cutover",
                t=network.now() if network is not None else None,
                src=move.src,
                from_shard=move.from_shard,
                to_shard=move.to_shard,
                edges=rows,
            )
        # Retract the old owner's copy (new traffic already routes away).
        _write_adjacency(
            cluster, move.from_shard, move.src, copied, op=OP_DELETE
        )
    return partitioner
