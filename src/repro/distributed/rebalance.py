"""Shard rebalancing: moving hot sources between graph servers.

Hash-by-source placement balances *counts* but not *load*: power-law
graphs put multi-million-edge hub vertices on arbitrary shards, and one
hub can dominate a server's memory and sampling traffic.  Production
deployments therefore run a rebalancer: measure per-shard load, pick
source vertices to migrate, move their adjacencies, and record the
overrides in a routing table consulted before the hash.

This module implements that loop for the in-process cluster:

* :func:`plan_rebalance` — a greedy planner that relocates the heaviest
  sources from overloaded shards to underloaded ones until every shard
  is within ``tolerance`` of the mean (or no single move helps);
* :func:`execute_plan` — migrates each planned source's adjacency
  between servers and installs the override;
* :class:`OverridePartitioner` — a partitioner wrapper the client uses,
  so reads/writes/samples route to the new owner transparently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.types import DEFAULT_ETYPE
from repro.distributed.cluster import LocalCluster
from repro.distributed.partition import Partitioner
from repro.errors import ConfigurationError, PartitionError

__all__ = ["Move", "OverridePartitioner", "plan_rebalance", "execute_plan"]


@dataclass(frozen=True)
class Move:
    """One planned source migration."""

    src: int
    from_shard: int
    to_shard: int
    load: int  # edges moved


class OverridePartitioner(Partitioner):
    """A partitioner with an explicit per-source override table."""

    def __init__(self, base: Partitioner) -> None:
        super().__init__(base.num_shards)
        self.base = base
        self.overrides: Dict[int, int] = {}

    def shard_for(self, src: int) -> int:
        override = self.overrides.get(int(src))
        if override is not None:
            return override
        return self.base.shard_for(src)

    def add_override(self, src: int, shard: int) -> None:
        if not 0 <= shard < self.num_shards:
            raise PartitionError(
                f"shard {shard} out of range [0, {self.num_shards})"
            )
        self.overrides[int(src)] = shard


def _shard_loads(cluster: LocalCluster) -> List[int]:
    return [server.store.num_edges for server in cluster.servers]


def _source_loads(cluster: LocalCluster, shard: int) -> List[Tuple[int, int, int]]:
    """(load, etype, src) triples on one shard, heaviest first."""
    server = cluster.servers[shard]
    out = []
    etypes = getattr(server.store, "etypes", lambda: [DEFAULT_ETYPE])()
    for etype in etypes:
        for src in server.store.sources(etype):
            out.append((server.store.degree(src, etype), etype, src))
    out.sort(reverse=True)
    return out


def plan_rebalance(
    cluster: LocalCluster,
    tolerance: float = 0.1,
    max_moves: int = 64,
) -> List[Move]:
    """Greedy plan bringing every shard within ``tolerance`` of the mean.

    Repeatedly takes the heaviest source on the most loaded shard and
    assigns it to the least loaded shard, while the move reduces the
    spread; sources whose load exceeds the imbalance are skipped in
    favour of smaller ones.
    """
    if not 0.0 < tolerance < 1.0:
        raise ConfigurationError(
            f"tolerance must be in (0, 1), got {tolerance}"
        )
    if max_moves < 0:
        raise ConfigurationError(f"max_moves must be >= 0, got {max_moves}")
    loads = _shard_loads(cluster)
    total = sum(loads)
    if total == 0:
        return []
    mean = total / len(loads)
    band = tolerance * mean
    # Per-shard candidate lists, fetched lazily.
    candidates: Dict[int, List[Tuple[int, int, int]]] = {}
    moves: List[Move] = []
    moved: set = set()
    while len(moves) < max_moves:
        hot = max(range(len(loads)), key=lambda i: loads[i])
        cold = min(range(len(loads)), key=lambda i: loads[i])
        gap = loads[hot] - loads[cold]
        if loads[hot] <= mean + band and loads[cold] >= mean - band:
            break
        if hot not in candidates:
            candidates[hot] = _source_loads(cluster, hot)
        # Largest source that still shrinks the gap (moving more than the
        # gap would just swap the roles of the two shards).
        pick = None
        for load, etype, src in candidates[hot]:
            if (etype, src) in moved:
                continue
            if 0 < load < gap:
                pick = (load, etype, src)
                break
        if pick is None:
            break
        load, etype, src = pick
        moved.add((etype, src))
        moves.append(Move(src=src, from_shard=hot, to_shard=cold, load=load))
        loads[hot] -= load
        loads[cold] += load
    return moves


def execute_plan(
    cluster: LocalCluster,
    moves: List[Move],
    partitioner: Optional[OverridePartitioner] = None,
) -> OverridePartitioner:
    """Migrate each planned source and install the routing overrides.

    Returns the :class:`OverridePartitioner` (created around the
    cluster's partitioner when not supplied) and swaps it into the
    cluster's client so subsequent traffic routes to the new owners.
    """
    if partitioner is None:
        if isinstance(cluster.partitioner, OverridePartitioner):
            partitioner = cluster.partitioner
        else:
            partitioner = OverridePartitioner(cluster.partitioner)
    for move in moves:
        source_server = cluster.servers[move.from_shard]
        target_server = cluster.servers[move.to_shard]
        etypes = getattr(
            source_server.store, "etypes", lambda: [DEFAULT_ETYPE]
        )()
        for etype in list(etypes):
            adjacency = source_server.store.neighbors(move.src, etype)
            for dst, weight in adjacency:
                target_server.store.add_edge(move.src, dst, weight, etype)
                source_server.store.remove_edge(move.src, dst, etype)
        partitioner.add_override(move.src, move.to_shard)
    cluster.partitioner = partitioner
    cluster.client.partitioner = partitioner
    return partitioner
