"""Seeded fault injection for the distributed tier.

The paper's storage tier runs on 54 of 74 physical servers under live
WeChat traffic — at that scale transient RPC failures, latency spikes,
and outright shard crashes are routine operating conditions, not edge
cases.  This module makes them reproducible: a :class:`FaultInjector`
sits in front of every :class:`~repro.distributed.server.GraphServer`
endpoint and, driven by one seeded RNG, injects the three fault kinds of
a :class:`FaultPolicy`:

* **transient RPC errors** (:class:`~repro.errors.TransientRPCError`) —
  the request never reaches the endpoint body, so retrying is safe;
* **latency spikes** — extra simulated seconds charged to the
  :class:`~repro.distributed.rpc.NetworkModel` (slow replica /
  congested link), visible to retry deadlines;
* **hard crashes** — the server's volatile state is dropped
  (:meth:`GraphServer.crash`) and the request fails with
  :class:`~repro.errors.ShardUnavailableError`; the shard stays down
  until explicitly recovered.

Because the injector raises *before* the endpoint body runs, injected
faults never leave partial state behind — the property the chaos soak
test (tests/test_chaos.py) relies on when it asserts recovered state
equals a fault-free reference run.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, field
from typing import Optional

from repro.errors import (
    ConfigurationError,
    ShardUnavailableError,
    TransientRPCError,
)

__all__ = ["FaultPolicy", "FaultStats", "FaultInjector"]


def _check_rate(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class FaultPolicy:
    """Per-request fault probabilities (evaluated independently).

    All rates are per *endpoint request* — the unit the client already
    accounts as one simulated message.
    """

    transient_error_rate: float = 0.0
    latency_spike_rate: float = 0.0
    latency_spike_seconds: float = 5e-3
    crash_rate: float = 0.0

    def __post_init__(self) -> None:
        _check_rate("transient_error_rate", self.transient_error_rate)
        _check_rate("latency_spike_rate", self.latency_spike_rate)
        _check_rate("crash_rate", self.crash_rate)
        if self.latency_spike_seconds < 0:
            raise ConfigurationError("latency_spike_seconds must be >= 0")


@dataclass
class FaultStats:
    """Counters of injected faults (cluster-wide when the injector is
    shared)."""

    requests: int = 0
    transient_errors: int = 0
    latency_spikes: int = 0
    spike_seconds: float = 0.0
    crashes: int = 0
    refused_while_down: int = 0

    def reset(self) -> None:
        self.requests = 0
        self.transient_errors = 0
        self.latency_spikes = 0
        self.spike_seconds = 0.0
        self.crashes = 0
        self.refused_while_down = 0

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "transient_errors": self.transient_errors,
            "latency_spikes": self.latency_spikes,
            "spike_seconds": self.spike_seconds,
            "crashes": self.crashes,
            "refused_while_down": self.refused_while_down,
        }


class FaultInjector:
    """Seeded chaos source wrapped around graph-server endpoints.

    One injector is normally shared by every server of a cluster so a
    single seed reproduces the whole cluster's fault schedule.

    Parameters
    ----------
    policy:
        The fault probabilities.
    seed:
        Seeds the injector's private RNG — the same seed over the same
        request sequence injects the same faults.
    network:
        Optional :class:`~repro.distributed.rpc.NetworkModel`; latency
        spikes are charged to it so retry deadlines observe them.
    """

    __slots__ = ("policy", "network", "stats", "recorder", "_rng", "_armed")

    def __init__(
        self,
        policy: FaultPolicy,
        seed: int = 0,
        network=None,
    ) -> None:
        self.policy = policy
        self.network = network
        self.stats = FaultStats()
        self.recorder = None
        self._rng = random.Random(seed)
        self._armed = True

    # ------------------------------------------------------------------
    # arming (chaos tests pause injection during verification phases)
    # ------------------------------------------------------------------
    @property
    def armed(self) -> bool:
        return self._armed

    def pause(self) -> None:
        """Stop injecting (verification phases of chaos tests)."""
        self._armed = False

    def resume(self) -> None:
        self._armed = True

    def set_policy(self, policy: "FaultPolicy") -> "FaultPolicy":
        """Swap the active fault policy, returning the previous one.

        Scenario harnesses use this as a runtime chaos knob (e.g. a
        brownout phase raises ``latency_spike_rate`` mid-run and
        restores the returned policy afterwards).  The RNG stream is
        untouched, so a swapped-and-restored schedule stays replayable.
        """
        previous = self.policy
        self.policy = policy
        rec = self.recorder
        if rec is not None:
            rec.record(
                "fault",
                "policy_swap",
                t=self._now(),
                old=asdict(previous),
                new=asdict(policy),
            )
        return previous

    def _now(self) -> Optional[float]:
        """Simulated time for recorder stamps (None lets the recorder
        fall back to its own clock)."""
        network = self.network
        return network.now() if network is not None else None

    # ------------------------------------------------------------------
    # the hook servers call on every endpoint entry
    # ------------------------------------------------------------------
    def on_request(self, server, endpoint: str) -> float:
        """Roll the dice for one request against ``server``.

        Returns extra simulated latency seconds (0.0 normally); raises
        :class:`TransientRPCError` or — after crashing the server —
        :class:`ShardUnavailableError`.
        """
        if not self._armed:
            return 0.0
        self.stats.requests += 1
        rng = self._rng
        policy = self.policy
        if policy.crash_rate and rng.random() < policy.crash_rate:
            self.stats.crashes += 1
            rec = self.recorder
            if rec is not None:
                rec.record(
                    "fault",
                    "injected_crash",
                    t=self._now(),
                    shard=server.shard_id,
                    replica=server.replica_index,
                    endpoint=endpoint,
                )
            server.crash()
            raise ShardUnavailableError(
                f"injected crash: shard {server.shard_id} replica "
                f"{server.replica_index} went down during {endpoint!r}",
                shard=server.shard_id,
                endpoint=endpoint,
                timestamp=self._now(),
            )
        if (
            policy.transient_error_rate
            and rng.random() < policy.transient_error_rate
        ):
            self.stats.transient_errors += 1
            rec = self.recorder
            if rec is not None:
                rec.record(
                    "fault",
                    "transient",
                    t=self._now(),
                    shard=server.shard_id,
                    replica=server.replica_index,
                    endpoint=endpoint,
                )
            raise TransientRPCError(
                f"injected transient fault on shard {server.shard_id} "
                f"replica {server.replica_index} endpoint {endpoint!r}",
                shard=server.shard_id,
                endpoint=endpoint,
                timestamp=self._now(),
            )
        if (
            policy.latency_spike_rate
            and rng.random() < policy.latency_spike_rate
        ):
            spike = policy.latency_spike_seconds
            self.stats.latency_spikes += 1
            self.stats.spike_seconds += spike
            rec = self.recorder
            if rec is not None:
                rec.record(
                    "fault",
                    "latency_spike",
                    t=self._now(),
                    shard=server.shard_id,
                    replica=server.replica_index,
                    endpoint=endpoint,
                    seconds=spike,
                )
            if self.network is not None:
                self.network.sleep(spike)
            return spike
        return 0.0

    def note_refused(self) -> None:
        """Count a request refused because the shard was already down."""
        self.stats.refused_while_down += 1
