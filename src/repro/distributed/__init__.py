"""Distributed storage layer: partitioning, graph servers, routing client,
fault injection, retry/backoff, shard replication, and the in-process
cluster harness.
"""

from repro.distributed.client import UNAVAILABLE, GraphClient
from repro.distributed.cluster import LocalCluster, ShardInfo
from repro.distributed.faults import FaultInjector, FaultPolicy, FaultStats
from repro.distributed.partition import (
    HashBySourcePartitioner,
    Partitioner,
    splitmix64,
)
from repro.distributed.rebalance import (
    Move,
    OverridePartitioner,
    execute_plan,
    plan_rebalance,
)
from repro.distributed.retry import RetryPolicy, RetryStats
from repro.distributed.rpc import NetworkModel, NetworkStats
from repro.distributed.server import GraphServer, ServerStats

__all__ = [
    "GraphClient",
    "UNAVAILABLE",
    "LocalCluster",
    "ShardInfo",
    "FaultInjector",
    "FaultPolicy",
    "FaultStats",
    "HashBySourcePartitioner",
    "Partitioner",
    "splitmix64",
    "Move",
    "OverridePartitioner",
    "execute_plan",
    "plan_rebalance",
    "RetryPolicy",
    "RetryStats",
    "NetworkModel",
    "NetworkStats",
    "GraphServer",
    "ServerStats",
]
