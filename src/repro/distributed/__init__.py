"""Distributed storage layer: partitioning, graph servers, routing client,
fault injection, retry/backoff, shard replication, and the in-process
cluster harness.
"""

from repro.distributed.client import UNAVAILABLE, GraphClient, ServingStats
from repro.distributed.cluster import LocalCluster, ShardInfo
from repro.distributed.faults import FaultInjector, FaultPolicy, FaultStats
from repro.distributed.hotset import (
    HotReplicaDirectory,
    HotSetStats,
    HotSetTracker,
)
from repro.distributed.partition import (
    HashBySourcePartitioner,
    Partitioner,
    splitmix64,
)
from repro.distributed.rebalance import (
    MigrationStats,
    Move,
    OverridePartitioner,
    execute_plan,
    plan_rebalance,
)
from repro.distributed.retry import RetryPolicy, RetryStats
from repro.distributed.rpc import NetworkModel, NetworkStats
from repro.distributed.server import GraphServer, ServerStats

__all__ = [
    "GraphClient",
    "ServingStats",
    "UNAVAILABLE",
    "LocalCluster",
    "ShardInfo",
    "FaultInjector",
    "FaultPolicy",
    "FaultStats",
    "HotReplicaDirectory",
    "HotSetStats",
    "HotSetTracker",
    "HashBySourcePartitioner",
    "Partitioner",
    "splitmix64",
    "MigrationStats",
    "Move",
    "OverridePartitioner",
    "execute_plan",
    "plan_rebalance",
    "RetryPolicy",
    "RetryStats",
    "NetworkModel",
    "NetworkStats",
    "GraphServer",
    "ServerStats",
]
