"""Distributed storage layer: partitioning, graph servers, routing client,
and the in-process cluster harness.
"""

from repro.distributed.client import GraphClient
from repro.distributed.cluster import LocalCluster, ShardInfo
from repro.distributed.partition import (
    HashBySourcePartitioner,
    Partitioner,
    splitmix64,
)
from repro.distributed.rebalance import (
    Move,
    OverridePartitioner,
    execute_plan,
    plan_rebalance,
)
from repro.distributed.rpc import NetworkModel, NetworkStats
from repro.distributed.server import GraphServer, ServerStats

__all__ = [
    "GraphClient",
    "LocalCluster",
    "ShardInfo",
    "HashBySourcePartitioner",
    "Partitioner",
    "splitmix64",
    "Move",
    "OverridePartitioner",
    "execute_plan",
    "plan_rebalance",
    "NetworkModel",
    "NetworkStats",
    "GraphServer",
    "ServerStats",
]
