"""Graph server: one shard of the distributed storage layer (paper Fig. 1).

A server owns the samtrees of every source vertex hashed to it, plus an
attribute store for the features of vertices it hosts.  Its interface is
batch-first — the client ships one message per (server, request kind)
per batch — and it counts requests so benchmarks can report routing
fan-out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.memory import DEFAULT_MEMORY_MODEL, MemoryModel
from repro.core.samtree import SamtreeConfig
from repro.core.snapshot import RNGLike
from repro.core.topology import DynamicGraphStore
from repro.core.types import DEFAULT_ETYPE, EdgeOp, GraphStoreAPI
from repro.storage.attributes import AttributeStore

__all__ = ["GraphServer", "ServerStats"]


@dataclass
class ServerStats:
    """Per-server request counters."""

    update_requests: int = 0
    sample_requests: int = 0
    attribute_requests: int = 0
    ops_applied: int = 0

    def reset(self) -> None:
        self.update_requests = 0
        self.sample_requests = 0
        self.attribute_requests = 0
        self.ops_applied = 0


class GraphServer:
    """One storage shard: a topology store + an attribute store."""

    def __init__(
        self,
        shard_id: int,
        store: Optional[GraphStoreAPI] = None,
        config: Optional[SamtreeConfig] = None,
    ) -> None:
        self.shard_id = shard_id
        self.store: GraphStoreAPI = (
            store if store is not None else DynamicGraphStore(config)
        )
        self.attributes = AttributeStore()
        self.stats = ServerStats()

    # ------------------------------------------------------------------
    # update path
    # ------------------------------------------------------------------
    def apply_ops(self, ops: Sequence[EdgeOp]) -> List[bool]:
        """Apply a batch of edge operations owned by this shard."""
        self.stats.update_requests += 1
        self.stats.ops_applied += len(ops)
        return [self.store.apply(op) for op in ops]

    def ingest_batch(self, batch):
        """Apply one columnar :class:`~repro.core.ingest.EdgeBatch`.

        The bulk-write counterpart of :meth:`sample_neighbors_many`: the
        client ships one columnar message per shard and the store applies
        it through its vectorized path (bottom-up samtree builds on the
        samtree store, per-row replay elsewhere).  Returns the shard's
        :class:`~repro.core.ingest.IngestStats`.
        """
        self.stats.update_requests += 1
        self.stats.ops_applied += len(batch)
        return self.store.apply_edge_batch(batch)

    # ------------------------------------------------------------------
    # sampling path
    # ------------------------------------------------------------------
    def sample_neighbors_many(
        self,
        srcs: Sequence[int],
        k: int,
        rng: RNGLike = None,
        etype: int = DEFAULT_ETYPE,
    ):
        """One batched request: the shard's store answers the whole
        source list through its vectorized read path (snapshot cache on
        the samtree store, loop fallback elsewhere)."""
        self.stats.sample_requests += 1
        return self.store.sample_neighbors_many(srcs, k, rng, etype)

    def sample_neighbors_uniform_many(
        self,
        srcs: Sequence[int],
        k: int,
        rng: RNGLike = None,
        etype: int = DEFAULT_ETYPE,
    ):
        """Uniform variant of :meth:`sample_neighbors_many`."""
        self.stats.sample_requests += 1
        return self.store.sample_neighbors_uniform_many(srcs, k, rng, etype)

    def sample_neighbors_batch(
        self,
        srcs: Sequence[int],
        k: int,
        rng: RNGLike = None,
        etype: int = DEFAULT_ETYPE,
    ) -> List[List[int]]:
        """Weighted neighbor samples for sources owned by this shard
        (compatibility form: plain ``List[List[int]]`` rows)."""
        rows = self.sample_neighbors_many(srcs, k, rng, etype)
        return [[int(v) for v in row] for row in rows]

    def neighbors_batch(
        self, srcs: Sequence[int], etype: int = DEFAULT_ETYPE
    ) -> List[List[Tuple[int, float]]]:
        """Full adjacency fetch (used by full-neighborhood aggregation)."""
        self.stats.sample_requests += 1
        return [self.store.neighbors(s, etype) for s in srcs]

    def degrees(
        self, srcs: Sequence[int], etype: int = DEFAULT_ETYPE
    ) -> List[int]:
        """Out-degrees of the given sources."""
        return [self.store.degree(s, etype) for s in srcs]

    # ------------------------------------------------------------------
    # attribute path
    # ------------------------------------------------------------------
    def gather_attributes(
        self, name: str, vertices: Sequence[int]
    ) -> np.ndarray:
        """Feature rows for vertices hosted on this shard."""
        self.stats.attribute_requests += 1
        return self.attributes.gather(name, vertices)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def nbytes(self, model: MemoryModel = DEFAULT_MEMORY_MODEL) -> int:
        """Modeled bytes of this shard (topology + attributes)."""
        return self.store.nbytes(model) + self.attributes.nbytes()
