"""Graph server: one shard of the distributed storage layer (paper Fig. 1).

A server owns the samtrees of every source vertex hashed to it, plus an
attribute store for the features of vertices it hosts.  Its interface is
batch-first — the client ships one message per (server, request kind)
per batch — and it counts requests so benchmarks can report routing
fan-out.

Fault tolerance (the production posture of the paper's 54-server
storage tier):

* every endpoint passes through :meth:`_serve`, which refuses requests
  while the server is down (:class:`~repro.errors.ShardUnavailableError`)
  and gives an attached :class:`~repro.distributed.faults.FaultInjector`
  the chance to inject transient errors, latency spikes, or crashes;
* when a :class:`~repro.storage.wal.ShardWAL` is attached, every
  mutation is appended to the log **before** it is applied (write-ahead),
  and :meth:`checkpoint` captures a full binary image and truncates the
  log;
* :meth:`crash` drops all volatile state (store + attributes);
  :meth:`recover` rebuilds it from the last checkpoint plus a WAL-tail
  replay through the columnar bulk-ingest path — or, when a live peer
  replica is given, from a state transfer off that peer.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.memory import DEFAULT_MEMORY_MODEL, MemoryModel
from repro.core.samtree import SamtreeConfig
from repro.core.snapshot import RNGLike
from repro.core.topology import DynamicGraphStore
from repro.core.types import DEFAULT_ETYPE, EdgeOp, GraphStoreAPI
from repro.errors import ConfigurationError, ShardUnavailableError
from repro.obs.trace import NULL_SPAN
from repro.storage.attributes import AttributeStore
from repro.storage.checkpoint import (
    load_attributes,
    load_store,
    save_attributes,
    save_store,
)
from repro.storage.wal import ShardWAL

__all__ = ["GraphServer", "ServerStats"]


@dataclass
class ServerStats:
    """Per-server request counters.

    Every endpoint bumps exactly one request counter — scalar op batches
    (``update_requests``) and columnar ingests (``ingest_requests``) are
    counted separately so dashboards can tell the two write shapes
    apart; all read endpoints (sampling, adjacency, degrees) count as
    ``sample_requests``.

    ``requests`` counts every arrival at the :meth:`GraphServer._serve`
    prologue, *including* requests refused while the replica is down
    (those also bump ``refused_requests``).  The accounting identity

    ``requests == refused_requests + sum(per-endpoint counters)``

    holds for every endpoint that reaches its counter — and, with a
    :class:`~repro.distributed.faults.FaultInjector` attached for the
    server's whole lifetime, ``refused_requests`` equals the injector's
    ``refused_while_down`` and ``requests - refused_requests`` equals
    its ``requests`` ledger (``tests/test_faults_retry.py`` pins both).
    """

    requests: int = 0
    refused_requests: int = 0
    update_requests: int = 0
    ingest_requests: int = 0
    sample_requests: int = 0
    #: Frontier rows served by the sampling/adjacency read endpoints —
    #: the per-shard *traffic volume* series (RPC counts hide skew once
    #: the client batches one message per shard per window).
    sample_sources: int = 0
    attribute_requests: int = 0
    ops_applied: int = 0
    recoveries: int = 0
    wal_records_replayed: int = 0

    def reset(self) -> None:
        self.requests = 0
        self.refused_requests = 0
        self.update_requests = 0
        self.ingest_requests = 0
        self.sample_requests = 0
        self.sample_sources = 0
        self.attribute_requests = 0
        self.ops_applied = 0
        self.recoveries = 0
        self.wal_records_replayed = 0


class GraphServer:
    """One storage shard: a topology store + an attribute store.

    Parameters
    ----------
    shard_id:
        Which shard of the partitioner this server owns.
    store:
        Optional pre-built topology store (otherwise a fresh
        :class:`DynamicGraphStore` with ``config``).
    config:
        Samtree parameters of the default store.
    wal:
        Optional :class:`ShardWAL`; attaching one turns on write-ahead
        durability for the topology (attributes are durable via
        :meth:`checkpoint` only).
    faults:
        Optional :class:`FaultInjector` consulted on every endpoint.
    store_factory:
        How to rebuild an empty store on recovery without a checkpoint
        (defaults to ``DynamicGraphStore(config)``).
    replica_index:
        Position of this server inside its shard's replica group
        (0 = primary).
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`; when given, every
        endpoint opens a ``server.<endpoint>`` span (a child of the
        client's RPC span, since the cluster runs in-process) and the
        batched sampling path nests a ``samtree.sample_many`` span
        around the store descent.
    """

    def __init__(
        self,
        shard_id: int,
        store: Optional[GraphStoreAPI] = None,
        config: Optional[SamtreeConfig] = None,
        wal: Optional[ShardWAL] = None,
        faults=None,
        store_factory: Optional[Callable[[], GraphStoreAPI]] = None,
        replica_index: int = 0,
        tracer=None,
    ) -> None:
        self.shard_id = shard_id
        self.replica_index = replica_index
        self._config = config
        self._store_factory = store_factory
        self.store: Optional[GraphStoreAPI] = (
            store if store is not None else self._fresh_store()
        )
        self.attributes: Optional[AttributeStore] = AttributeStore()
        self.stats = ServerStats()
        self.wal = wal
        self.faults = faults
        self.tracer = tracer
        #: Optional flight recorder (the cluster's ``attach_recorder``
        #: propagates one); WAL and crash/recover events land in it.
        self.recorder = None
        self._alive = True
        # Durable (survives crash) checkpoint images of this replica.
        self._checkpoint_topology: Optional[bytes] = None
        self._checkpoint_attributes: Optional[bytes] = None

    def _fresh_store(self) -> GraphStoreAPI:
        if self._store_factory is not None:
            return self._store_factory()
        return DynamicGraphStore(self._config)

    # ------------------------------------------------------------------
    # availability / fault hooks
    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """Whether this replica is serving requests."""
        return self._alive

    def _serve(self, endpoint: str) -> None:
        """Endpoint prologue: refuse while down, roll injected faults.

        Bumps ``stats.requests`` for every arrival and
        ``stats.refused_requests`` for refusals, so the server's own
        ledger reconciles with the fault injector's
        (``refused_requests == FaultStats.refused_while_down`` when an
        injector is attached for the server's whole lifetime).
        """
        self.stats.requests += 1
        if not self._alive:
            self.stats.refused_requests += 1
            if self.faults is not None:
                self.faults.note_refused()
            raise ShardUnavailableError(
                f"shard {self.shard_id} replica {self.replica_index} is "
                f"down (endpoint {endpoint!r})",
                shard=self.shard_id,
                endpoint=endpoint,
                timestamp=self._recorder_now(),
            )
        if self.faults is not None:
            self.faults.on_request(self, endpoint)

    def _recorder_now(self) -> Optional[float]:
        """Simulated time for recorder stamps / error context (None when
        no network model is reachable)."""
        faults = self.faults
        if faults is not None and faults.network is not None:
            return faults.network.now()
        return None

    def _span(self, endpoint: str, _prefix: str = "server.", **tags):
        """A ``server.<endpoint>`` span (no-op without a tracer)."""
        if self.tracer is None:
            return NULL_SPAN
        return self.tracer.span(
            f"{_prefix}{endpoint}",
            shard=self.shard_id,
            replica=self.replica_index,
            **tags,
        )

    # ------------------------------------------------------------------
    # crash / checkpoint / recovery
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Simulate a hard crash: all volatile state is lost.

        The WAL and checkpoint images model durable storage and
        survive; every endpoint raises :class:`ShardUnavailableError`
        until :meth:`recover` is called.  Idempotent.
        """
        self._alive = False
        self.store = None
        self.attributes = None
        rec = self.recorder
        if rec is not None:
            rec.record(
                "fault",
                "crash",
                t=self._recorder_now(),
                shard=self.shard_id,
                replica=self.replica_index,
            )

    def checkpoint(self) -> int:
        """Capture a durable binary image and truncate the WAL.

        Returns the checkpoint size in bytes.  Requires the samtree
        store (binary image format of :mod:`repro.storage.checkpoint`).
        """
        if not self._alive:
            raise ShardUnavailableError(
                f"cannot checkpoint crashed shard {self.shard_id} "
                f"replica {self.replica_index}"
            )
        if not isinstance(self.store, DynamicGraphStore):
            raise ConfigurationError(
                "checkpointing requires the samtree-backed "
                "DynamicGraphStore; baseline stores are not durable"
            )
        buf = io.BytesIO()
        save_store(self.store, buf)
        self._checkpoint_topology = buf.getvalue()
        abuf = io.BytesIO()
        save_attributes(self.attributes, abuf)
        self._checkpoint_attributes = abuf.getvalue()
        if self.wal is not None:
            self.wal.truncate()
        total = len(self._checkpoint_topology) + len(
            self._checkpoint_attributes
        )
        rec = self.recorder
        if rec is not None:
            rec.record(
                "wal",
                "checkpoint",
                t=self._recorder_now(),
                shard=self.shard_id,
                replica=self.replica_index,
                bytes=total,
            )
        return total

    def recover(self, sync_from: Optional["GraphServer"] = None) -> int:
        """Rebuild state and come back up; returns WAL records replayed.

        Without ``sync_from``: load the last checkpoint (or start empty)
        and replay the WAL tail through the columnar bulk-ingest path.

        With a live ``sync_from`` peer replica: perform a state transfer
        (serialize the peer's store + attributes into this replica's
        checkpoint, truncate the local WAL) — the path a rejoining
        backup takes after missing writes while it was down.
        """
        if self._alive and self.store is not None:
            return 0
        if sync_from is not None:
            if not sync_from.alive:
                raise ShardUnavailableError(
                    f"cannot sync shard {self.shard_id} replica "
                    f"{self.replica_index} from a dead peer"
                )
            if not isinstance(sync_from.store, DynamicGraphStore):
                raise ConfigurationError(
                    "peer state transfer requires the samtree store"
                )
            buf = io.BytesIO()
            save_store(sync_from.store, buf)
            self._checkpoint_topology = buf.getvalue()
            abuf = io.BytesIO()
            save_attributes(sync_from.attributes, abuf)
            self._checkpoint_attributes = abuf.getvalue()
            if self.wal is not None:
                self.wal.truncate()
        if self._checkpoint_topology is not None:
            self.store = load_store(io.BytesIO(self._checkpoint_topology))
        else:
            self.store = self._fresh_store()
        if self._checkpoint_attributes is not None:
            self.attributes = load_attributes(
                io.BytesIO(self._checkpoint_attributes)
            )
        else:
            self.attributes = AttributeStore()
        replayed = 0
        if self.wal is not None:
            for batch in self.wal.replay():
                self.store.apply_edge_batch(batch)
                replayed += 1
        self._alive = True
        self.stats.recoveries += 1
        self.stats.wal_records_replayed += replayed
        rec = self.recorder
        if rec is not None:
            rec.record(
                "fault",
                "recover",
                t=self._recorder_now(),
                shard=self.shard_id,
                replica=self.replica_index,
                replayed=replayed,
                synced=sync_from is not None,
            )
        return replayed

    # ------------------------------------------------------------------
    # update path
    # ------------------------------------------------------------------
    def apply_ops(self, ops: Sequence[EdgeOp]) -> List[bool]:
        """Apply a batch of edge operations owned by this shard."""
        with self._span("apply_ops", ops=len(ops)):
            self._serve("apply_ops")
            self.stats.update_requests += 1
            self.stats.ops_applied += len(ops)
            if self.wal is not None:
                self.wal.append_ops(ops)
                rec = self.recorder
                if rec is not None:
                    rec.record(
                        "wal",
                        "append",
                        t=self._recorder_now(),
                        shard=self.shard_id,
                        replica=self.replica_index,
                        ops=len(ops),
                    )
            return [self.store.apply(op) for op in ops]

    def ingest_batch(self, batch):
        """Apply one columnar :class:`~repro.core.ingest.EdgeBatch`.

        The bulk-write counterpart of :meth:`sample_neighbors_many`: the
        client ships one columnar message per shard and the store applies
        it through its vectorized path (bottom-up samtree builds on the
        samtree store, per-row replay elsewhere).  Returns the shard's
        :class:`~repro.core.ingest.IngestStats`.
        """
        with self._span("ingest_batch", ops=len(batch)):
            self._serve("ingest_batch")
            self.stats.ingest_requests += 1
            self.stats.ops_applied += len(batch)
            if self.wal is not None:
                self.wal.append_batch(batch)
                rec = self.recorder
                if rec is not None:
                    rec.record(
                        "wal",
                        "append",
                        t=self._recorder_now(),
                        shard=self.shard_id,
                        replica=self.replica_index,
                        ops=len(batch),
                    )
            return self.store.apply_edge_batch(batch)

    def freeze(self, etype: Optional[int] = None) -> int:
        """Compile the store's frozen CSC shard(s) for the hot read path.

        Counted as an ``update_request`` (it replaces server-side state),
        keeping the per-endpoint accounting identity intact.  Returns
        the number of shards compiled; 0 when the store has no frozen
        path (baseline stores).  Subsequent ``sample_neighbors_many``
        RPCs are answered by one frozen kernel per shard until the
        store mutates past its staleness budget.
        """
        with self._span("freeze"):
            self._serve("freeze")
            self.stats.update_requests += 1
            compile_fn = getattr(self.store, "freeze", None)
            if compile_fn is None:
                return 0
            return len(compile_fn(etype))

    # ------------------------------------------------------------------
    # sampling path
    # ------------------------------------------------------------------
    def sample_neighbors_many(
        self,
        srcs: Sequence[int],
        k: int,
        rng: RNGLike = None,
        etype: int = DEFAULT_ETYPE,
    ):
        """One batched request: the shard's store answers the whole
        source list through its vectorized read path (snapshot cache on
        the samtree store, loop fallback elsewhere)."""
        with self._span("sample_neighbors_many", sources=len(srcs), k=k):
            self._serve("sample_neighbors_many")
            self.stats.sample_requests += 1
            self.stats.sample_sources += len(srcs)
            with self._span(
                "samtree.sample_many", _prefix="", sources=len(srcs)
            ):
                return self.store.sample_neighbors_many(srcs, k, rng, etype)

    def sample_neighbors_uniform_many(
        self,
        srcs: Sequence[int],
        k: int,
        rng: RNGLike = None,
        etype: int = DEFAULT_ETYPE,
    ):
        """Uniform variant of :meth:`sample_neighbors_many`."""
        with self._span(
            "sample_neighbors_uniform_many", sources=len(srcs), k=k
        ):
            self._serve("sample_neighbors_uniform_many")
            self.stats.sample_requests += 1
            self.stats.sample_sources += len(srcs)
            with self._span(
                "samtree.sample_many", _prefix="", sources=len(srcs)
            ):
                return self.store.sample_neighbors_uniform_many(
                    srcs, k, rng, etype
                )

    def sample_neighbors_grouped(
        self,
        srcs: Sequence[int],
        counts: Sequence[int],
        k: int,
        rng: RNGLike = None,
        etype: int = DEFAULT_ETYPE,
        uniform: bool = False,
    ):
        """Coalesced batched sampling: distinct sources + multiplicities.

        The client's request-coalescing path ships each duplicated
        source **once** per shard together with its in-window
        multiplicity; the server expands the frontier locally
        (``np.repeat``) and answers through the same vectorized store
        path as :meth:`sample_neighbors_many`, so every occurrence still
        gets its own independent draws (sampling is i.i.d. with
        replacement — expansion order is the client's fan-out order).
        Returns rows in expanded order: ``counts[i]`` consecutive rows
        of ``k`` draws for ``srcs[i]``.
        """
        with self._span(
            "sample_neighbors_grouped",
            sources=len(srcs),
            k=k,
            uniform=uniform,
        ):
            self._serve("sample_neighbors_grouped")
            self.stats.sample_requests += 1
            self.stats.sample_sources += int(sum(counts))
            expanded = np.repeat(
                np.asarray(srcs, dtype=np.int64),
                np.asarray(counts, dtype=np.int64),
            )
            with self._span(
                "samtree.sample_many", _prefix="", sources=expanded.size
            ):
                if uniform:
                    return self.store.sample_neighbors_uniform_many(
                        expanded, k, rng, etype
                    )
                return self.store.sample_neighbors_many(
                    expanded, k, rng, etype
                )

    def sample_neighbors_batch(
        self,
        srcs: Sequence[int],
        k: int,
        rng: RNGLike = None,
        etype: int = DEFAULT_ETYPE,
    ) -> List[List[int]]:
        """Weighted neighbor samples for sources owned by this shard
        (compatibility form: plain ``List[List[int]]`` rows)."""
        rows = self.sample_neighbors_many(srcs, k, rng, etype)
        return [[int(v) for v in row] for row in rows]

    def neighbors_batch(
        self, srcs: Sequence[int], etype: int = DEFAULT_ETYPE
    ) -> List[List[Tuple[int, float]]]:
        """Full adjacency fetch (used by full-neighborhood aggregation)."""
        self._serve("neighbors_batch")
        self.stats.sample_requests += 1
        self.stats.sample_sources += len(srcs)
        return [self.store.neighbors(s, etype) for s in srcs]

    def degrees(
        self, srcs: Sequence[int], etype: int = DEFAULT_ETYPE
    ) -> List[int]:
        """Out-degrees of the given sources."""
        self._serve("degrees")
        self.stats.sample_requests += 1
        self.stats.sample_sources += len(srcs)
        return [self.store.degree(s, etype) for s in srcs]

    def edge_weights(
        self,
        pairs: Sequence[Tuple[int, int]],
        etype: int = DEFAULT_ETYPE,
    ) -> List[Optional[float]]:
        """Weights of the given ``(src, dst)`` pairs (``None`` when
        absent)."""
        self._serve("edge_weights")
        self.stats.sample_requests += 1
        self.stats.sample_sources += len(pairs)
        return [self.store.edge_weight(s, d, etype) for s, d in pairs]

    # ------------------------------------------------------------------
    # attribute path
    # ------------------------------------------------------------------
    def register_attribute(self, name: str, dim: int, dtype=None) -> None:
        """Declare an attribute field on this shard."""
        self._serve("register_attribute")
        self.stats.attribute_requests += 1
        if dtype is None:
            self.attributes.register(name, dim)
        else:
            self.attributes.register(name, dim, dtype)

    def put_attribute(self, name: str, vertex: int, value) -> None:
        """Write one hosted vertex's feature vector."""
        self._serve("put_attribute")
        self.stats.attribute_requests += 1
        self.attributes.put(name, vertex, value)

    def gather_attributes(
        self, name: str, vertices: Sequence[int]
    ) -> np.ndarray:
        """Feature rows for vertices hosted on this shard."""
        self._serve("gather_attributes")
        self.stats.attribute_requests += 1
        return self.attributes.gather(name, vertices)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def nbytes(self, model: MemoryModel = DEFAULT_MEMORY_MODEL) -> int:
        """Modeled bytes of this shard (topology + attributes).

        A crashed replica holds no volatile state, so it reports 0.
        """
        if not self._alive or self.store is None:
            return 0
        return self.store.nbytes(model) + self.attributes.nbytes()
