"""Hot-set tracking for power-law serving traffic (ROADMAP item 3).

Production GNN serving traffic is extremely read-skewed: a tiny set of
source vertices (celebrity accounts, viral items) absorbs most sampling
requests, so aggregate throughput is gated by how the system treats hot
keys, not by average-case kernel speed (GLISP makes the same
observation for placement).  This module provides the measurement half
of the skew-aware serving layer:

* :class:`HotSetTracker` — a space-bounded frequency tracker over
  source-vertex read traffic.  It is the classic **SpaceSaving** top-k
  sketch (Metwally et al.): at most ``capacity`` counters; an untracked
  key arriving at a full table *replaces* the minimum-count entry and
  inherits its count (recorded as that entry's overestimation error),
  which guarantees any key with true frequency above ``N/capacity`` is
  tracked.  On top of SpaceSaving sits an **exponential decay**: every
  ``decay_interval`` observations all counts are halved, so the sketch
  tracks *recent* popularity and a cooled-off hub ages out instead of
  squatting in the top-k forever.

* :class:`HotReplicaDirectory` — the control-plane output: which hot
  sources currently have extra read replicas and on which shards.  The
  :class:`~repro.distributed.client.GraphClient` consults it to spread
  reads round-robin across a hot source's replica set and to fan writes
  out to every copy (copies stay coherent, so sampling from any of them
  is distribution-identical).

Both are plain-Python and O(1) per observation — they sit on the client
hot path, so there is no numpy round-trip for single-batch updates.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "HotSetEntry",
    "HotSetStats",
    "HotSetTracker",
    "HotReplicaDirectory",
]

#: Default counter budget: enough for the head of any realistic zipf
#: (guarantee threshold N/1024 of recent traffic).
DEFAULT_CAPACITY = 1024

#: Halve all counts every this many observations (recency horizon).
DEFAULT_DECAY_INTERVAL = 1 << 17


class HotSetStats:
    """Counters describing tracker behaviour (exported as
    ``repro_hotset_*`` by :func:`repro.obs.instrument.register_cluster`)."""

    __slots__ = ("observations", "replacements", "decays")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.observations = 0
        self.replacements = 0
        self.decays = 0

    def to_dict(self) -> Dict[str, int]:
        return {s: getattr(self, s) for s in self.__slots__}


class HotSetEntry:
    """One tracked source: decayed count + SpaceSaving error bound."""

    __slots__ = ("src", "count", "error")

    def __init__(self, src: int, count: int, error: int) -> None:
        self.src = src
        self.count = count
        self.error = error

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"HotSetEntry(src={self.src}, count={self.count}, error={self.error})"


class HotSetTracker:
    """SpaceSaving top-k over read traffic, with exponential decay.

    Parameters
    ----------
    capacity:
        Maximum number of tracked sources.  SpaceSaving guarantees every
        source whose (decayed) frequency exceeds ``observations/capacity``
        is present in the table.
    decay_interval:
        All counts are halved after this many observations; entries
        decayed to zero are dropped, so the table self-cleans when the
        hot set shifts.
    """

    __slots__ = ("capacity", "decay_interval", "stats", "_entries",
                 "_buckets", "_min_count", "_since_decay")

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        decay_interval: int = DEFAULT_DECAY_INTERVAL,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"capacity must be >= 1, got {capacity}"
            )
        if decay_interval < 1:
            raise ConfigurationError(
                f"decay_interval must be >= 1, got {decay_interval}"
            )
        self.capacity = capacity
        self.decay_interval = decay_interval
        self.stats = HotSetStats()
        self._entries: Dict[int, HotSetEntry] = {}
        # Stream-summary index: count -> set of srcs at that count, plus
        # the current minimum count.  Victim selection is O(1) instead
        # of an O(capacity) scan — the tracker sits on the client's
        # per-batch hot path, where tail churn replaces constantly.
        self._buckets: Dict[int, set] = {}
        self._min_count = 0
        self._since_decay = 0

    # -- bucket maintenance ------------------------------------------------
    def _bucket_add(self, src: int, count: int) -> None:
        bucket = self._buckets.get(count)
        if bucket is None:
            self._buckets[count] = {src}
        else:
            bucket.add(src)

    def _bucket_remove(self, src: int, count: int, fallback: int) -> None:
        bucket = self._buckets[count]
        bucket.discard(src)
        if not bucket:
            del self._buckets[count]
            if count == self._min_count:
                # Rare: the min bucket emptied.  The next min is the
                # smallest remaining count (O(#distinct counts), itself
                # bounded by capacity and tiny under zipf traffic).
                self._min_count = (
                    min(self._buckets) if self._buckets else fallback
                )

    # -- observation path --------------------------------------------------
    def observe(self, src: int, count: int = 1) -> None:
        """Record ``count`` reads of one source."""
        if count <= 0:
            return
        self.stats.observations += count
        self._since_decay += count
        entries = self._entries
        entry = entries.get(src)
        if entry is not None:
            old = entry.count
            entry.count += count
            self._bucket_remove(src, old, entry.count)
            self._bucket_add(src, entry.count)
        elif len(entries) < self.capacity:
            entries[src] = HotSetEntry(src, count, 0)
            self._bucket_add(src, count)
            if len(entries) == 1 or count < self._min_count:
                self._min_count = count
        else:
            # SpaceSaving replacement: the new key inherits the minimum
            # count (its possible overestimation, recorded as error).
            victim_count = self._min_count
            victim_src = next(iter(self._buckets[victim_count]))
            new_count = victim_count + count
            del entries[victim_src]
            entries[src] = HotSetEntry(src, new_count, victim_count)
            self._bucket_remove(victim_src, victim_count, new_count)
            self._bucket_add(src, new_count)
            if new_count < self._min_count:
                self._min_count = new_count
            self.stats.replacements += 1
        if self._since_decay >= self.decay_interval:
            self._decay()

    def observe_many(self, srcs: Iterable[int]) -> None:
        """Record one read per element (duplicates count individually)."""
        for src in srcs:
            self.observe(int(src))

    def observe_counts(self, pairs: Iterable[Tuple[int, int]]) -> None:
        """Record pre-aggregated ``(src, multiplicity)`` pairs — the shape
        the coalescing client produces per batch."""
        for src, count in pairs:
            self.observe(int(src), int(count))

    def _decay(self) -> None:
        self._since_decay = 0
        self.stats.decays += 1
        dead: List[int] = []
        for entry in self._entries.values():
            entry.count >>= 1
            entry.error >>= 1
            if entry.count == 0:
                dead.append(entry.src)
        for src in dead:
            del self._entries[src]
        # Rebuild the stream-summary index in one pass (decays are rare
        # — every ``decay_interval`` observations).
        self._buckets.clear()
        self._min_count = 0
        for entry in self._entries.values():
            self._bucket_add(entry.src, entry.count)
            if self._min_count == 0 or entry.count < self._min_count:
                self._min_count = entry.count

    # -- queries -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, src: int) -> bool:
        return src in self._entries

    def count(self, src: int) -> int:
        """Decayed (possibly overestimated) read count of one source."""
        entry = self._entries.get(src)
        return entry.count if entry is not None else 0

    def top(self, n: int) -> List[HotSetEntry]:
        """The ``n`` hottest tracked sources, hottest first."""
        if n < 0:
            raise ConfigurationError(f"n must be >= 0, got {n}")
        ranked = sorted(
            self._entries.values(), key=lambda e: (-e.count, e.src)
        )
        return ranked[:n]

    def hot_sources(
        self, n: int, min_share: float = 0.0
    ) -> List[HotSetEntry]:
        """Top-``n`` entries whose share of observed traffic is at least
        ``min_share`` — the replication planner's candidate set (a
        barely-warm source is not worth the copy cost)."""
        if not 0.0 <= min_share <= 1.0:
            raise ConfigurationError(
                f"min_share must be in [0, 1], got {min_share}"
            )
        total = max(1, self.stats.observations)
        return [
            e for e in self.top(n) if e.count / total >= min_share
        ]

    def clear(self) -> None:
        """Drop all tracked entries (stats are kept; use ``stats.reset``)."""
        self._entries.clear()
        self._buckets.clear()
        self._min_count = 0
        self._since_decay = 0


class HotReplicaDirectory:
    """Which hot sources have extra read replicas, and where.

    Maps ``src -> [shard, ...]`` — the **full** read set including the
    primary, in a stable order.  The client rotates through the list per
    read (round-robin spreading) and fans writes out to every member, so
    all copies stay coherent and sampling from any copy is
    distribution-identical to sampling the primary.
    """

    __slots__ = ("_replicas", "_rotation")

    def __init__(self) -> None:
        self._replicas: Dict[int, List[int]] = {}
        self._rotation: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._replicas)

    def __bool__(self) -> bool:
        return bool(self._replicas)

    def __contains__(self, src: int) -> bool:
        return src in self._replicas

    def items(self):
        return self._replicas.items()

    def shards(self, src: int) -> Optional[List[int]]:
        """Full read set of a source (``None`` when not replicated)."""
        return self._replicas.get(src)

    def extras(self, src: int, primary: int) -> List[int]:
        """Extra copies beyond the primary (write fan-out targets)."""
        group = self._replicas.get(src)
        if not group:
            return []
        return [s for s in group if s != primary]

    def set_replicas(self, src: int, shards: Sequence[int]) -> None:
        """Install/replace the read set of one source.

        ``shards`` must be non-empty and duplicate-free; the first
        element is conventionally the primary.
        """
        shard_list = [int(s) for s in shards]
        if not shard_list:
            raise ConfigurationError(
                f"replica set of source {src} must be non-empty"
            )
        if len(set(shard_list)) != len(shard_list):
            raise ConfigurationError(
                f"replica set of source {src} has duplicates: {shard_list}"
            )
        self._replicas[int(src)] = shard_list
        self._rotation.setdefault(int(src), 0)

    def drop(self, src: int) -> bool:
        """Remove a source from the directory (returns whether present)."""
        self._rotation.pop(src, None)
        return self._replicas.pop(src, None) is not None

    def drop_shard(self, src: int, shard: int) -> None:
        """Remove one shard from a source's read set (e.g. after a
        failed coherence write); dropping the last shard removes the
        source entirely."""
        group = self._replicas.get(src)
        if group is None:
            return
        remaining = [s for s in group if s != shard]
        if remaining:
            self._replicas[src] = remaining
            self._rotation[src] = 0
        else:
            self.drop(src)

    def route(self, src: int) -> Optional[int]:
        """Next shard to read this source from (round-robin), or ``None``
        when the source is not replicated."""
        group = self._replicas.get(src)
        if not group:
            return None
        slot = self._rotation.get(src, 0)
        self._rotation[src] = (slot + 1) % len(group)
        return group[slot % len(group)]

    def clear(self) -> None:
        self._replicas.clear()
        self._rotation.clear()
