"""Graph client: routes requests to the owning graph servers.

The client implements :class:`~repro.core.types.GraphStoreAPI`, so every
consumer in the package — benchmark drivers, the GNN samplers, the PALM
executor's store-facing code — can run unmodified against either a local
store or a cluster.  Batch requests are grouped per shard (one simulated
message per shard per batch) and merged back in input order.

Fault tolerance:

* every per-shard RPC runs through an optional
  :class:`~repro.distributed.retry.RetryPolicy` — transient faults are
  retried with exponential backoff over *simulated* time (backoff sleeps
  and per-attempt transfer costs both advance the
  :class:`~repro.distributed.rpc.NetworkModel` clock, which also bounds
  per-request deadlines);
* with ``replica_groups``, writes are primary-backup (applied to every
  live replica of the owning shard) and reads fail over from the
  primary to backups;
* with ``degraded_reads=True``, a read whose shard has **no** live
  replica returns the :data:`UNAVAILABLE` marker for the affected
  sources instead of raising — callers get partial batch results with
  explicit per-source outage markers.  ``UNAVAILABLE`` is a falsy,
  empty-iterable singleton, so samplers that treat empty rows as
  "no neighbors" degrade gracefully while callers that care can test
  ``row is UNAVAILABLE``.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.ingest import EdgeBatch, IngestStats
from repro.core.memory import DEFAULT_MEMORY_MODEL, MemoryModel
from repro.core.snapshot import RNGLike
from repro.core.types import DEFAULT_ETYPE, EdgeOp, GraphStoreAPI, OpKind
from repro.distributed.partition import Partitioner
from repro.distributed.retry import RetryPolicy
from repro.distributed.rpc import NetworkModel
from repro.distributed.server import GraphServer
from repro.errors import (
    ConfigurationError,
    PartitionError,
    RetryExhaustedError,
    ShardUnavailableError,
)
from repro.obs.trace import NULL_SPAN

__all__ = ["GraphClient", "UNAVAILABLE"]

#: Modeled payload bytes per edge operation / sample request entry.
_OP_BYTES = 8 + 8 + 4 + 1
_SAMPLE_REQ_BYTES = 8
_SAMPLE_RESP_BYTES = 8
#: Modeled bytes of a scalar query (degree / edge weight / adjacency).
_QUERY_BYTES = 16


class _UnavailableType(tuple):
    """Singleton marker for results from shards with no live replica.

    An empty tuple subclass: falsy, iterates empty (samplers degrade
    gracefully), and identity-testable (``row is UNAVAILABLE``).
    """

    __slots__ = ()

    def __new__(cls) -> "_UnavailableType":
        return super().__new__(cls, ())

    def __repr__(self) -> str:
        return "<UNAVAILABLE>"


#: Per-source marker returned by degraded reads.
UNAVAILABLE = _UnavailableType()

#: Failures that make one replica useless for this request but leave
#: the rest of the group worth trying.
_FAILOVER_ERRORS = (ShardUnavailableError, RetryExhaustedError)


class GraphClient(GraphStoreAPI):
    """Store-shaped façade over a set of :class:`GraphServer` shards."""

    def __init__(
        self,
        servers: Sequence[GraphServer],
        partitioner: Partitioner,
        network: Optional[NetworkModel] = None,
        replica_groups: Optional[Sequence[Sequence[GraphServer]]] = None,
        retry: Optional[RetryPolicy] = None,
        degraded_reads: bool = False,
        tracer=None,
    ) -> None:
        if len(servers) != partitioner.num_shards:
            raise PartitionError(
                f"{len(servers)} servers but partitioner expects "
                f"{partitioner.num_shards} shards"
            )
        self.servers = list(servers)
        if replica_groups is None:
            self.replica_groups: List[List[GraphServer]] = [
                [s] for s in self.servers
            ]
        else:
            if len(replica_groups) != len(self.servers):
                raise PartitionError(
                    f"{len(replica_groups)} replica groups but "
                    f"{len(self.servers)} shards"
                )
            self.replica_groups = [list(g) for g in replica_groups]
            for shard, group in enumerate(self.replica_groups):
                if not group:
                    raise ConfigurationError(
                        f"replica group of shard {shard} is empty"
                    )
                if group[0] is not self.servers[shard]:
                    raise ConfigurationError(
                        f"replica group {shard} must lead with the "
                        f"primary server"
                    )
        self.partitioner = partitioner
        self.network = network
        self.retry = retry
        self.degraded_reads = degraded_reads
        self.tracer = tracer

    # ------------------------------------------------------------------
    # routing helpers
    # ------------------------------------------------------------------
    def _tspan(self, name: str, **tags):
        """A client-side span (no-op without a tracer)."""
        if self.tracer is None:
            return NULL_SPAN
        return self.tracer.span(name, **tags)

    def _account(self, payload_bytes: int) -> float:
        """Charge one message; returns its simulated transfer seconds."""
        if self.network is not None:
            return self.network.send(payload_bytes)
        return 0.0

    def _call(self, server: GraphServer, payload_bytes: int, fn):
        """One RPC against one replica, with retries on transient faults.

        Every attempt is charged to the network model (retries cost
        messages), and the retry policy measures deadlines / accounts
        backoff on the same simulated clock.  With a tracer attached,
        each attempt opens an ``rpc.attempt`` span (numbered from 1) —
        a failed attempt closes its span with ``status="error"`` and the
        exception type, so retries are visible in the trace tree.
        """
        if self.tracer is None:

            def attempt():
                self._account(payload_bytes)
                return fn(server)

        else:
            counter = [0]

            def attempt():
                counter[0] += 1
                with self.tracer.span(
                    "rpc.attempt",
                    attempt=counter[0],
                    shard=server.shard_id,
                    replica=server.replica_index,
                    bytes=payload_bytes,
                ):
                    self._account(payload_bytes)
                    return fn(server)

        if self.retry is None:
            return attempt()
        if self.network is not None:
            return self.retry.run(
                attempt, now=self.network.now, sleep=self.network.sleep
            )
        return self.retry.run(attempt)

    def _read_shard(self, shard: int, payload_bytes: int, fn):
        """Read with failover: primary first, then backups in order.

        Returns :data:`UNAVAILABLE` when every replica is down and
        degraded reads are enabled; raises otherwise.
        """
        group = self.replica_groups[shard]
        with self._tspan(
            "rpc.read_shard", shard=shard, replicas=len(group)
        ) as span:
            last: Optional[Exception] = None
            for server in group:
                try:
                    return self._call(server, payload_bytes, fn)
                except _FAILOVER_ERRORS as exc:
                    last = exc
            if self.degraded_reads:
                span.set_tag("degraded", True)
                return UNAVAILABLE
            raise ShardUnavailableError(
                f"all {len(group)} replica(s) of shard {shard} are "
                f"unavailable"
            ) from last

    def _write_shard(self, shard: int, payload_bytes: int, fn):
        """Primary-backup write: apply to every live replica.

        Returns the first successful replica's result (the logical
        outcome — replicas apply identical state transitions).  Raises
        :class:`ShardUnavailableError` only when **no** replica accepted
        the write.
        """
        group = self.replica_groups[shard]
        with self._tspan(
            "rpc.write_shard", shard=shard, replicas=len(group)
        ) as span:
            result = None
            applied = 0
            last: Optional[Exception] = None
            for server in group:
                try:
                    r = self._call(server, payload_bytes, fn)
                except _FAILOVER_ERRORS as exc:
                    last = exc
                    continue
                applied += 1
                if applied == 1:
                    result = r
            if applied == 0:
                raise ShardUnavailableError(
                    f"write rejected: all {len(group)} replica(s) of "
                    f"shard {shard} are unavailable"
                ) from last
            span.set_tag("applied", applied)
            return result

    def _live_store(self, shard: int):
        """First live replica's store (control-plane introspection —
        no fault injection, no network charge)."""
        for server in self.replica_groups[shard]:
            if server.alive:
                return server.store
        raise ShardUnavailableError(f"no live replica of shard {shard}")

    def _any_live_server(self) -> GraphServer:
        for group in self.replica_groups:
            for server in group:
                if server.alive:
                    return server
        raise ShardUnavailableError("no live server in the cluster")

    # ------------------------------------------------------------------
    # single-edge updates (each one message per replica)
    # ------------------------------------------------------------------
    def add_edge(
        self,
        src: int,
        dst: int,
        weight: float = 1.0,
        etype: int = DEFAULT_ETYPE,
    ) -> bool:
        op = EdgeOp(OpKind.INSERT, src, dst, weight, etype)
        return self._write_shard(
            self.partitioner.shard_for(src),
            _OP_BYTES,
            lambda s: s.apply_ops([op])[0],
        )

    def update_edge(
        self, src: int, dst: int, weight: float, etype: int = DEFAULT_ETYPE
    ) -> bool:
        op = EdgeOp(OpKind.UPDATE, src, dst, weight, etype)
        return self._write_shard(
            self.partitioner.shard_for(src),
            _OP_BYTES,
            lambda s: s.apply_ops([op])[0],
        )

    def remove_edge(
        self, src: int, dst: int, etype: int = DEFAULT_ETYPE
    ) -> bool:
        op = EdgeOp(OpKind.DELETE, src, dst, 0.0, etype)
        return self._write_shard(
            self.partitioner.shard_for(src),
            _OP_BYTES,
            lambda s: s.apply_ops([op])[0],
        )

    # ------------------------------------------------------------------
    # batched updates (one message per shard per replica)
    # ------------------------------------------------------------------
    def apply_batch(self, ops: Sequence[EdgeOp]) -> List[bool]:
        """Route a batch of operations, one message per involved shard,
        and return per-op outcomes in submission order."""
        per_shard: Dict[int, List[Tuple[int, EdgeOp]]] = defaultdict(list)
        for i, op in enumerate(ops):
            per_shard[self.partitioner.shard_for(op.src)].append((i, op))
        with self._tspan(
            "client.apply_batch", ops=len(ops), shards=len(per_shard)
        ):
            outcomes: List[bool] = [False] * len(ops)
            for shard, indexed in per_shard.items():
                shard_ops = [op for _, op in indexed]
                results = self._write_shard(
                    shard,
                    _OP_BYTES * len(indexed),
                    lambda s, shard_ops=shard_ops: s.apply_ops(shard_ops),
                )
                for (i, _), result in zip(indexed, results):
                    outcomes[i] = result
            return outcomes

    # ------------------------------------------------------------------
    # columnar bulk ingestion (one columnar message per shard per replica)
    # ------------------------------------------------------------------
    def apply_edge_batch(self, batch, dst=None, weight=None, etype=None,
                         op=None) -> IngestStats:
        """Route one columnar batch, one ingest RPC per owning shard.

        The write-path mirror of :meth:`sample_neighbors_many`: the whole
        ``src`` column is hashed in one vectorized pass
        (:meth:`~repro.distributed.partition.Partitioner.shards_for_array`),
        each shard receives one contiguous columnar sub-batch, and the
        :class:`~repro.distributed.rpc.NetworkModel` is charged the
        *array* payload bytes of each sub-batch — not per-op object
        framing — so the modeled message count is the shard count (times
        the replication factor), not the op count.
        """
        if not isinstance(batch, EdgeBatch):
            batch = EdgeBatch(batch, dst, weight, etype, op)
        stats = IngestStats()
        if len(batch) == 0:
            stats.ops = 0
            return stats
        shards = self.partitioner.shards_for_array(batch.src)
        unique_shards = np.unique(shards).tolist()
        with self._tspan(
            "client.apply_edge_batch",
            ops=len(batch),
            shards=len(unique_shards),
        ):
            for shard in unique_shards:
                sub = batch.select(np.flatnonzero(shards == shard))
                shard_stats = self._write_shard(
                    shard,
                    sub.payload_nbytes(),
                    lambda s, sub=sub: s.ingest_batch(sub),
                )
                stats.merge_from(shard_stats)
            return stats

    def bulk_load(self, src, dst=None, weight=None, etype=None) -> IngestStats:
        """Insert-only columnar load across the cluster (graph build)."""
        if isinstance(src, EdgeBatch):
            batch = src
            if not batch.is_insert_only:
                raise ConfigurationError(
                    "bulk_load takes insert-only batches; use "
                    "apply_edge_batch for mixed-op batches"
                )
        else:
            batch = EdgeBatch.inserts(src, dst, weight, etype)
        return self.apply_edge_batch(batch)

    # ------------------------------------------------------------------
    # queries (failover reads; may return UNAVAILABLE in degraded mode)
    # ------------------------------------------------------------------
    def degree(self, src: int, etype: int = DEFAULT_ETYPE):
        return self._read_shard(
            self.partitioner.shard_for(src),
            _QUERY_BYTES,
            lambda s: s.degrees([src], etype)[0],
        )

    def edge_weight(
        self, src: int, dst: int, etype: int = DEFAULT_ETYPE
    ):
        result = self._read_shard(
            self.partitioner.shard_for(src),
            _QUERY_BYTES,
            lambda s: s.edge_weights([(src, dst)], etype)[0],
        )
        return None if result is UNAVAILABLE else result

    def neighbors(
        self, src: int, etype: int = DEFAULT_ETYPE
    ) -> List[Tuple[int, float]]:
        return self._read_shard(
            self.partitioner.shard_for(src),
            _QUERY_BYTES,
            lambda s: s.neighbors_batch([src], etype)[0],
        )

    @property
    def num_edges(self) -> int:
        return sum(
            self._live_store(shard).num_edges
            for shard in range(len(self.replica_groups))
        )

    @property
    def num_sources(self) -> int:
        return sum(
            self._live_store(shard).num_sources
            for shard in range(len(self.replica_groups))
        )

    def sources(self, etype: int = DEFAULT_ETYPE) -> Iterator[int]:
        for shard in range(len(self.replica_groups)):
            yield from self._live_store(shard).sources(etype)

    # ------------------------------------------------------------------
    # sampling (one message per shard per batch)
    # ------------------------------------------------------------------
    def sample_neighbors(
        self,
        src: int,
        k: int,
        rng: RNGLike = None,
        etype: int = DEFAULT_ETYPE,
    ) -> List[int]:
        return self._read_shard(
            self.partitioner.shard_for(src),
            _SAMPLE_REQ_BYTES + k * _SAMPLE_RESP_BYTES,
            lambda s: s.sample_neighbors_batch([src], k, rng, etype)[0],
        )

    def _sample_many_routed(
        self,
        srcs: Sequence[int],
        k: int,
        rng: RNGLike,
        etype: int,
        endpoint: str,
    ) -> List[Sequence[int]]:
        """Group a frontier per owning shard, issue **one** RPC per shard
        (not one per vertex), and merge rows back in input order.

        Each shard answers its whole sub-batch through the store's
        vectorized read path, so the per-message payload grows with the
        sub-batch while the message count stays at the shard count —
        exactly the incentive the network model rewards.  Sources owned
        by a fully-unavailable shard come back as :data:`UNAVAILABLE`
        rows when degraded reads are enabled.
        """
        srcs = list(srcs)
        per_shard: Dict[int, List[int]] = defaultdict(list)
        for i, src in enumerate(srcs):
            per_shard[self.partitioner.shard_for(src)].append(i)
        with self._tspan(
            f"client.{endpoint}",
            sources=len(srcs),
            k=k,
            shards=len(per_shard),
        ):
            out: List[Sequence[int]] = [[] for _ in srcs]
            for shard, positions in per_shard.items():
                shard_srcs = [srcs[i] for i in positions]
                results = self._read_shard(
                    shard,
                    len(shard_srcs)
                    * (_SAMPLE_REQ_BYTES + k * _SAMPLE_RESP_BYTES),
                    lambda s, ss=shard_srcs: getattr(s, endpoint)(
                        ss, k, rng, etype
                    ),
                )
                if results is UNAVAILABLE:
                    for i in positions:
                        out[i] = UNAVAILABLE
                    continue
                for i, res in zip(positions, results):
                    out[i] = res
            return out

    def sample_neighbors_many(
        self,
        srcs: Sequence[int],
        k: int,
        rng: RNGLike = None,
        etype: int = DEFAULT_ETYPE,
    ) -> List[Sequence[int]]:
        return self._sample_many_routed(
            srcs, k, rng, etype, "sample_neighbors_many"
        )

    def sample_neighbors_uniform_many(
        self,
        srcs: Sequence[int],
        k: int,
        rng: RNGLike = None,
        etype: int = DEFAULT_ETYPE,
    ) -> List[Sequence[int]]:
        return self._sample_many_routed(
            srcs, k, rng, etype, "sample_neighbors_uniform_many"
        )

    # ------------------------------------------------------------------
    # attributes (vertex features live on the shard that owns the vertex)
    # ------------------------------------------------------------------
    def register_attribute(self, name: str, dim: int) -> None:
        """Declare an attribute field on every replica of every shard.

        Replicas that are down are skipped — a later recovery restores
        their schema from a checkpoint or a peer state transfer.
        """
        for group in self.replica_groups:
            for server in group:
                try:
                    server.register_attribute(name, dim)
                except ShardUnavailableError:
                    continue

    def put_attribute(self, name: str, vertex: int, value) -> None:
        """Write one vertex's feature vector to its owning shard
        (primary-backup, like the topology writes)."""
        payload = _QUERY_BYTES + 8 * int(np.size(value))
        self._write_shard(
            self.partitioner.shard_for(vertex),
            payload,
            lambda s: s.put_attribute(name, vertex, value),
        )

    def gather_attributes(self, name: str, vertices: Sequence[int]) -> np.ndarray:
        """Gather feature rows across shards, merged in input order.

        In degraded mode, rows owned by fully-unavailable shards are
        zero-filled (matching the store's unknown-vertex convention).
        """
        vertices = list(vertices)
        per_shard: Dict[int, List[int]] = defaultdict(list)
        for i, v in enumerate(vertices):
            per_shard[self.partitioner.shard_for(v)].append(i)
        out: Optional[np.ndarray] = None
        for shard, positions in per_shard.items():
            shard_vertices = [vertices[i] for i in positions]
            rows = self._read_shard(
                shard,
                _QUERY_BYTES * len(shard_vertices),
                lambda s, sv=shard_vertices: s.gather_attributes(name, sv),
            )
            if rows is UNAVAILABLE:
                continue
            if out is None:
                out = np.zeros((len(vertices), rows.shape[1]), dtype=rows.dtype)
            out[positions] = rows
        if out is None:
            schema = self._any_live_server().attributes.schema(name)
            out = np.zeros((len(vertices), schema.dim), dtype=schema.dtype)
        return out

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def nbytes(self, model: MemoryModel = DEFAULT_MEMORY_MODEL) -> int:
        """Modeled bytes across the whole deployment (replicas included;
        crashed replicas hold no volatile state and report 0)."""
        return sum(
            server.nbytes(model)
            for group in self.replica_groups
            for server in group
        )
