"""Graph client: routes requests to the owning graph servers.

The client implements :class:`~repro.core.types.GraphStoreAPI`, so every
consumer in the package — benchmark drivers, the GNN samplers, the PALM
executor's store-facing code — can run unmodified against either a local
store or a cluster.  Batch requests are grouped per shard (one simulated
message per shard per batch) and merged back in input order.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.ingest import EdgeBatch, IngestStats
from repro.core.memory import DEFAULT_MEMORY_MODEL, MemoryModel
from repro.core.snapshot import RNGLike
from repro.core.types import DEFAULT_ETYPE, EdgeOp, GraphStoreAPI, OpKind
from repro.distributed.partition import Partitioner
from repro.distributed.rpc import NetworkModel
from repro.distributed.server import GraphServer
from repro.errors import ConfigurationError, PartitionError

__all__ = ["GraphClient"]

#: Modeled payload bytes per edge operation / sample request entry.
_OP_BYTES = 8 + 8 + 4 + 1
_SAMPLE_REQ_BYTES = 8
_SAMPLE_RESP_BYTES = 8


class GraphClient(GraphStoreAPI):
    """Store-shaped façade over a set of :class:`GraphServer` shards."""

    def __init__(
        self,
        servers: Sequence[GraphServer],
        partitioner: Partitioner,
        network: Optional[NetworkModel] = None,
    ) -> None:
        if len(servers) != partitioner.num_shards:
            raise PartitionError(
                f"{len(servers)} servers but partitioner expects "
                f"{partitioner.num_shards} shards"
            )
        self.servers = list(servers)
        self.partitioner = partitioner
        self.network = network

    # ------------------------------------------------------------------
    # routing helpers
    # ------------------------------------------------------------------
    def _server_for(self, src: int) -> GraphServer:
        return self.servers[self.partitioner.shard_for(src)]

    def _account(self, payload_bytes: int) -> None:
        if self.network is not None:
            self.network.send(payload_bytes)

    # ------------------------------------------------------------------
    # single-edge updates (each one message)
    # ------------------------------------------------------------------
    def add_edge(
        self,
        src: int,
        dst: int,
        weight: float = 1.0,
        etype: int = DEFAULT_ETYPE,
    ) -> bool:
        self._account(_OP_BYTES)
        return self._server_for(src).apply_ops(
            [EdgeOp(OpKind.INSERT, src, dst, weight, etype)]
        )[0]

    def update_edge(
        self, src: int, dst: int, weight: float, etype: int = DEFAULT_ETYPE
    ) -> bool:
        self._account(_OP_BYTES)
        return self._server_for(src).apply_ops(
            [EdgeOp(OpKind.UPDATE, src, dst, weight, etype)]
        )[0]

    def remove_edge(
        self, src: int, dst: int, etype: int = DEFAULT_ETYPE
    ) -> bool:
        self._account(_OP_BYTES)
        return self._server_for(src).apply_ops(
            [EdgeOp(OpKind.DELETE, src, dst, 0.0, etype)]
        )[0]

    # ------------------------------------------------------------------
    # batched updates (one message per shard)
    # ------------------------------------------------------------------
    def apply_batch(self, ops: Sequence[EdgeOp]) -> List[bool]:
        """Route a batch of operations, one message per involved shard,
        and return per-op outcomes in submission order."""
        per_shard: Dict[int, List[Tuple[int, EdgeOp]]] = defaultdict(list)
        for i, op in enumerate(ops):
            per_shard[self.partitioner.shard_for(op.src)].append((i, op))
        outcomes: List[bool] = [False] * len(ops)
        for shard, indexed in per_shard.items():
            self._account(_OP_BYTES * len(indexed))
            results = self.servers[shard].apply_ops([op for _, op in indexed])
            for (i, _), result in zip(indexed, results):
                outcomes[i] = result
        return outcomes

    # ------------------------------------------------------------------
    # columnar bulk ingestion (one columnar message per shard)
    # ------------------------------------------------------------------
    def apply_edge_batch(self, batch, dst=None, weight=None, etype=None,
                         op=None) -> IngestStats:
        """Route one columnar batch, one ingest RPC per owning shard.

        The write-path mirror of :meth:`sample_neighbors_many`: the whole
        ``src`` column is hashed in one vectorized pass
        (:meth:`~repro.distributed.partition.Partitioner.shards_for_array`),
        each shard receives one contiguous columnar sub-batch, and the
        :class:`~repro.distributed.rpc.NetworkModel` is charged the
        *array* payload bytes of each sub-batch — not per-op object
        framing — so the modeled message count is the shard count, not
        the op count.
        """
        if not isinstance(batch, EdgeBatch):
            batch = EdgeBatch(batch, dst, weight, etype, op)
        stats = IngestStats()
        if len(batch) == 0:
            stats.ops = 0
            return stats
        shards = self.partitioner.shards_for_array(batch.src)
        for shard in np.unique(shards).tolist():
            sub = batch.select(np.flatnonzero(shards == shard))
            self._account(sub.payload_nbytes())
            stats.merge_from(self.servers[shard].ingest_batch(sub))
        return stats

    def bulk_load(self, src, dst=None, weight=None, etype=None) -> IngestStats:
        """Insert-only columnar load across the cluster (graph build)."""
        if isinstance(src, EdgeBatch):
            batch = src
            if not batch.is_insert_only:
                raise ConfigurationError(
                    "bulk_load takes insert-only batches; use "
                    "apply_edge_batch for mixed-op batches"
                )
        else:
            batch = EdgeBatch.inserts(src, dst, weight, etype)
        return self.apply_edge_batch(batch)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def degree(self, src: int, etype: int = DEFAULT_ETYPE) -> int:
        return self._server_for(src).store.degree(src, etype)

    def edge_weight(
        self, src: int, dst: int, etype: int = DEFAULT_ETYPE
    ) -> Optional[float]:
        return self._server_for(src).store.edge_weight(src, dst, etype)

    def neighbors(
        self, src: int, etype: int = DEFAULT_ETYPE
    ) -> List[Tuple[int, float]]:
        return self._server_for(src).store.neighbors(src, etype)

    @property
    def num_edges(self) -> int:
        return sum(s.store.num_edges for s in self.servers)

    @property
    def num_sources(self) -> int:
        return sum(s.store.num_sources for s in self.servers)

    def sources(self, etype: int = DEFAULT_ETYPE) -> Iterator[int]:
        for server in self.servers:
            yield from server.store.sources(etype)

    # ------------------------------------------------------------------
    # sampling (one message per shard per batch)
    # ------------------------------------------------------------------
    def sample_neighbors(
        self,
        src: int,
        k: int,
        rng: RNGLike = None,
        etype: int = DEFAULT_ETYPE,
    ) -> List[int]:
        self._account(_SAMPLE_REQ_BYTES + k * _SAMPLE_RESP_BYTES)
        return self._server_for(src).sample_neighbors_batch(
            [src], k, rng, etype
        )[0]

    def _sample_many_routed(
        self,
        srcs: Sequence[int],
        k: int,
        rng: RNGLike,
        etype: int,
        endpoint: str,
    ) -> List[Sequence[int]]:
        """Group a frontier per owning shard, issue **one** RPC per shard
        (not one per vertex), and merge rows back in input order.

        Each shard answers its whole sub-batch through the store's
        vectorized read path, so the per-message payload grows with the
        sub-batch while the message count stays at the shard count —
        exactly the incentive the network model rewards.
        """
        srcs = list(srcs)
        per_shard: Dict[int, List[int]] = defaultdict(list)
        for i, src in enumerate(srcs):
            per_shard[self.partitioner.shard_for(src)].append(i)
        out: List[Sequence[int]] = [[] for _ in srcs]
        for shard, positions in per_shard.items():
            shard_srcs = [srcs[i] for i in positions]
            self._account(
                len(shard_srcs) * (_SAMPLE_REQ_BYTES + k * _SAMPLE_RESP_BYTES)
            )
            results = getattr(self.servers[shard], endpoint)(
                shard_srcs, k, rng, etype
            )
            for i, res in zip(positions, results):
                out[i] = res
        return out

    def sample_neighbors_many(
        self,
        srcs: Sequence[int],
        k: int,
        rng: RNGLike = None,
        etype: int = DEFAULT_ETYPE,
    ) -> List[Sequence[int]]:
        return self._sample_many_routed(
            srcs, k, rng, etype, "sample_neighbors_many"
        )

    def sample_neighbors_uniform_many(
        self,
        srcs: Sequence[int],
        k: int,
        rng: RNGLike = None,
        etype: int = DEFAULT_ETYPE,
    ) -> List[Sequence[int]]:
        return self._sample_many_routed(
            srcs, k, rng, etype, "sample_neighbors_uniform_many"
        )

    # ------------------------------------------------------------------
    # attributes (vertex features live on the shard that owns the vertex)
    # ------------------------------------------------------------------
    def register_attribute(self, name: str, dim: int) -> None:
        """Declare an attribute field on every server."""
        for server in self.servers:
            server.attributes.register(name, dim)

    def put_attribute(self, name: str, vertex: int, value) -> None:
        """Write one vertex's feature vector to its owning shard."""
        self._server_for(vertex).attributes.put(name, vertex, value)

    def gather_attributes(self, name: str, vertices: Sequence[int]) -> np.ndarray:
        """Gather feature rows across shards, merged in input order."""
        vertices = list(vertices)
        per_shard: Dict[int, List[int]] = defaultdict(list)
        for i, v in enumerate(vertices):
            per_shard[self.partitioner.shard_for(v)].append(i)
        out: Optional[np.ndarray] = None
        for shard, positions in per_shard.items():
            rows = self.servers[shard].gather_attributes(
                name, [vertices[i] for i in positions]
            )
            if out is None:
                out = np.zeros((len(vertices), rows.shape[1]), dtype=rows.dtype)
            out[positions] = rows
        if out is None:
            schema = self.servers[0].attributes.schema(name)
            out = np.zeros((0, schema.dim), dtype=schema.dtype)
        return out

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def nbytes(self, model: MemoryModel = DEFAULT_MEMORY_MODEL) -> int:
        return sum(s.nbytes(model) for s in self.servers)
