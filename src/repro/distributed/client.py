"""Graph client: routes requests to the owning graph servers.

The client implements :class:`~repro.core.types.GraphStoreAPI`, so every
consumer in the package — benchmark drivers, the GNN samplers, the PALM
executor's store-facing code — can run unmodified against either a local
store or a cluster.  Batch requests are grouped per shard (one simulated
message per shard per batch) and merged back in input order.

Fault tolerance:

* every per-shard RPC runs through an optional
  :class:`~repro.distributed.retry.RetryPolicy` — transient faults are
  retried with exponential backoff over *simulated* time (backoff sleeps
  and per-attempt transfer costs both advance the
  :class:`~repro.distributed.rpc.NetworkModel` clock, which also bounds
  per-request deadlines);
* with ``replica_groups``, writes are primary-backup (applied to every
  live replica of the owning shard) and reads fail over from the
  primary to backups;
* with ``degraded_reads=True``, a read whose shard has **no** live
  replica returns the :data:`UNAVAILABLE` marker for the affected
  sources instead of raising — callers get partial batch results with
  explicit per-source outage markers.  ``UNAVAILABLE`` is a falsy,
  empty-iterable singleton, so samplers that treat empty rows as
  "no neighbors" degrade gracefully while callers that care can test
  ``row is UNAVAILABLE``.
"""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.ingest import EdgeBatch, IngestStats
from repro.core.memory import DEFAULT_MEMORY_MODEL, MemoryModel
from repro.core.snapshot import RNGLike
from repro.core.types import (
    DEFAULT_ETYPE,
    UNAVAILABLE,
    EdgeOp,
    GraphStoreAPI,
    OpKind,
    _UnavailableType,
)
from repro.distributed.hotset import HotReplicaDirectory, HotSetTracker
from repro.distributed.partition import Partitioner
from repro.distributed.retry import RetryPolicy
from repro.distributed.rpc import NetworkModel
from repro.distributed.server import GraphServer
from repro.errors import (
    ConfigurationError,
    PartitionError,
    RetryExhaustedError,
    ShardUnavailableError,
)
from repro.obs.trace import NULL_SPAN

__all__ = ["GraphClient", "ServingStats", "UNAVAILABLE"]

#: Modeled payload bytes per edge operation / sample request entry.
_OP_BYTES = 8 + 8 + 4 + 1
_SAMPLE_REQ_BYTES = 8
_SAMPLE_RESP_BYTES = 8
#: Modeled bytes of a scalar query (degree / edge weight / adjacency).
_QUERY_BYTES = 16


# ``UNAVAILABLE`` / ``_UnavailableType`` now live in ``repro.core.types``
# (store-agnostic consumers need them without importing this package);
# re-exported here for backward compatibility.

#: Failures that make one replica useless for this request but leave
#: the rest of the group worth trying.
_FAILOVER_ERRORS = (ShardUnavailableError, RetryExhaustedError)


class ServingStats:
    """Client-side serving counters (exported as ``repro_cache_*``).

    Tracks the skew-aware serving layer: request coalescing (duplicate
    in-flight sources within one ``sample_neighbors_many`` window are
    shipped once per shard), hot-replica read spreading, and the
    coherence write fan-out to hot copies.  ``busy_by_shard`` attributes
    the *measured* client-observed service time of every batched
    sampling RPC to the shard that served it — the zipf benchmark
    derives modeled cluster makespan (max per-shard busy time, i.e. the
    parallel-deployment bottleneck) from it.
    """

    __slots__ = (
        "batches", "sources", "distinct_sources", "coalesced_sources",
        "shard_rpcs", "grouped_rpcs", "hot_reads", "spread_reads",
        "hot_write_ops", "hot_write_drops", "busy_seconds",
        "busy_by_shard",
    )

    def __init__(self) -> None:
        self.busy_by_shard: Dict[int, float] = {}
        self.reset()

    def reset(self) -> None:
        self.batches = 0
        #: Frontier rows requested through the batched sampling path.
        self.sources = 0
        #: Distinct (source, shard-window) keys actually shipped.
        self.distinct_sources = 0
        #: Duplicate rows answered from a coalesced fetch.
        self.coalesced_sources = 0
        self.shard_rpcs = 0
        #: Per-shard RPCs that used the grouped (coalesced) endpoint.
        self.grouped_rpcs = 0
        #: Reads routed through the hot-replica directory.
        self.hot_reads = 0
        #: Hot reads served by a non-primary copy.
        self.spread_reads = 0
        #: Extra write messages keeping hot copies coherent.
        self.hot_write_ops = 0
        #: Hot copies dropped because their coherence write failed.
        self.hot_write_drops = 0
        #: Total measured in-RPC time of batched sampling (seconds).
        self.busy_seconds = 0.0
        self.busy_by_shard.clear()

    @property
    def coalesce_rate(self) -> float:
        """Fraction of frontier rows deduplicated away before the wire."""
        return self.coalesced_sources / self.sources if self.sources else 0.0

    def to_dict(self) -> Dict[str, float]:
        out = {
            s: getattr(self, s)
            for s in self.__slots__
            if s != "busy_by_shard"
        }
        out["coalesce_rate"] = self.coalesce_rate
        return out


class GraphClient(GraphStoreAPI):
    """Store-shaped façade over a set of :class:`GraphServer` shards."""

    def __init__(
        self,
        servers: Sequence[GraphServer],
        partitioner: Partitioner,
        network: Optional[NetworkModel] = None,
        replica_groups: Optional[Sequence[Sequence[GraphServer]]] = None,
        retry: Optional[RetryPolicy] = None,
        degraded_reads: bool = False,
        tracer=None,
        hot_replicas: Optional[HotReplicaDirectory] = None,
        hot_tracker: Optional[HotSetTracker] = None,
        coalesce: bool = True,
    ) -> None:
        if len(servers) != partitioner.num_shards:
            raise PartitionError(
                f"{len(servers)} servers but partitioner expects "
                f"{partitioner.num_shards} shards"
            )
        self.servers = list(servers)
        if replica_groups is None:
            self.replica_groups: List[List[GraphServer]] = [
                [s] for s in self.servers
            ]
        else:
            if len(replica_groups) != len(self.servers):
                raise PartitionError(
                    f"{len(replica_groups)} replica groups but "
                    f"{len(self.servers)} shards"
                )
            self.replica_groups = [list(g) for g in replica_groups]
            for shard, group in enumerate(self.replica_groups):
                if not group:
                    raise ConfigurationError(
                        f"replica group of shard {shard} is empty"
                    )
                if group[0] is not self.servers[shard]:
                    raise ConfigurationError(
                        f"replica group {shard} must lead with the "
                        f"primary server"
                    )
        self.partitioner = partitioner
        self.network = network
        self.retry = retry
        self.degraded_reads = degraded_reads
        self.tracer = tracer
        #: Hot-vertex read-replica directory (empty = no spreading).
        self.hot_replicas = (
            hot_replicas if hot_replicas is not None else HotReplicaDirectory()
        )
        #: Optional decayed top-k read-frequency tracker fed by the
        #: batched sampling path (drives replication decisions).
        self.hot_tracker = hot_tracker
        #: Coalesce duplicate in-flight sources within one batch window
        #: (ship each distinct source once per shard).
        self.coalesce = coalesce
        self.serving_stats = ServingStats()
        #: Absolute per-request deadline (on the network clock) applied
        #: to every RPC issued while a :meth:`deadline_scope` is active.
        self._request_deadline: Optional[float] = None

    # ------------------------------------------------------------------
    # per-request deadlines
    # ------------------------------------------------------------------
    @contextmanager
    def deadline_scope(self, deadline: Optional[float]):
        """Apply an *absolute* deadline to every RPC inside the block.

        ``deadline`` is a point on the same clock the retry policy
        measures (``network.now`` when a network model is attached) —
        once it passes, in-flight retries raise
        :class:`~repro.errors.DeadlineExceededError` instead of burning
        backoff budget the request no longer has.  Scopes nest; the
        innermost wins and the previous value is restored on exit.
        """
        prev = self._request_deadline
        self._request_deadline = deadline
        try:
            yield self
        finally:
            self._request_deadline = prev

    # ------------------------------------------------------------------
    # routing helpers
    # ------------------------------------------------------------------
    def _tspan(self, name: str, **tags):
        """A client-side span (no-op without a tracer)."""
        if self.tracer is None:
            return NULL_SPAN
        return self.tracer.span(name, **tags)

    def _account(self, payload_bytes: int) -> float:
        """Charge one message; returns its simulated transfer seconds."""
        if self.network is not None:
            return self.network.send(payload_bytes)
        return 0.0

    def _call(self, server: GraphServer, payload_bytes: int, fn):
        """One RPC against one replica, with retries on transient faults.

        Every attempt is charged to the network model (retries cost
        messages), and the retry policy measures deadlines / accounts
        backoff on the same simulated clock.  With a tracer attached,
        each attempt opens an ``rpc.attempt`` span (numbered from 1) —
        a failed attempt closes its span with ``status="error"`` and the
        exception type, so retries are visible in the trace tree.
        """
        if self.tracer is None:

            def attempt():
                self._account(payload_bytes)
                return fn(server)

        else:
            counter = [0]

            def attempt():
                counter[0] += 1
                with self.tracer.span(
                    "rpc.attempt",
                    attempt=counter[0],
                    shard=server.shard_id,
                    replica=server.replica_index,
                    bytes=payload_bytes,
                ):
                    self._account(payload_bytes)
                    return fn(server)

        if self.retry is None:
            return attempt()
        if self.network is not None:
            if self.tracer is None:
                sleep = self.network.sleep
            else:
                # Backoff is the classic invisible tail-latency eater;
                # give it its own span so critical-path analysis can
                # attribute it instead of folding it into read_shard
                # self-time.
                def sleep(delay, _shard=server.shard_id):
                    with self.tracer.span(
                        "rpc.backoff", shard=_shard, seconds=delay
                    ):
                        self.network.sleep(delay)

            return self.retry.run(
                attempt,
                now=self.network.now,
                sleep=sleep,
                deadline=self._request_deadline,
            )
        return self.retry.run(attempt, deadline=self._request_deadline)

    def _read_shard(self, shard: int, payload_bytes: int, fn):
        """Read with failover: primary first, then backups in order.

        Returns :data:`UNAVAILABLE` when every replica is down and
        degraded reads are enabled; raises otherwise.
        """
        group = self.replica_groups[shard]
        with self._tspan(
            "rpc.read_shard", shard=shard, replicas=len(group)
        ) as span:
            last: Optional[Exception] = None
            for server in group:
                try:
                    return self._call(server, payload_bytes, fn)
                except _FAILOVER_ERRORS as exc:
                    last = exc
            if self.degraded_reads:
                span.set_tag("degraded", True)
                return UNAVAILABLE
            raise ShardUnavailableError(
                f"all {len(group)} replica(s) of shard {shard} are "
                f"unavailable"
            ) from last

    def _write_shard(self, shard: int, payload_bytes: int, fn):
        """Primary-backup write: apply to every live replica.

        Returns the first successful replica's result (the logical
        outcome — replicas apply identical state transitions).  Raises
        :class:`ShardUnavailableError` only when **no** replica accepted
        the write.
        """
        group = self.replica_groups[shard]
        with self._tspan(
            "rpc.write_shard", shard=shard, replicas=len(group)
        ) as span:
            result = None
            applied = 0
            last: Optional[Exception] = None
            for server in group:
                try:
                    r = self._call(server, payload_bytes, fn)
                except _FAILOVER_ERRORS as exc:
                    last = exc
                    continue
                applied += 1
                if applied == 1:
                    result = r
            if applied == 0:
                raise ShardUnavailableError(
                    f"write rejected: all {len(group)} replica(s) of "
                    f"shard {shard} are unavailable"
                ) from last
            span.set_tag("applied", applied)
            return result

    def _route_read(self, src: int) -> int:
        """Owning shard of a read, spread across hot replicas when the
        source is in the hot directory (round-robin over its read set)."""
        hot = self.hot_replicas
        if hot:
            group = hot.shards(src)
            if group:
                shard = hot.route(src)
                stats = self.serving_stats
                stats.hot_reads += 1
                if shard != group[0]:
                    stats.spread_reads += 1
                return shard
        return self.partitioner.shard_for(src)

    def _live_store(self, shard: int):
        """First live replica's store (control-plane introspection —
        no fault injection, no network charge)."""
        for server in self.replica_groups[shard]:
            if server.alive:
                return server.store
        raise ShardUnavailableError(f"no live replica of shard {shard}")

    def _any_live_server(self) -> GraphServer:
        for group in self.replica_groups:
            for server in group:
                if server.alive:
                    return server
        raise ShardUnavailableError("no live server in the cluster")

    # ------------------------------------------------------------------
    # single-edge updates (each one message per replica)
    # ------------------------------------------------------------------
    def _hot_write_extras(self, src: int, payload_bytes: int, fn) -> None:
        """Mirror a write to every extra hot copy of ``src``.

        Hot read replicas are only safe to sample from while they are
        byte-coherent with the primary, so every write path fans out to
        the extra shards of a replicated source.  A copy whose
        coherence write fails is dropped from the read set (reads stop
        spreading there) instead of being served stale.
        """
        hot = self.hot_replicas
        if not hot or src not in hot:
            return
        primary = self.partitioner.shard_for(src)
        for shard in hot.extras(src, primary):
            try:
                self._write_shard(shard, payload_bytes, fn)
                self.serving_stats.hot_write_ops += 1
            except _FAILOVER_ERRORS:
                hot.drop_shard(src, shard)
                self.serving_stats.hot_write_drops += 1

    def _apply_op(self, op: EdgeOp) -> bool:
        result = self._write_shard(
            self.partitioner.shard_for(op.src),
            _OP_BYTES,
            lambda s: s.apply_ops([op])[0],
        )
        self._hot_write_extras(
            op.src, _OP_BYTES, lambda s: s.apply_ops([op])[0]
        )
        return result

    def add_edge(
        self,
        src: int,
        dst: int,
        weight: float = 1.0,
        etype: int = DEFAULT_ETYPE,
    ) -> bool:
        return self._apply_op(EdgeOp(OpKind.INSERT, src, dst, weight, etype))

    def update_edge(
        self, src: int, dst: int, weight: float, etype: int = DEFAULT_ETYPE
    ) -> bool:
        return self._apply_op(EdgeOp(OpKind.UPDATE, src, dst, weight, etype))

    def remove_edge(
        self, src: int, dst: int, etype: int = DEFAULT_ETYPE
    ) -> bool:
        return self._apply_op(EdgeOp(OpKind.DELETE, src, dst, 0.0, etype))

    # ------------------------------------------------------------------
    # batched updates (one message per shard per replica)
    # ------------------------------------------------------------------
    def apply_batch(self, ops: Sequence[EdgeOp]) -> List[bool]:
        """Route a batch of operations, one message per involved shard,
        and return per-op outcomes in submission order."""
        per_shard: Dict[int, List[Tuple[int, EdgeOp]]] = defaultdict(list)
        for i, op in enumerate(ops):
            per_shard[self.partitioner.shard_for(op.src)].append((i, op))
        with self._tspan(
            "client.apply_batch", ops=len(ops), shards=len(per_shard)
        ):
            outcomes: List[bool] = [False] * len(ops)
            for shard, indexed in per_shard.items():
                shard_ops = [op for _, op in indexed]
                results = self._write_shard(
                    shard,
                    _OP_BYTES * len(indexed),
                    lambda s, shard_ops=shard_ops: s.apply_ops(shard_ops),
                )
                for (i, _), result in zip(indexed, results):
                    outcomes[i] = result
            self._hot_batch_extras(ops)
            return outcomes

    def _hot_batch_extras(self, ops: Sequence[EdgeOp]) -> None:
        """Mirror the hot-source subset of an op batch to extra copies."""
        hot = self.hot_replicas
        if not hot:
            return
        per_extra: Dict[int, List[EdgeOp]] = defaultdict(list)
        for op in ops:
            if op.src in hot:
                primary = self.partitioner.shard_for(op.src)
                for shard in hot.extras(op.src, primary):
                    per_extra[shard].append(op)
        for shard, shard_ops in per_extra.items():
            try:
                self._write_shard(
                    shard,
                    _OP_BYTES * len(shard_ops),
                    lambda s, shard_ops=shard_ops: s.apply_ops(shard_ops),
                )
                self.serving_stats.hot_write_ops += 1
            except _FAILOVER_ERRORS:
                for op in shard_ops:
                    hot.drop_shard(op.src, shard)
                self.serving_stats.hot_write_drops += 1

    # ------------------------------------------------------------------
    # columnar bulk ingestion (one columnar message per shard per replica)
    # ------------------------------------------------------------------
    def apply_edge_batch(self, batch, dst=None, weight=None, etype=None,
                         op=None) -> IngestStats:
        """Route one columnar batch, one ingest RPC per owning shard.

        The write-path mirror of :meth:`sample_neighbors_many`: the whole
        ``src`` column is hashed in one vectorized pass
        (:meth:`~repro.distributed.partition.Partitioner.shards_for_array`),
        each shard receives one contiguous columnar sub-batch, and the
        :class:`~repro.distributed.rpc.NetworkModel` is charged the
        *array* payload bytes of each sub-batch — not per-op object
        framing — so the modeled message count is the shard count (times
        the replication factor), not the op count.
        """
        if not isinstance(batch, EdgeBatch):
            batch = EdgeBatch(batch, dst, weight, etype, op)
        stats = IngestStats()
        if len(batch) == 0:
            stats.ops = 0
            return stats
        shards = self.partitioner.shards_for_array(batch.src)
        unique_shards = np.unique(shards).tolist()
        with self._tspan(
            "client.apply_edge_batch",
            ops=len(batch),
            shards=len(unique_shards),
        ):
            for shard in unique_shards:
                sub = batch.select(np.flatnonzero(shards == shard))
                shard_stats = self._write_shard(
                    shard,
                    sub.payload_nbytes(),
                    lambda s, sub=sub: s.ingest_batch(sub),
                )
                stats.merge_from(shard_stats)
            hot = self.hot_replicas
            if hot:
                hot_srcs = np.fromiter(
                    (src for src, _ in hot.items()), dtype=np.int64,
                    count=len(hot),
                )
                mask = np.isin(batch.src, hot_srcs)
                if mask.any():
                    self._hot_columnar_extras(batch.select(
                        np.flatnonzero(mask)
                    ))
            return stats

    def _hot_columnar_extras(self, hot_batch: EdgeBatch) -> None:
        """Mirror the hot-source rows of a columnar batch to extra copies."""
        hot = self.hot_replicas
        primaries = self.partitioner.shards_for_array(hot_batch.src)
        per_extra: Dict[int, List[int]] = defaultdict(list)
        src_col = hot_batch.src.tolist()
        for row, (src, primary) in enumerate(zip(src_col, primaries.tolist())):
            for shard in hot.extras(src, primary):
                per_extra[shard].append(row)
        for shard, rows in per_extra.items():
            sub = hot_batch.select(np.asarray(rows, dtype=np.int64))
            try:
                self._write_shard(
                    shard,
                    sub.payload_nbytes(),
                    lambda s, sub=sub: s.ingest_batch(sub),
                )
                self.serving_stats.hot_write_ops += 1
            except _FAILOVER_ERRORS:
                for src in set(sub.src.tolist()):
                    hot.drop_shard(src, shard)
                self.serving_stats.hot_write_drops += 1

    def bulk_load(self, src, dst=None, weight=None, etype=None) -> IngestStats:
        """Insert-only columnar load across the cluster (graph build)."""
        if isinstance(src, EdgeBatch):
            batch = src
            if not batch.is_insert_only:
                raise ConfigurationError(
                    "bulk_load takes insert-only batches; use "
                    "apply_edge_batch for mixed-op batches"
                )
        else:
            batch = EdgeBatch.inserts(src, dst, weight, etype)
        return self.apply_edge_batch(batch)

    # ------------------------------------------------------------------
    # queries (failover reads; may return UNAVAILABLE in degraded mode)
    # ------------------------------------------------------------------
    def degree(self, src: int, etype: int = DEFAULT_ETYPE):
        return self._read_shard(
            self.partitioner.shard_for(src),
            _QUERY_BYTES,
            lambda s: s.degrees([src], etype)[0],
        )

    def edge_weight(
        self, src: int, dst: int, etype: int = DEFAULT_ETYPE
    ):
        result = self._read_shard(
            self.partitioner.shard_for(src),
            _QUERY_BYTES,
            lambda s: s.edge_weights([(src, dst)], etype)[0],
        )
        return None if result is UNAVAILABLE else result

    def neighbors(
        self, src: int, etype: int = DEFAULT_ETYPE
    ) -> List[Tuple[int, float]]:
        return self._read_shard(
            self.partitioner.shard_for(src),
            _QUERY_BYTES,
            lambda s: s.neighbors_batch([src], etype)[0],
        )

    def _hot_copy_overcount(self) -> Tuple[int, int]:
        """(edges, sources) counted more than once because of hot copies.

        Hot-replicated adjacencies exist verbatim on every extra shard
        (write-coherent), so naive per-shard sums overcount; subtracting
        the extra copies keeps the logical totals stable whether or not
        replication is active.
        """
        extra_edges = 0
        extra_sources = 0
        for src, group in self.hot_replicas.items():
            for shard in group[1:]:
                store = self._live_store(shard)
                etypes = getattr(
                    store, "etypes", lambda: [DEFAULT_ETYPE]
                )()
                degrees = [store.degree(src, et) for et in etypes]
                extra_edges += sum(degrees)
                if any(d > 0 for d in degrees):
                    extra_sources += 1
        return extra_edges, extra_sources

    @property
    def num_edges(self) -> int:
        total = sum(
            self._live_store(shard).num_edges
            for shard in range(len(self.replica_groups))
        )
        if self.hot_replicas:
            total -= self._hot_copy_overcount()[0]
        return total

    @property
    def num_sources(self) -> int:
        total = sum(
            self._live_store(shard).num_sources
            for shard in range(len(self.replica_groups))
        )
        if self.hot_replicas:
            total -= self._hot_copy_overcount()[1]
        return total

    def sources(self, etype: int = DEFAULT_ETYPE) -> Iterator[int]:
        replicated = (
            {src for src, _ in self.hot_replicas.items()}
            if self.hot_replicas
            else ()
        )
        emitted: set = set()
        for shard in range(len(self.replica_groups)):
            for src in self._live_store(shard).sources(etype):
                if src in replicated:
                    if src in emitted:
                        continue
                    emitted.add(src)
                yield src

    # ------------------------------------------------------------------
    # sampling (one message per shard per batch)
    # ------------------------------------------------------------------
    def sample_neighbors(
        self,
        src: int,
        k: int,
        rng: RNGLike = None,
        etype: int = DEFAULT_ETYPE,
    ) -> List[int]:
        if self.hot_tracker is not None:
            self.hot_tracker.observe(int(src))
        return self._read_shard(
            self._route_read(src),
            _SAMPLE_REQ_BYTES + k * _SAMPLE_RESP_BYTES,
            lambda s: s.sample_neighbors_batch([src], k, rng, etype)[0],
        )

    def _sample_many_routed(
        self,
        srcs: Sequence[int],
        k: int,
        rng: RNGLike,
        etype: int,
        endpoint: str,
    ) -> List[Sequence[int]]:
        """Group a frontier per owning shard, issue **one** RPC per shard
        (not one per vertex), and merge rows back in input order.

        Each shard answers its whole sub-batch through the store's
        vectorized read path, so the per-message payload grows with the
        sub-batch while the message count stays at the shard count —
        exactly the incentive the network model rewards.  Sources owned
        by a fully-unavailable shard come back as :data:`UNAVAILABLE`
        rows when degraded reads are enabled.

        Skew-aware extras (all no-ops in the default idle state):

        * duplicate in-flight sources are **coalesced** — each distinct
          source of the window is routed once and shipped once per
          shard; a shard whose sub-batch contains duplicates is asked
          through the grouped endpoint (distinct sources +
          multiplicities) and its expanded reply is fanned back out to
          every original position.  Every occurrence still receives its
          own independent draws (the server expands locally), so the
          sampled distribution matches the uncoalesced path;
        * sources in the **hot-replica directory** rotate across their
          replica set (all copies are write-coherent);
        * the **hot tracker** observes every distinct source with its
          window multiplicity;
        * per-RPC service time is accumulated per shard in
          :attr:`serving_stats` (the bench's modeled-makespan input).
        """
        srcs = list(srcs)
        stats = self.serving_stats
        stats.batches += 1
        stats.sources += len(srcs)
        # Dedup the window first (insertion order == first appearance),
        # then route each *distinct* source once.
        positions: Dict[int, List[int]] = {}
        for i, src in enumerate(srcs):
            bucket = positions.get(src)
            if bucket is None:
                positions[src] = [i]
            else:
                bucket.append(i)
        stats.distinct_sources += len(positions)
        tracker = self.hot_tracker
        per_shard: Dict[int, List[Tuple[int, List[int]]]] = defaultdict(list)
        for src, pos in positions.items():
            if tracker is not None:
                tracker.observe(src, len(pos))
            per_shard[self._route_read(src)].append((src, pos))
        uniform = endpoint == "sample_neighbors_uniform_many"
        with self._tspan(
            f"client.{endpoint}",
            sources=len(srcs),
            k=k,
            shards=len(per_shard),
        ):
            out: List[Sequence[int]] = [[] for _ in srcs]
            for shard, entries in per_shard.items():
                rows = sum(len(pos) for _, pos in entries)
                coalesced = self.coalesce and rows > len(entries)
                if coalesced:
                    # Reply rows come back in expanded (grouped) order:
                    # counts[j] consecutive rows per distinct source.
                    order = [i for _, pos in entries for i in pos]
                    shard_srcs = [src for src, _ in entries]
                    counts = [len(pos) for _, pos in entries]
                    payload = (
                        len(entries) * (_SAMPLE_REQ_BYTES + 2)
                        + rows * k * _SAMPLE_RESP_BYTES
                    )
                    stats.grouped_rpcs += 1
                    stats.coalesced_sources += rows - len(entries)

                    def fn(s, ss=shard_srcs, cc=counts):
                        return s.sample_neighbors_grouped(
                            ss, cc, k, rng, etype, uniform
                        )

                else:
                    # No duplicates on this shard (or coalescing off):
                    # the PR-1 wire shape — position-ascending rows.
                    order = sorted(i for _, pos in entries for i in pos)
                    expanded = [srcs[i] for i in order]
                    payload = len(expanded) * (
                        _SAMPLE_REQ_BYTES + k * _SAMPLE_RESP_BYTES
                    )

                    def fn(s, ss=expanded):
                        return getattr(s, endpoint)(ss, k, rng, etype)

                stats.shard_rpcs += 1
                started = time.perf_counter()
                results = self._read_shard(shard, payload, fn)
                elapsed = time.perf_counter() - started
                stats.busy_seconds += elapsed
                stats.busy_by_shard[shard] = (
                    stats.busy_by_shard.get(shard, 0.0) + elapsed
                )
                if results is UNAVAILABLE:
                    for i in order:
                        out[i] = UNAVAILABLE
                    continue
                for i, res in zip(order, results):
                    out[i] = res
            return out

    def sample_neighbors_many(
        self,
        srcs: Sequence[int],
        k: int,
        rng: RNGLike = None,
        etype: int = DEFAULT_ETYPE,
    ) -> List[Sequence[int]]:
        return self._sample_many_routed(
            srcs, k, rng, etype, "sample_neighbors_many"
        )

    def sample_neighbors_uniform_many(
        self,
        srcs: Sequence[int],
        k: int,
        rng: RNGLike = None,
        etype: int = DEFAULT_ETYPE,
    ) -> List[Sequence[int]]:
        return self._sample_many_routed(
            srcs, k, rng, etype, "sample_neighbors_uniform_many"
        )

    # ------------------------------------------------------------------
    # attributes (vertex features live on the shard that owns the vertex)
    # ------------------------------------------------------------------
    def register_attribute(self, name: str, dim: int) -> None:
        """Declare an attribute field on every replica of every shard.

        Replicas that are down are skipped — a later recovery restores
        their schema from a checkpoint or a peer state transfer.
        """
        for group in self.replica_groups:
            for server in group:
                try:
                    server.register_attribute(name, dim)
                except ShardUnavailableError:
                    continue

    def put_attribute(self, name: str, vertex: int, value) -> None:
        """Write one vertex's feature vector to its owning shard
        (primary-backup, like the topology writes)."""
        payload = _QUERY_BYTES + 8 * int(np.size(value))
        self._write_shard(
            self.partitioner.shard_for(vertex),
            payload,
            lambda s: s.put_attribute(name, vertex, value),
        )

    def gather_attributes(self, name: str, vertices: Sequence[int]) -> np.ndarray:
        """Gather feature rows across shards, merged in input order.

        In degraded mode, rows owned by fully-unavailable shards are
        zero-filled (matching the store's unknown-vertex convention).
        """
        vertices = list(vertices)
        per_shard: Dict[int, List[int]] = defaultdict(list)
        for i, v in enumerate(vertices):
            per_shard[self.partitioner.shard_for(v)].append(i)
        out: Optional[np.ndarray] = None
        for shard, positions in per_shard.items():
            shard_vertices = [vertices[i] for i in positions]
            rows = self._read_shard(
                shard,
                _QUERY_BYTES * len(shard_vertices),
                lambda s, sv=shard_vertices: s.gather_attributes(name, sv),
            )
            if rows is UNAVAILABLE:
                continue
            if out is None:
                out = np.zeros((len(vertices), rows.shape[1]), dtype=rows.dtype)
            out[positions] = rows
        if out is None:
            schema = self._any_live_server().attributes.schema(name)
            out = np.zeros((len(vertices), schema.dim), dtype=schema.dtype)
        return out

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def nbytes(self, model: MemoryModel = DEFAULT_MEMORY_MODEL) -> int:
        """Modeled bytes across the whole deployment (replicas included;
        crashed replicas hold no volatile state and report 0)."""
        return sum(
            server.nbytes(model)
            for group in self.replica_groups
            for server in group
        )
