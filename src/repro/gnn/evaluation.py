"""Ranking metrics for recommendation evaluation.

The production system behind the paper is judged on ranking quality —
did the user's next interaction appear in the top-k? — so the library
ships the standard offline metrics: hit-rate@k, recall@k, NDCG@k, MRR,
and a harness that scores a trained link predictor over sampled
evaluation triples.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.types import DEFAULT_ETYPE, GraphStoreAPI
from repro.errors import ConfigurationError, ShapeError

__all__ = [
    "hit_rate_at_k",
    "recall_at_k",
    "ndcg_at_k",
    "mean_reciprocal_rank",
    "rank_of_positive",
    "evaluate_link_ranking",
]


def _check_k(k: int) -> None:
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")


def rank_of_positive(scores: np.ndarray, positive_index: int = 0) -> int:
    """1-based rank of the positive among candidate scores.

    Ties are pessimistic: equal scores rank ahead of the positive.
    """
    if scores.ndim != 1:
        raise ShapeError(f"scores must be 1-D, got shape {scores.shape}")
    if not 0 <= positive_index < len(scores):
        raise ConfigurationError(
            f"positive_index {positive_index} out of range"
        )
    target = scores[positive_index]
    return int((scores >= target).sum())


def hit_rate_at_k(ranks: Sequence[int], k: int) -> float:
    """Fraction of queries whose positive ranked within the top-``k``."""
    _check_k(k)
    if not ranks:
        return 0.0
    return sum(1 for r in ranks if r <= k) / len(ranks)


def recall_at_k(
    recommended: Sequence[Sequence[int]],
    relevant: Sequence[Sequence[int]],
    k: int,
) -> float:
    """Mean ``|top-k ∩ relevant| / |relevant|`` over queries."""
    _check_k(k)
    if len(recommended) != len(relevant):
        raise ShapeError(
            f"{len(recommended)} recommendation lists vs "
            f"{len(relevant)} relevance lists"
        )
    if not recommended:
        return 0.0
    total = 0.0
    counted = 0
    for recs, rels in zip(recommended, relevant):
        rel_set = set(rels)
        if not rel_set:
            continue
        hits = sum(1 for r in list(recs)[:k] if r in rel_set)
        total += hits / len(rel_set)
        counted += 1
    return total / counted if counted else 0.0


def ndcg_at_k(
    recommended: Sequence[Sequence[int]],
    relevant: Sequence[Sequence[int]],
    k: int,
) -> float:
    """Binary-relevance NDCG@k averaged over queries."""
    _check_k(k)
    if len(recommended) != len(relevant):
        raise ShapeError(
            f"{len(recommended)} recommendation lists vs "
            f"{len(relevant)} relevance lists"
        )
    if not recommended:
        return 0.0
    total = 0.0
    counted = 0
    for recs, rels in zip(recommended, relevant):
        rel_set = set(rels)
        if not rel_set:
            continue
        dcg = sum(
            1.0 / math.log2(i + 2)
            for i, r in enumerate(list(recs)[:k])
            if r in rel_set
        )
        ideal = sum(
            1.0 / math.log2(i + 2) for i in range(min(k, len(rel_set)))
        )
        total += dcg / ideal
        counted += 1
    return total / counted if counted else 0.0


def mean_reciprocal_rank(ranks: Sequence[int]) -> float:
    """Mean of ``1 / rank`` (1-based ranks)."""
    if not ranks:
        return 0.0
    for r in ranks:
        if r < 1:
            raise ConfigurationError(f"ranks are 1-based, got {r}")
    return sum(1.0 / r for r in ranks) / len(ranks)


def evaluate_link_ranking(
    trainer,
    store: GraphStoreAPI,
    candidates: Sequence[int],
    num_queries: int = 64,
    num_candidates: int = 20,
    k: int = 5,
    rng: Optional[random.Random] = None,
    etype: int = DEFAULT_ETYPE,
) -> Dict[str, float]:
    """Rank one true destination against sampled decoys per query.

    For each query, a (src, true-dst) edge is drawn from the live store,
    ``num_candidates - 1`` decoys are drawn from ``candidates`` (skipping
    true edges), and the trainer's ``score_pairs`` ranks them.  Returns
    ``{"hit@k", "mrr", "mean_rank"}``.
    """
    from repro.gnn.link_prediction import (
        sample_negative_destinations,
        sample_positive_edges,
    )

    _check_k(k)
    if num_candidates < 2:
        raise ConfigurationError(
            f"num_candidates must be >= 2, got {num_candidates}"
        )
    rng = rng or random.Random(0)
    srcs, positives = sample_positive_edges(store, num_queries, rng, etype)
    ranks: List[int] = []
    for src, pos in zip(srcs, positives):
        decoys = sample_negative_destinations(
            store,
            [src] * (num_candidates - 1),
            list(candidates),
            rng,
            etype,
        )
        pool = [pos] + decoys
        scores = trainer.score_pairs([src] * len(pool), pool)
        ranks.append(rank_of_positive(np.asarray(scores), 0))
    return {
        "hit@k": hit_rate_at_k(ranks, k),
        "mrr": mean_reciprocal_rank(ranks),
        "mean_rank": float(np.mean(ranks)) if ranks else 0.0,
    }
