"""Unsupervised walk embeddings: skip-gram with negative sampling (SGNS).

The classic embedding pipeline the paper's sampling machinery exists to
feed (DeepWalk / node2vec / metapath2vec): walks are drawn through the
store's weighted sampling, co-occurrence pairs become skip-gram training
examples, and vertices get center/context vector tables trained with
negative sampling.  Pure NumPy, mini-batched, with hand-written SGNS
gradients.

Because the walks always sample the *live* store, re-running
:meth:`SkipGramTrainer.train_from_store` after graph updates adapts the
embeddings to the new topology — the dynamic-training loop in its
simplest form.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.types import DEFAULT_ETYPE, GraphStoreAPI
from repro.errors import ConfigurationError, VertexNotFoundError
from repro.gnn.walks import random_walks, walk_cooccurrence

__all__ = ["EmbeddingTable", "SkipGramTrainer"]


class EmbeddingTable:
    """A growable vertex → vector table (float32 rows)."""

    def __init__(self, dim: int, rng: np.random.Generator) -> None:
        if dim < 1:
            raise ConfigurationError(f"dim must be >= 1, got {dim}")
        self.dim = dim
        self._rng = rng
        self._index: Dict[int, int] = {}
        self._vectors = np.zeros((0, dim), dtype=np.float32)

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, vertex: int) -> bool:
        return int(vertex) in self._index

    def index_of(self, vertex: int, create: bool = False) -> int:
        """Row index of a vertex (optionally allocating a new row)."""
        vertex = int(vertex)
        idx = self._index.get(vertex)
        if idx is not None:
            return idx
        if not create:
            raise VertexNotFoundError(f"vertex {vertex} has no embedding")
        idx = len(self._index)
        self._index[vertex] = idx
        if idx >= self._vectors.shape[0]:
            grow = max(64, self._vectors.shape[0])
            extra = (
                self._rng.uniform(-0.5, 0.5, size=(grow, self.dim)) / self.dim
            ).astype(np.float32)
            self._vectors = np.concatenate([self._vectors, extra], axis=0)
        return idx

    def indices_of(self, vertices: Sequence[int], create: bool = False) -> np.ndarray:
        return np.asarray(
            [self.index_of(v, create) for v in vertices], dtype=np.int64
        )

    def vector(self, vertex: int) -> np.ndarray:
        """The embedding row of one vertex."""
        return self._vectors[self.index_of(vertex)]

    @property
    def rows(self) -> np.ndarray:
        """The live rows (allocation order)."""
        return self._vectors[: len(self._index)]

    def vertices(self) -> List[int]:
        """Vertices in row order."""
        return sorted(self._index, key=self._index.get)


class SkipGramTrainer:
    """SGNS over walk co-occurrence pairs from a topology store."""

    def __init__(
        self,
        dim: int = 32,
        num_negatives: int = 5,
        lr: float = 0.025,
        seed: int = 0,
    ) -> None:
        if num_negatives < 1:
            raise ConfigurationError(
                f"num_negatives must be >= 1, got {num_negatives}"
            )
        if lr <= 0:
            raise ConfigurationError(f"lr must be > 0, got {lr}")
        nprng = np.random.default_rng(seed)
        self.centers = EmbeddingTable(dim, nprng)
        self.contexts = EmbeddingTable(dim, nprng)
        self.num_negatives = num_negatives
        self.lr = lr
        self._nprng = nprng
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------
    def train_pairs(
        self,
        pairs: Sequence[Tuple[int, int]],
        counts: Optional[Sequence[int]] = None,
        epochs: int = 1,
    ) -> float:
        """SGNS over (center, context) pairs; returns the final mean loss.

        Negatives are drawn uniformly from the context vocabulary.
        """
        if not pairs:
            return 0.0
        centers = [p[0] for p in pairs]
        contexts = [p[1] for p in pairs]
        weights = np.asarray(
            counts if counts is not None else [1] * len(pairs), dtype=np.float64
        )
        # A pair's count scales its gradient step; cap it so frequent
        # pairs cannot blow the effective learning rate past stability
        # (one capped step per epoch ≈ several unit steps, like word2vec's
        # subsampling of frequent pairs).
        weights = np.minimum(weights, 4.0)
        c_idx = self.centers.indices_of(centers, create=True)
        o_idx = self.contexts.indices_of(contexts, create=True)
        vocab = np.asarray(
            self.contexts.indices_of(self.contexts.vertices()), dtype=np.int64
        )
        loss = 0.0
        for _ in range(max(1, epochs)):
            loss = self._epoch(c_idx, o_idx, weights, vocab)
        return loss

    def _epoch(self, c_idx, o_idx, weights, vocab) -> float:
        C = self.centers._vectors
        O = self.contexts._vectors
        k = self.num_negatives
        order = self._nprng.permutation(len(c_idx))
        total_loss = 0.0
        for i in order:
            ci, oi, w = c_idx[i], o_idx[i], weights[i]
            vc = C[ci]
            # positive
            vo = O[oi]
            z = float(vc @ vo)
            sig = 1.0 / (1.0 + np.exp(-np.clip(z, -30, 30)))
            total_loss += -np.log(max(sig, 1e-12)) * w
            g = (sig - 1.0) * self.lr * w
            grad_c = g * vo
            O[oi] = vo - g * vc
            # negatives
            negs = vocab[self._nprng.integers(0, len(vocab), size=k)]
            for ni in negs:
                if ni == oi:
                    continue
                vn = O[ni]
                zn = float(vc @ vn)
                sign = 1.0 / (1.0 + np.exp(-np.clip(zn, -30, 30)))
                total_loss += -np.log(max(1.0 - sign, 1e-12)) * w
                gn = sign * self.lr * w
                grad_c += gn * vn
                O[ni] = vn - gn * vc
            C[ci] = vc - grad_c
        return float(total_loss / max(1.0, weights.sum()))

    # ------------------------------------------------------------------
    def train_from_store(
        self,
        store: GraphStoreAPI,
        seeds: Sequence[int],
        walk_length: int = 10,
        window: int = 3,
        epochs: int = 2,
        etype: int = DEFAULT_ETYPE,
    ) -> float:
        """Walk → co-occurrence → SGNS against the live store."""
        walks = random_walks(store, seeds, walk_length, self._rng, etype)
        pairs = walk_cooccurrence(walks, window)
        if not pairs:
            return 0.0
        keys = list(pairs)
        return self.train_pairs(keys, [pairs[k] for k in keys], epochs)

    # ------------------------------------------------------------------
    def similarity(self, a: int, b: int) -> float:
        """Cosine similarity of two vertices' center embeddings."""
        va, vb = self.centers.vector(a), self.centers.vector(b)
        denom = float(np.linalg.norm(va) * np.linalg.norm(vb))
        if denom == 0.0:
            return 0.0
        return float(va @ vb) / denom

    def most_similar(self, vertex: int, k: int = 5) -> List[Tuple[int, float]]:
        """Top-``k`` vertices by cosine similarity to ``vertex``."""
        query = self.centers.vector(vertex)
        rows = self.centers.rows
        norms = np.linalg.norm(rows, axis=1) * max(
            1e-12, float(np.linalg.norm(query))
        )
        scores = (rows @ query) / np.maximum(norms, 1e-12)
        vertices = self.centers.vertices()
        me = self.centers.index_of(vertex)
        scores[me] = -np.inf
        k = min(k, len(vertices) - 1)
        if k <= 0:
            return []
        top = np.argpartition(-scores, k - 1)[:k]
        top = top[np.argsort(-scores[top])]
        return [(vertices[i], float(scores[i])) for i in top]
