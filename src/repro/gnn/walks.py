"""Weighted random walks over the dynamic store.

The paper's sampling machinery descends from the random-walk engines of
graph-embedding systems (its ITS method is KnightKing's [34]); walk-based
objectives — DeepWalk/node2vec-style skip-gram pairs, PinSage-style
importance pooling — are standard companions to GNN training in
production recommenders.  This module runs them directly against any
:class:`GraphStoreAPI`, so every step is one weighted neighbor draw
through the store's ITS/FTS path and always reflects the current graph.

* :func:`random_walks` — plain weighted walks (restart-capable);
* :func:`node2vec_walks` — 2nd-order walks with return/in-out bias
  (p, q) via rejection sampling (KnightKing's technique: propose from
  the static weighted distribution, accept against the dynamic bias);
* :func:`metapath_walks` — typed walks over a heterogeneous schema;
* :func:`walk_cooccurrence` — skip-gram (center, context) pair counts,
  the training signal for unsupervised embeddings.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.types import DEFAULT_ETYPE, GraphStoreAPI
from repro.errors import ConfigurationError

__all__ = [
    "random_walks",
    "node2vec_walks",
    "metapath_walks",
    "walk_cooccurrence",
]


def random_walks(
    store: GraphStoreAPI,
    seeds: Sequence[int],
    length: int,
    rng: Optional[random.Random] = None,
    etype: int = DEFAULT_ETYPE,
    restart_prob: float = 0.0,
) -> List[List[int]]:
    """One weighted walk of ``length`` steps per seed.

    A walk stops early at a sink (vertex without out-edges).  With
    ``restart_prob`` > 0 each step teleports back to the seed with that
    probability (personalised-PageRank-style walks).
    """
    if length < 0:
        raise ConfigurationError(f"length must be >= 0, got {length}")
    if not 0.0 <= restart_prob < 1.0:
        raise ConfigurationError(
            f"restart_prob must be in [0, 1), got {restart_prob}"
        )
    rng = rng or random
    walks = []
    for seed in seeds:
        walk = [int(seed)]
        current = int(seed)
        for _ in range(length):
            if restart_prob and rng.random() < restart_prob:
                current = int(seed)
                walk.append(current)
                continue
            step = store.sample_neighbors(current, 1, rng, etype)
            if not step:
                break
            current = int(step[0])
            walk.append(current)
        walks.append(walk)
    return walks


def node2vec_walks(
    store: GraphStoreAPI,
    seeds: Sequence[int],
    length: int,
    p: float = 1.0,
    q: float = 1.0,
    rng: Optional[random.Random] = None,
    etype: int = DEFAULT_ETYPE,
    max_rejections: int = 32,
) -> List[List[int]]:
    """2nd-order (node2vec) walks with return parameter ``p`` and
    in-out parameter ``q``.

    Implemented with KnightKing-style rejection sampling: candidates are
    proposed from the store's first-order weighted distribution and
    accepted with probability ``bias / max_bias`` where the bias is
    ``1/p`` for returning to the previous vertex, ``1`` for a common
    neighbor of the previous vertex, and ``1/q`` otherwise.  This keeps
    every proposal a plain O(log n) store draw — no per-vertex transition
    tables, so the walk definition stays valid under dynamic updates.
    """
    if p <= 0 or q <= 0:
        raise ConfigurationError(f"p and q must be > 0, got p={p}, q={q}")
    if length < 0:
        raise ConfigurationError(f"length must be >= 0, got {length}")
    rng = rng or random
    max_bias = max(1.0, 1.0 / p, 1.0 / q)
    walks = []
    for seed in seeds:
        walk = [int(seed)]
        prev: Optional[int] = None
        current = int(seed)
        for _ in range(length):
            candidate: Optional[int] = None
            for _ in range(max_rejections):
                step = store.sample_neighbors(current, 1, rng, etype)
                if not step:
                    break
                proposal = int(step[0])
                if prev is None:
                    candidate = proposal
                    break
                if proposal == prev:
                    bias = 1.0 / p
                elif store.has_edge(prev, proposal, etype):
                    bias = 1.0
                else:
                    bias = 1.0 / q
                if rng.random() * max_bias <= bias:
                    candidate = proposal
                    break
            if candidate is None:
                break
            prev, current = current, candidate
            walk.append(current)
        walks.append(walk)
    return walks


def metapath_walks(
    store: GraphStoreAPI,
    seeds: Sequence[int],
    schema: Sequence[int],
    repetitions: int = 1,
    rng: Optional[random.Random] = None,
) -> List[List[int]]:
    """Typed walks following an edge-type schema, repeated in a loop.

    ``schema = [USER_LIVE, LIVE_LIVE]`` with ``repetitions=2`` walks
    User→Live→Live→Live→Live (metapath2vec-style), stopping early when a
    hop has no edges of the scheduled type.
    """
    if not schema:
        raise ConfigurationError("schema must contain at least one etype")
    if repetitions < 1:
        raise ConfigurationError(
            f"repetitions must be >= 1, got {repetitions}"
        )
    rng = rng or random
    walks = []
    for seed in seeds:
        walk = [int(seed)]
        current = int(seed)
        alive = True
        for _ in range(repetitions):
            if not alive:
                break
            for etype in schema:
                step = store.sample_neighbors(current, 1, rng, etype)
                if not step:
                    alive = False
                    break
                current = int(step[0])
                walk.append(current)
        walks.append(walk)
    return walks


def walk_cooccurrence(
    walks: Sequence[Sequence[int]], window: int
) -> Dict[Tuple[int, int], int]:
    """Skip-gram (center, context) pair counts within ``window`` hops.

    The training-pair generator for unsupervised walk embeddings; pairs
    are directed (center, context) with contexts on both sides.
    """
    if window < 1:
        raise ConfigurationError(f"window must be >= 1, got {window}")
    pairs: Counter = Counter()
    for walk in walks:
        for i, center in enumerate(walk):
            lo = max(0, i - window)
            hi = min(len(walk), i + window + 1)
            for j in range(lo, hi):
                if j != i:
                    pairs[(int(center), int(walk[j]))] += 1
    return dict(pairs)
