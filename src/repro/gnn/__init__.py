"""GNN operator layer: sampling operators, NumPy message passing, models,
and the mini-batch trainer.
"""

from repro.gnn.embeddings import EmbeddingTable, SkipGramTrainer
from repro.gnn.evaluation import (
    evaluate_link_ranking,
    hit_rate_at_k,
    mean_reciprocal_rank,
    ndcg_at_k,
    recall_at_k,
)
from repro.gnn.inference import embed_vertices, topk_similar
from repro.gnn.layers import DenseLayer, GATLayer, GCNLayer, SAGEMeanLayer
from repro.gnn.link_prediction import (
    LinkPredictionTrainer,
    binary_cross_entropy_scores,
    bpr_loss,
    sample_negative_destinations,
    sample_positive_edges,
)
from repro.gnn.models import GAT, GCN, GraphSAGE, SampledGNN
from repro.gnn.ops import (
    accuracy,
    l2_normalize,
    log_softmax,
    mean_aggregate,
    relu,
    softmax_cross_entropy,
    xavier_init,
)
from repro.gnn.samplers import (
    MiniBatchBlocks,
    sample_blocks,
    sample_metapath,
    sample_neighbor_matrix,
    sample_seed_nodes,
    sample_subgraph,
)
from repro.gnn.training import Adam, Trainer, TrainResult
from repro.gnn.walks import (
    metapath_walks,
    node2vec_walks,
    random_walks,
    walk_cooccurrence,
)

__all__ = [
    "EmbeddingTable",
    "SkipGramTrainer",
    "evaluate_link_ranking",
    "hit_rate_at_k",
    "mean_reciprocal_rank",
    "ndcg_at_k",
    "recall_at_k",
    "embed_vertices",
    "topk_similar",
    "DenseLayer",
    "GATLayer",
    "GCNLayer",
    "SAGEMeanLayer",
    "LinkPredictionTrainer",
    "binary_cross_entropy_scores",
    "bpr_loss",
    "sample_negative_destinations",
    "sample_positive_edges",
    "GAT",
    "GCN",
    "GraphSAGE",
    "SampledGNN",
    "metapath_walks",
    "node2vec_walks",
    "random_walks",
    "walk_cooccurrence",
    "accuracy",
    "l2_normalize",
    "log_softmax",
    "mean_aggregate",
    "relu",
    "softmax_cross_entropy",
    "xavier_init",
    "MiniBatchBlocks",
    "sample_blocks",
    "sample_metapath",
    "sample_neighbor_matrix",
    "sample_seed_nodes",
    "sample_subgraph",
    "Adam",
    "Trainer",
    "TrainResult",
]
