"""NumPy tensor kernels for the GNN operator layer.

The paper's top layer is "TF-based operators" (§III) — TensorFlow ops for
aggregation and sampling.  This reproduction substitutes NumPy kernels
with hand-written gradients (see DESIGN.md): the storage/sampling layer
below is the contribution under test and is exercised identically.

Everything here is a pure function over ``numpy`` arrays; layers in
:mod:`repro.gnn.layers` compose them and carry the caches.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ShapeError

__all__ = [
    "xavier_init",
    "relu",
    "relu_grad",
    "mean_aggregate",
    "mean_aggregate_grad",
    "log_softmax",
    "softmax_cross_entropy",
    "accuracy",
    "l2_normalize",
]


def xavier_init(
    fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for a (fan_in, fan_out) matrix."""
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=(fan_in, fan_out)).astype(np.float32)


def relu(x: np.ndarray) -> np.ndarray:
    """Elementwise max(x, 0)."""
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
    """Gradient of ReLU at pre-activation ``x``."""
    return grad_out * (x > 0.0)


def mean_aggregate(neigh: np.ndarray) -> np.ndarray:
    """Mean over the neighbor axis: ``(B, F, D) -> (B, D)``.

    This is the paper's ``⊕`` aggregator for the GraphSAGE-mean model
    (Equation 1): neighbor messages are averaged.
    """
    if neigh.ndim != 3:
        raise ShapeError(
            f"mean_aggregate expects (batch, fanout, dim), got {neigh.shape}"
        )
    return neigh.mean(axis=1)


def mean_aggregate_grad(
    grad_out: np.ndarray, fanout: int
) -> np.ndarray:
    """Gradient of :func:`mean_aggregate`: broadcast ``grad/F`` back."""
    if grad_out.ndim != 2:
        raise ShapeError(
            f"mean_aggregate_grad expects (batch, dim), got {grad_out.shape}"
        )
    return np.repeat(grad_out[:, None, :] / fanout, fanout, axis=1)


def log_softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable row-wise log-softmax."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> Tuple[float, np.ndarray]:
    """Mean cross-entropy loss and its gradient w.r.t. ``logits``.

    ``labels`` are integer class indices of shape ``(batch,)``.
    """
    if logits.ndim != 2 or labels.shape != (logits.shape[0],):
        raise ShapeError(
            f"incompatible shapes: logits {logits.shape}, labels {labels.shape}"
        )
    n = logits.shape[0]
    logp = log_softmax(logits)
    loss = -float(logp[np.arange(n), labels].mean())
    grad = np.exp(logp)
    grad[np.arange(n), labels] -= 1.0
    return loss, grad / n


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of rows whose argmax equals the label."""
    if len(labels) == 0:
        return 0.0
    return float((logits.argmax(axis=1) == labels).mean())


def l2_normalize(x: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Row-wise L2 normalisation (GraphSAGE's final embedding step)."""
    norms = np.linalg.norm(x, axis=-1, keepdims=True)
    return x / np.maximum(norms, eps)
