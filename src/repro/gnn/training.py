"""Mini-batch training loop: Adam + sampled GraphSAGE over a live store.

This is the paper's Figure 1 end to end: seeds are sampled, their K-hop
neighborhoods are drawn *from the dynamic store at its current state*
(so a concurrently updated graph immediately influences the next batch),
features are gathered from the attribute store, and the model steps.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.types import DEFAULT_ETYPE, GraphStoreAPI
from repro.errors import ConfigurationError, ShapeError
from repro.gnn.models import SampledGNN
from repro.gnn.ops import accuracy, softmax_cross_entropy
from repro.gnn.samplers import sample_blocks
from repro.storage.attributes import AttributeStore

__all__ = ["Adam", "TrainResult", "Trainer"]


class Adam:
    """Adam optimiser over a :class:`SampledGNN`'s parameters."""

    def __init__(
        self,
        model: SampledGNN,
        lr: float = 1e-2,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        if lr <= 0:
            raise ConfigurationError(f"learning rate must be > 0, got {lr}")
        self.model = model
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: Dict[str, np.ndarray] = {}
        self._v: Dict[str, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        """Apply one update from the model's accumulated gradients."""
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1 ** self._t
        bias2 = 1.0 - b2 ** self._t
        for name, param, grad in self.model.parameters():
            m = self._m.setdefault(name, np.zeros_like(param))
            v = self._v.setdefault(name, np.zeros_like(param))
            m *= b1
            m += (1 - b1) * grad
            v *= b2
            v += (1 - b2) * grad * grad
            update = (m / bias1) / (np.sqrt(v / bias2) + self.eps)
            param -= self.lr * update


@dataclass
class TrainResult:
    """Per-epoch training metrics."""

    epoch: int
    loss: float
    train_accuracy: float
    num_batches: int


class Trainer:
    """Drives mini-batch GNN training against any topology store.

    Parameters
    ----------
    store:
        Topology source (local store, baseline, or distributed client).
    features:
        Attribute store carrying the ``feat_name`` field.
    model:
        A :class:`SampledGNN`.
    fanouts:
        Per-hop sample counts, length = model depth.
    """

    def __init__(
        self,
        store: GraphStoreAPI,
        features: AttributeStore,
        model: SampledGNN,
        fanouts: Sequence[int],
        feat_name: str = "feat",
        lr: float = 1e-2,
        etype: int = DEFAULT_ETYPE,
        rng: Optional[random.Random] = None,
    ) -> None:
        if len(fanouts) != model.num_layers:
            raise ConfigurationError(
                f"fanouts length {len(fanouts)} != model depth "
                f"{model.num_layers}"
            )
        self.store = store
        self.features = features
        self.model = model
        self.fanouts = list(fanouts)
        self.feat_name = feat_name
        self.etype = etype
        self.rng = rng or random.Random(0)
        self.optimizer = Adam(model, lr=lr)

    # ------------------------------------------------------------------
    def _gather_levels(self, levels: Sequence[np.ndarray]) -> List[np.ndarray]:
        return [
            self.features.gather(self.feat_name, level.tolist())
            for level in levels
        ]

    def forward_batch(self, seeds: Sequence[int]) -> np.ndarray:
        """Sample + gather + forward; returns seed logits."""
        blocks = sample_blocks(
            self.store, seeds, self.fanouts, self.rng, self.etype
        )
        feats = self._gather_levels(blocks.levels)
        return self.model.forward(feats, blocks.fanouts)

    def train_step(
        self, seeds: Sequence[int], labels: Sequence[int]
    ) -> Tuple[float, float]:
        """One optimisation step; returns ``(loss, batch_accuracy)``."""
        labels_arr = np.asarray(list(labels), dtype=np.int64)
        if len(seeds) != len(labels_arr):
            raise ShapeError(
                f"{len(seeds)} seeds but {len(labels_arr)} labels"
            )
        logits = self.forward_batch(seeds)
        loss, grad = softmax_cross_entropy(logits, labels_arr)
        self.model.zero_grads()
        self.model.backward(grad)
        self.optimizer.step()
        return loss, accuracy(logits, labels_arr)

    def train_epoch(
        self,
        seeds: Sequence[int],
        labels: Sequence[int],
        batch_size: int,
        epoch: int = 0,
    ) -> TrainResult:
        """Shuffle and run one pass over the seed set."""
        order = list(range(len(seeds)))
        self.rng.shuffle(order)
        seeds = list(seeds)
        labels = list(labels)
        losses: List[float] = []
        accs: List[float] = []
        for start in range(0, len(order), batch_size):
            idx = order[start : start + batch_size]
            loss, acc = self.train_step(
                [seeds[i] for i in idx], [labels[i] for i in idx]
            )
            losses.append(loss)
            accs.append(acc)
        return TrainResult(
            epoch=epoch,
            loss=float(np.mean(losses)) if losses else 0.0,
            train_accuracy=float(np.mean(accs)) if accs else 0.0,
            num_batches=len(losses),
        )

    def evaluate(
        self,
        seeds: Sequence[int],
        labels: Sequence[int],
        batch_size: int = 512,
    ) -> float:
        """Accuracy over a held-out seed set (no parameter updates)."""
        labels = list(labels)
        seeds = list(seeds)
        correct = 0
        for start in range(0, len(seeds), batch_size):
            chunk = seeds[start : start + batch_size]
            chunk_labels = np.asarray(
                labels[start : start + batch_size], dtype=np.int64
            )
            logits = self.forward_batch(chunk)
            correct += int((logits.argmax(axis=1) == chunk_labels).sum())
        return correct / len(seeds) if seeds else 0.0
