"""Mini-batch training loop: Adam + sampled GraphSAGE over a live store.

This is the paper's Figure 1 end to end: seeds are sampled, their K-hop
neighborhoods are drawn *from the dynamic store at its current state*
(so a concurrently updated graph immediately influences the next batch),
features are gathered from the attribute store, and the model steps.

Per-phase telemetry (DESIGN.md §11): when the trainer is given a
:class:`~repro.obs.registry.MetricsRegistry` it times the three phases
of every batch — neighborhood **sample**, feature **gather**, and model
**compute** (forward, or forward+backward+step on the training path) —
into ``repro_train_phase_seconds{phase=...}`` histograms, plus
``repro_train_batches`` / ``repro_train_seeds`` counters.  A
:class:`~repro.obs.trace.Tracer` nests the same phases as spans under a
``train.step`` root, so one slow batch can be broken down after the
fact.  Both are optional and default to off — the untimed path is
byte-for-byte the previous behavior.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.types import DEFAULT_ETYPE, GraphStoreAPI
from repro.errors import ConfigurationError, ShapeError
from repro.gnn.models import SampledGNN
from repro.gnn.ops import accuracy, softmax_cross_entropy
from repro.gnn.samplers import sample_blocks
from repro.obs.trace import NULL_SPAN
from repro.storage.attributes import AttributeStore

__all__ = ["Adam", "TrainResult", "Trainer", "PHASES"]

#: The per-batch phases the trainer times.
PHASES = ("sample", "gather", "compute")


class Adam:
    """Adam optimiser over a :class:`SampledGNN`'s parameters."""

    def __init__(
        self,
        model: SampledGNN,
        lr: float = 1e-2,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        if lr <= 0:
            raise ConfigurationError(f"learning rate must be > 0, got {lr}")
        self.model = model
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: Dict[str, np.ndarray] = {}
        self._v: Dict[str, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        """Apply one update from the model's accumulated gradients."""
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1 ** self._t
        bias2 = 1.0 - b2 ** self._t
        for name, param, grad in self.model.parameters():
            m = self._m.setdefault(name, np.zeros_like(param))
            v = self._v.setdefault(name, np.zeros_like(param))
            m *= b1
            m += (1 - b1) * grad
            v *= b2
            v += (1 - b2) * grad * grad
            update = (m / bias1) / (np.sqrt(v / bias2) + self.eps)
            param -= self.lr * update


@dataclass
class TrainResult:
    """Per-epoch training metrics."""

    epoch: int
    loss: float
    train_accuracy: float
    num_batches: int


class Trainer:
    """Drives mini-batch GNN training against any topology store.

    Parameters
    ----------
    store:
        Topology source (local store, baseline, or distributed client).
    features:
        Attribute store carrying the ``feat_name`` field.
    model:
        A :class:`SampledGNN`.
    fanouts:
        Per-hop sample counts, length = model depth.
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry`; turns on
        per-phase timing into ``repro_train_phase_seconds{phase=...}``.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`; every train step
        becomes a ``train.step`` span with sample/gather/compute
        children.
    """

    def __init__(
        self,
        store: GraphStoreAPI,
        features: AttributeStore,
        model: SampledGNN,
        fanouts: Sequence[int],
        feat_name: str = "feat",
        lr: float = 1e-2,
        etype: int = DEFAULT_ETYPE,
        rng: Optional[random.Random] = None,
        registry=None,
        tracer=None,
    ) -> None:
        if len(fanouts) != model.num_layers:
            raise ConfigurationError(
                f"fanouts length {len(fanouts)} != model depth "
                f"{model.num_layers}"
            )
        self.store = store
        self.features = features
        self.model = model
        self.fanouts = list(fanouts)
        self.feat_name = feat_name
        self.etype = etype
        self.rng = rng or random.Random(0)
        self.optimizer = Adam(model, lr=lr)
        self.registry = registry
        self.tracer = tracer
        if registry is not None:
            self._phase_hists = {
                phase: registry.histogram(
                    "repro_train_phase_seconds",
                    help="Per-batch training phase latency",
                    phase=phase,
                )
                for phase in PHASES
            }
            self._c_batches = registry.counter(
                "repro_train_batches", "Mini-batches processed"
            )
            self._c_seeds = registry.counter(
                "repro_train_seeds", "Seed vertices processed"
            )
        else:
            self._phase_hists = None
            self._c_batches = self._c_seeds = None

    # ------------------------------------------------------------------
    # telemetry helpers (both no-ops when registry/tracer are absent)
    # ------------------------------------------------------------------
    def _span(self, name: str, **tags):
        if self.tracer is None:
            return NULL_SPAN
        return self.tracer.span(name, **tags)

    def _record_phase(self, phase: str, seconds: float) -> None:
        if self._phase_hists is not None:
            self._phase_hists[phase].record(seconds)

    def reset_phase_stats(self) -> None:
        """Zero the per-phase latency histograms and batch/seed counters.

        Called by :meth:`LocalCluster.reset_stats` for registered
        trainers, so a before/after measurement window covers training
        telemetry too.  Note the phase histograms are *owned* by the
        registry the trainer was built with — when that registry is the
        cluster's own, ``registry.reset_owned()`` already clears them;
        this method makes the reset explicit and covers trainers wired
        to a *different* registry.  No-op without a registry.
        """
        if self._phase_hists is None:
            return
        for hist in self._phase_hists.values():
            hist.reset()
        self._c_batches.value = 0.0
        self._c_seeds.value = 0.0

    def phase_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-phase latency summaries (empty without a registry)."""
        if self._phase_hists is None:
            return {}
        return {
            phase: hist.summary()
            for phase, hist in self._phase_hists.items()
        }

    def phase_report(self) -> str:
        """Fixed-width sample/gather/compute breakdown (ms units)."""
        summaries = self.phase_summary()
        if not summaries:
            return "(no phase telemetry: Trainer built without a registry)"
        lines = [
            f"{'phase':<8} {'count':>7} {'mean':>10} {'p50':>10} "
            f"{'p99':>10} {'max':>10}"
        ]
        for phase in PHASES:
            s = summaries[phase]
            lines.append(
                f"{phase:<8} {int(s['count']):>7} "
                f"{s['mean'] * 1e3:>8.3f}ms {s['p50'] * 1e3:>8.3f}ms "
                f"{s['p99'] * 1e3:>8.3f}ms {s['max'] * 1e3:>8.3f}ms"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def _gather_levels(self, levels: Sequence[np.ndarray]) -> List[np.ndarray]:
        return [
            self.features.gather(self.feat_name, level.tolist())
            for level in levels
        ]

    def _sample_phase(self, seeds: Sequence[int]):
        start = time.perf_counter()
        with self._span("train.sample", seeds=len(seeds)):
            blocks = sample_blocks(
                self.store,
                seeds,
                self.fanouts,
                self.rng,
                self.etype,
                tracer=self.tracer,
            )
        self._record_phase("sample", time.perf_counter() - start)
        return blocks

    def _gather_phase(self, blocks) -> List[np.ndarray]:
        start = time.perf_counter()
        with self._span(
            "train.gather", vertices=sum(len(l) for l in blocks.levels)
        ):
            feats = self._gather_levels(blocks.levels)
        self._record_phase("gather", time.perf_counter() - start)
        return feats

    def forward_batch(self, seeds: Sequence[int]) -> np.ndarray:
        """Sample + gather + forward; returns seed logits."""
        blocks = self._sample_phase(seeds)
        feats = self._gather_phase(blocks)
        start = time.perf_counter()
        with self._span("train.compute"):
            logits = self.model.forward(feats, blocks.fanouts)
        self._record_phase("compute", time.perf_counter() - start)
        return logits

    def train_step(
        self, seeds: Sequence[int], labels: Sequence[int]
    ) -> Tuple[float, float]:
        """One optimisation step; returns ``(loss, batch_accuracy)``.

        The compute phase of a training step covers forward **and**
        backward + optimiser, timed as one observation.
        """
        labels_arr = np.asarray(list(labels), dtype=np.int64)
        if len(seeds) != len(labels_arr):
            raise ShapeError(
                f"{len(seeds)} seeds but {len(labels_arr)} labels"
            )
        with self._span("train.step", seeds=len(seeds)):
            blocks = self._sample_phase(seeds)
            feats = self._gather_phase(blocks)
            start = time.perf_counter()
            with self._span("train.compute"):
                logits = self.model.forward(feats, blocks.fanouts)
                loss, grad = softmax_cross_entropy(logits, labels_arr)
                self.model.zero_grads()
                self.model.backward(grad)
                self.optimizer.step()
            self._record_phase("compute", time.perf_counter() - start)
        if self._c_batches is not None:
            self._c_batches.inc()
            self._c_seeds.inc(len(seeds))
        return loss, accuracy(logits, labels_arr)

    def train_epoch(
        self,
        seeds: Sequence[int],
        labels: Sequence[int],
        batch_size: int,
        epoch: int = 0,
    ) -> TrainResult:
        """Shuffle and run one pass over the seed set."""
        order = list(range(len(seeds)))
        self.rng.shuffle(order)
        seeds = list(seeds)
        labels = list(labels)
        losses: List[float] = []
        accs: List[float] = []
        for start in range(0, len(order), batch_size):
            idx = order[start : start + batch_size]
            loss, acc = self.train_step(
                [seeds[i] for i in idx], [labels[i] for i in idx]
            )
            losses.append(loss)
            accs.append(acc)
        return TrainResult(
            epoch=epoch,
            loss=float(np.mean(losses)) if losses else 0.0,
            train_accuracy=float(np.mean(accs)) if accs else 0.0,
            num_batches=len(losses),
        )

    def evaluate(
        self,
        seeds: Sequence[int],
        labels: Sequence[int],
        batch_size: int = 512,
    ) -> float:
        """Accuracy over a held-out seed set (no parameter updates)."""
        labels = list(labels)
        seeds = list(seeds)
        correct = 0
        for start in range(0, len(seeds), batch_size):
            chunk = seeds[start : start + batch_size]
            chunk_labels = np.asarray(
                labels[start : start + batch_size], dtype=np.int64
            )
            logits = self.forward_batch(chunk)
            correct += int((logits.argmax(axis=1) == chunk_labels).sum())
        return correct / len(seeds) if seeds else 0.0
