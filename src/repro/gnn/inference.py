"""Inference: embedding generation over the live store.

Production recommendation serves from embeddings refreshed against the
*current* graph (paper §II-A: the model works on ``G^(t)`` during both
training and inference).  This module batches that path:

* :func:`embed_vertices` — sampled-neighborhood embeddings for any
  vertex list, mini-batched so a full-catalog refresh streams through
  bounded memory;
* :func:`topk_similar` — cosine top-k lookup over an embedding matrix,
  the retrieval primitive of an embedding-based recommender.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.types import DEFAULT_ETYPE, GraphStoreAPI
from repro.errors import ConfigurationError, ShapeError
from repro.gnn.models import SampledGNN
from repro.gnn.ops import l2_normalize
from repro.gnn.samplers import sample_blocks
from repro.storage.attributes import AttributeStore

__all__ = ["embed_vertices", "topk_similar"]


def embed_vertices(
    store: GraphStoreAPI,
    features: AttributeStore,
    encoder: SampledGNN,
    vertices: Sequence[int],
    fanouts: Sequence[int],
    feat_name: str = "feat",
    batch_size: int = 512,
    normalize: bool = True,
    rng: Optional[random.Random] = None,
    etype: int = DEFAULT_ETYPE,
) -> np.ndarray:
    """Embeddings for ``vertices`` from their sampled neighborhoods.

    Returns a ``(len(vertices), out_dim)`` float32 matrix in input
    order.  ``normalize`` L2-normalises rows (GraphSAGE's convention),
    making dot products cosine similarities.
    """
    if len(fanouts) != encoder.num_layers:
        raise ConfigurationError(
            f"fanouts length {len(fanouts)} != encoder depth "
            f"{encoder.num_layers}"
        )
    if batch_size < 1:
        raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
    vertices = [int(v) for v in vertices]
    chunks: List[np.ndarray] = []
    for start in range(0, len(vertices), batch_size):
        chunk = vertices[start : start + batch_size]
        blocks = sample_blocks(store, chunk, fanouts, rng, etype)
        feats = [
            features.gather(feat_name, level.tolist())
            for level in blocks.levels
        ]
        out = encoder.forward(feats, blocks.fanouts)
        # Inference passes leave no gradient work behind.
        for layer in encoder.layers:
            layer._cache.clear()
        chunks.append(out)
    if not chunks:
        dim = encoder.layers[-1].out_dim
        return np.zeros((0, dim), dtype=np.float32)
    matrix = np.concatenate(chunks, axis=0).astype(np.float32)
    return l2_normalize(matrix) if normalize else matrix


def topk_similar(
    embeddings: np.ndarray,
    query: np.ndarray,
    k: int,
    exclude: Optional[int] = None,
) -> List[Tuple[int, float]]:
    """Top-``k`` rows of ``embeddings`` by dot product with ``query``.

    Returns ``(row_index, score)`` pairs, best first.  ``exclude`` drops
    one row (conventionally the query item itself).
    """
    if embeddings.ndim != 2 or query.shape != (embeddings.shape[1],):
        raise ShapeError(
            f"embeddings {embeddings.shape} incompatible with query "
            f"{query.shape}"
        )
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    scores = embeddings @ query
    if exclude is not None and 0 <= exclude < len(scores):
        scores = scores.copy()
        scores[exclude] = -np.inf
    k = min(k, len(scores))
    top = np.argpartition(-scores, k - 1)[:k]
    top = top[np.argsort(-scores[top])]
    return [(int(i), float(scores[i])) for i in top]
