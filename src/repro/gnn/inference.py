"""Inference: embedding generation over the live store.

Production recommendation serves from embeddings refreshed against the
*current* graph (paper §II-A: the model works on ``G^(t)`` during both
training and inference).  This module batches that path:

* :func:`embed_vertices` — sampled-neighborhood embeddings for any
  vertex list, mini-batched so a full-catalog refresh streams through
  bounded memory;
* :func:`topk_similar` — cosine top-k lookup over an embedding matrix,
  the retrieval primitive of an embedding-based recommender.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.snapshot import RNGLike, coerce_scalar_rng
from repro.core.types import DEFAULT_ETYPE, GraphStoreAPI
from repro.errors import ConfigurationError, ShapeError
from repro.gnn.models import SampledGNN
from repro.gnn.ops import l2_normalize
from repro.gnn.samplers import sample_blocks, sample_blocks_partial
from repro.storage.attributes import AttributeStore

__all__ = ["embed_vertices", "topk_similar"]


def embed_vertices(
    store: GraphStoreAPI,
    features: AttributeStore,
    encoder: SampledGNN,
    vertices: Sequence[int],
    fanouts: Sequence[int],
    feat_name: str = "feat",
    batch_size: int = 512,
    normalize: bool = True,
    rng: RNGLike = None,
    etype: int = DEFAULT_ETYPE,
    skip_unavailable: bool = False,
) -> Union[np.ndarray, Tuple[np.ndarray, List[int]]]:
    """Embeddings for ``vertices`` from their sampled neighborhoods.

    Returns a ``(len(vertices), out_dim)`` float32 matrix in input
    order.  ``normalize`` L2-normalises rows (GraphSAGE's convention),
    making dot products cosine similarities.

    ``rng`` accepts the codebase-wide seed convention (``None`` / int /
    ``random.Random`` / ``numpy.random.Generator``); an int seed is
    coerced **once** so successive mini-batches draw from one stream
    rather than re-seeding identically per chunk.

    With ``skip_unavailable=True`` (cluster clients running degraded
    reads), seeds whose shard has no live replica are zero-filled
    instead of crashing mid-batch, and the return value becomes
    ``(matrix, skipped)`` where ``skipped`` lists the affected positions
    into ``vertices`` — the serving tier answers those from its
    degraded cache.
    """
    if len(fanouts) != encoder.num_layers:
        raise ConfigurationError(
            f"fanouts length {len(fanouts)} != encoder depth "
            f"{encoder.num_layers}"
        )
    if batch_size < 1:
        raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
    vertices = [int(v) for v in vertices]
    # Coerce once: an int seed re-coerced per chunk would replay the
    # identical stream for every mini-batch.
    rng = coerce_scalar_rng(rng)
    out_dim = encoder.layers[-1].out_dim
    skipped: List[int] = []
    chunks: List[np.ndarray] = []
    for start in range(0, len(vertices), batch_size):
        chunk = vertices[start : start + batch_size]
        if skip_unavailable:
            blocks, served_idx, unavailable_idx = sample_blocks_partial(
                store, chunk, fanouts, rng, etype
            )
            skipped.extend(start + i for i in unavailable_idx)
            out = np.zeros((len(chunk), out_dim), dtype=np.float32)
            if blocks is None:
                chunks.append(out)
                continue
        else:
            blocks = sample_blocks(store, chunk, fanouts, rng, etype)
            served_idx = list(range(len(chunk)))
        feats = [
            features.gather(feat_name, level.tolist())
            for level in blocks.levels
        ]
        served = encoder.forward(feats, blocks.fanouts)
        # Inference passes leave no gradient work behind.
        for layer in encoder.layers:
            layer._cache.clear()
        if skip_unavailable:
            out[np.asarray(served_idx, dtype=np.int64)] = served
            chunks.append(out)
        else:
            chunks.append(served)
    if not chunks:
        matrix = np.zeros((0, out_dim), dtype=np.float32)
    else:
        matrix = np.concatenate(chunks, axis=0).astype(np.float32)
        if normalize:
            matrix = l2_normalize(matrix)
    if skip_unavailable:
        # Skipped rows stay exactly zero (l2_normalize leaves zero rows
        # untouched) so callers can overwrite them from a cache.
        return matrix, skipped
    return matrix


def topk_similar(
    embeddings: np.ndarray,
    query: np.ndarray,
    k: int,
    exclude: Optional[int] = None,
) -> List[Tuple[int, float]]:
    """Top-``k`` rows of ``embeddings`` by dot product with ``query``.

    Returns ``(row_index, score)`` pairs, best first.  ``exclude`` drops
    one row (conventionally the query item itself).
    """
    if embeddings.ndim != 2 or query.shape != (embeddings.shape[1],):
        raise ShapeError(
            f"embeddings {embeddings.shape} incompatible with query "
            f"{query.shape}"
        )
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    scores = embeddings @ query
    if exclude is not None and 0 <= exclude < len(scores):
        scores = scores.copy()
        scores[exclude] = -np.inf
    k = min(k, len(scores))
    top = np.argpartition(-scores, k - 1)[:k]
    top = top[np.argsort(-scores[top])]
    return [(int(i), float(scores[i])) for i in top]
