"""Link prediction: the recommendation objective the paper's system serves.

The WeChat deployment trains "various GNN models" for recommendation —
which at its core is *link prediction*: score how likely a user is to
interact with a live room.  This module supplies that training path on
top of the dynamic store:

* **positive pairs** come from the live edges (weighted by interaction
  strength, drawn through the store's FTS/ITS sampling — fresher, heavier
  edges dominate, which is exactly the dynamic-store payoff);
* **negative pairs** are corrupted destinations (uniform over the
  destination vocabulary, re-drawn if they collide with a true edge);
* the **encoder** is any :class:`~repro.gnn.models.SampledGNN` producing
  embeddings for both endpoints from their sampled neighborhoods;
* the **objective** is BPR (pairwise ranking, Rendle et al.) or binary
  cross-entropy over dot-product scores.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.types import DEFAULT_ETYPE, GraphStoreAPI
from repro.errors import ConfigurationError, ShapeError
from repro.gnn.models import SampledGNN
from repro.gnn.samplers import sample_blocks
from repro.gnn.training import Adam
from repro.storage.attributes import AttributeStore

__all__ = [
    "sample_positive_edges",
    "sample_negative_destinations",
    "bpr_loss",
    "binary_cross_entropy_scores",
    "LinkPredictionTrainer",
]


def sample_positive_edges(
    store: GraphStoreAPI,
    batch_size: int,
    rng: Optional[random.Random] = None,
    etype: int = DEFAULT_ETYPE,
) -> Tuple[List[int], List[int]]:
    """Draw ``batch_size`` (src, dst) pairs from the live edges.

    Sources are drawn degree-weighted (heavier-degree users appear more,
    matching the interaction stream); each source's destination is one
    weighted neighbor draw.
    """
    sampler = getattr(store, "sample_vertices", None)
    if sampler is not None:
        srcs = sampler(batch_size, rng, etype)
    else:
        pool = list(store.sources(etype))
        rng_local = rng or random
        srcs = [pool[rng_local.randrange(len(pool))] for _ in range(batch_size)] if pool else []
    dsts: List[int] = []
    kept: List[int] = []
    for src in srcs:
        draws = store.sample_neighbors(src, 1, rng, etype)
        if draws:
            kept.append(int(src))
            dsts.append(int(draws[0]))
    return kept, dsts


def sample_negative_destinations(
    store: GraphStoreAPI,
    srcs: Sequence[int],
    vocabulary: Sequence[int],
    rng: Optional[random.Random] = None,
    etype: int = DEFAULT_ETYPE,
    max_retries: int = 10,
) -> List[int]:
    """One corrupted destination per source (uniform over ``vocabulary``,
    avoiding true edges for up to ``max_retries`` redraws)."""
    if not vocabulary:
        raise ConfigurationError("negative-sampling vocabulary is empty")
    rng = rng or random
    negatives: List[int] = []
    for src in srcs:
        dst = vocabulary[rng.randrange(len(vocabulary))]
        for _ in range(max_retries):
            if not store.has_edge(src, dst, etype):
                break
            dst = vocabulary[rng.randrange(len(vocabulary))]
        negatives.append(int(dst))
    return negatives


def bpr_loss(
    pos_scores: np.ndarray, neg_scores: np.ndarray
) -> Tuple[float, np.ndarray, np.ndarray]:
    """Bayesian Personalised Ranking: ``-log σ(pos - neg)``.

    Returns ``(loss, grad_pos, grad_neg)``.
    """
    if pos_scores.shape != neg_scores.shape:
        raise ShapeError(
            f"score shapes differ: {pos_scores.shape} vs {neg_scores.shape}"
        )
    diff = pos_scores - neg_scores
    # σ(-diff) is the gradient magnitude; stable via logaddexp.
    loss = float(np.logaddexp(0.0, -diff).mean())
    sig = 1.0 / (1.0 + np.exp(np.clip(diff, -60, 60)))
    n = max(1, len(diff))
    grad_pos = -sig / n
    grad_neg = sig / n
    return loss, grad_pos, grad_neg


def binary_cross_entropy_scores(
    scores: np.ndarray, labels: np.ndarray
) -> Tuple[float, np.ndarray]:
    """BCE over raw dot-product scores; returns ``(loss, grad_scores)``."""
    if scores.shape != labels.shape:
        raise ShapeError(
            f"scores {scores.shape} vs labels {labels.shape}"
        )
    z = np.clip(scores, -60, 60)
    loss = float(np.mean(np.logaddexp(0.0, z) - labels * z))
    grad = (1.0 / (1.0 + np.exp(-z)) - labels) / max(1, len(z))
    return loss, grad


@dataclass
class LinkBatchResult:
    """Metrics of one link-prediction step."""

    loss: float
    auc_proxy: float  # fraction of pairs with pos_score > neg_score


class LinkPredictionTrainer:
    """Dot-product link prediction over a shared GNN encoder.

    The encoder embeds sources and destinations from their sampled
    neighborhoods; an edge's score is the dot product of the two
    embeddings, trained with BPR against corrupted destinations.
    """

    def __init__(
        self,
        store: GraphStoreAPI,
        features: AttributeStore,
        encoder: SampledGNN,
        fanouts: Sequence[int],
        feat_name: str = "feat",
        lr: float = 1e-2,
        etype: int = DEFAULT_ETYPE,
        rng: Optional[random.Random] = None,
    ) -> None:
        if len(fanouts) != encoder.num_layers:
            raise ConfigurationError(
                f"fanouts length {len(fanouts)} != encoder depth "
                f"{encoder.num_layers}"
            )
        self.store = store
        self.features = features
        self.encoder = encoder
        self.fanouts = list(fanouts)
        self.feat_name = feat_name
        self.etype = etype
        self.rng = rng or random.Random(0)
        self.optimizer = Adam(encoder, lr=lr)
        self._vocabulary: List[int] = []

    # ------------------------------------------------------------------
    def set_vocabulary(self, destinations: Sequence[int]) -> None:
        """Candidate destinations for negative sampling."""
        self._vocabulary = [int(v) for v in destinations]

    def _encode(self, vertices: Sequence[int]) -> np.ndarray:
        blocks = sample_blocks(
            self.store, vertices, self.fanouts, self.rng, self.etype
        )
        feats = [
            self.features.gather(self.feat_name, level.tolist())
            for level in blocks.levels
        ]
        return self.encoder.forward(feats, blocks.fanouts)

    def score_pairs(
        self, srcs: Sequence[int], dsts: Sequence[int]
    ) -> np.ndarray:
        """Dot-product scores for (src, dst) pairs (inference path)."""
        if len(srcs) != len(dsts):
            raise ShapeError(f"{len(srcs)} sources vs {len(dsts)} destinations")
        emb = self._encode(list(srcs) + list(dsts))
        n = len(srcs)
        return (emb[:n] * emb[n:]).sum(axis=1)

    # ------------------------------------------------------------------
    def train_step(self, batch_size: int) -> LinkBatchResult:
        """One BPR step on freshly sampled positive/negative pairs."""
        if not self._vocabulary:
            raise ConfigurationError(
                "call set_vocabulary() before training"
            )
        srcs, pos = sample_positive_edges(
            self.store, batch_size, self.rng, self.etype
        )
        if not srcs:
            return LinkBatchResult(loss=0.0, auc_proxy=0.0)
        neg = sample_negative_destinations(
            self.store, srcs, self._vocabulary, self.rng, self.etype
        )
        n = len(srcs)
        # One encoder pass over [srcs | pos | neg].
        emb = self._encode(list(srcs) + pos + neg)
        e_src, e_pos, e_neg = emb[:n], emb[n : 2 * n], emb[2 * n :]
        pos_scores = (e_src * e_pos).sum(axis=1)
        neg_scores = (e_src * e_neg).sum(axis=1)
        loss, g_pos, g_neg = bpr_loss(pos_scores, neg_scores)

        grad_emb = np.zeros_like(emb)
        grad_emb[:n] = g_pos[:, None] * e_pos + g_neg[:, None] * e_neg
        grad_emb[n : 2 * n] = g_pos[:, None] * e_src
        grad_emb[2 * n :] = g_neg[:, None] * e_src
        self.encoder.zero_grads()
        self.encoder.backward(grad_emb.astype(np.float32))
        self.optimizer.step()
        return LinkBatchResult(
            loss=loss,
            auc_proxy=float((pos_scores > neg_scores).mean()),
        )

    def evaluate_auc(
        self, num_pairs: int = 256
    ) -> float:
        """AUC proxy: P(score(true edge) > score(corrupted edge))."""
        srcs, pos = sample_positive_edges(
            self.store, num_pairs, self.rng, self.etype
        )
        if not srcs:
            return 0.0
        neg = sample_negative_destinations(
            self.store, srcs, self._vocabulary, self.rng, self.etype
        )
        pos_scores = self.score_pairs(srcs, pos)
        neg_scores = self.score_pairs(srcs, neg)
        return float((pos_scores > neg_scores).mean())
