"""The operator layer's three sampling methods (paper §III):

* **node sampling** — draw seed vertices from the whole graph;
* **neighbor sampling** — draw a fixed fan-out of weighted neighbors for
  each vertex of a batch (the per-layer GNN operation, Figures 10a-c);
* **subgraph sampling** — draw a multi-hop subgraph pivoted at each seed
  (Figures 10d-f), including the meta-path variant used on heterogeneous
  graphs.

Samplers accept anything that satisfies :class:`GraphStoreAPI` — a local
store, a baseline, or the distributed client — and return dense NumPy
index tensors ready for the model layers.  A vertex with no out-edges is
padded with itself (a self-loop), the standard mini-batch convention, so
downstream tensors stay rectangular.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.snapshot import RNGLike, coerce_scalar_rng
from repro.core.types import DEFAULT_ETYPE, UNAVAILABLE, GraphStoreAPI
from repro.errors import ConfigurationError
from repro.obs.trace import NULL_SPAN

__all__ = [
    "MiniBatchBlocks",
    "sample_seed_nodes",
    "sample_neighbor_matrix",
    "sample_blocks",
    "sample_blocks_partial",
    "sample_subgraph",
    "sample_metapath",
]


@dataclass(frozen=True)
class MiniBatchBlocks:
    """A sampled multi-hop mini-batch.

    ``levels[0]`` are the seeds (shape ``(B,)``); ``levels[d + 1]`` holds
    the flattened fan-out of ``levels[d]`` (shape
    ``(B * fanouts[0] * ... * fanouts[d],)``).
    """

    levels: List[np.ndarray]
    fanouts: List[int]

    @property
    def batch_size(self) -> int:
        return int(self.levels[0].shape[0])

    @property
    def num_hops(self) -> int:
        return len(self.fanouts)

    def num_sampled(self) -> int:
        """Total vertices materialised across all levels."""
        return int(sum(level.shape[0] for level in self.levels))


def sample_seed_nodes(
    store: GraphStoreAPI,
    k: int,
    rng: RNGLike = None,
    etype: int = DEFAULT_ETYPE,
) -> np.ndarray:
    """Node sampling: ``k`` seeds drawn from the graph's source vertices.

    Uses the store's degree-weighted vertex sampler when it offers one
    (PlatoD2GL's store does); otherwise falls back to uniform choice over
    the sources.
    """
    sampler = getattr(store, "sample_vertices", None)
    if sampler is not None:
        seeds = sampler(k, rng, etype)
    else:
        pool = list(store.sources(etype))
        if not pool:
            seeds = []
        else:
            rng = coerce_scalar_rng(rng) or random
            seeds = [pool[rng.randrange(len(pool))] for _ in range(k)]
    return np.asarray(seeds, dtype=np.int64)


def sample_neighbor_matrix(
    store: GraphStoreAPI,
    srcs: Sequence[int],
    fanout: int,
    rng: RNGLike = None,
    etype: int = DEFAULT_ETYPE,
) -> np.ndarray:
    """Neighbor sampling: a dense ``(len(srcs), fanout)`` index matrix.

    Each row holds ``fanout`` weighted draws (with replacement) from the
    corresponding source's out-neighbors; sources without out-edges are
    padded with themselves.

    The whole frontier goes through the store's *batched* read path
    (:meth:`GraphStoreAPI.sample_neighbors_many`): each distinct source
    resolves its tree once per batch — degree check and draws share the
    lookup — and stores with a snapshot cache answer every row with
    vectorized RNG instead of per-draw descents.
    """
    if fanout < 1:
        raise ConfigurationError(f"fanout must be >= 1, got {fanout}")
    rows = store.sample_neighbors_many(srcs, fanout, rng, etype)
    out = np.empty((len(rows), fanout), dtype=np.int64)
    for i, (src, row) in enumerate(zip(srcs, rows)):
        # Rows may be lists (exact path) or int64 arrays (snapshot path);
        # test emptiness by length, never truthiness.
        out[i] = row if len(row) else [int(src)] * fanout
    return out


def sample_blocks(
    store: GraphStoreAPI,
    seeds: Sequence[int],
    fanouts: Sequence[int],
    rng: RNGLike = None,
    etype: int = DEFAULT_ETYPE,
    tracer=None,
) -> MiniBatchBlocks:
    """Multi-hop expansion for mini-batch training (K-hop sampling).

    Level ``d + 1`` is the flattened neighbor matrix of level ``d``; the
    result feeds :meth:`repro.gnn.models.GraphSAGE.forward` directly.
    Every hop is one batched ``sample_neighbors_many`` call, so the
    whole frontier is drawn with vectorized RNG per hot tree.

    ``tracer`` (optional :class:`~repro.obs.trace.Tracer`) wraps each
    hop in a ``sampler.hop`` span tagged with the hop index, frontier
    size, and fanout — under the distributed client the per-shard RPC
    spans of the hop nest beneath it automatically.

    Stores exposing the frozen fast path (``sample_fanouts``, see
    :meth:`repro.core.topology.DynamicGraphStore.freeze`) answer the
    whole expansion in one call; a ``None`` result — relation not
    frozen, shard stale or degraded — falls back to the per-hop live
    path automatically.  Tracing keeps the per-hop loop so the
    ``sampler.hop`` span tree stays intact.
    """
    if tracer is None:
        frozen_path = getattr(store, "sample_fanouts", None)
        if frozen_path is not None:
            levels = frozen_path(seeds, fanouts, rng, etype)
            if levels is not None:
                return MiniBatchBlocks(levels=levels, fanouts=list(fanouts))
    levels = [np.asarray(list(seeds), dtype=np.int64)]
    for hop, fanout in enumerate(fanouts):
        span = (
            tracer.span(
                "sampler.hop",
                hop=hop,
                frontier=int(levels[-1].shape[0]),
                fanout=fanout,
            )
            if tracer is not None
            else NULL_SPAN
        )
        with span:
            matrix = sample_neighbor_matrix(
                store, levels[-1].tolist(), fanout, rng, etype
            )
        levels.append(matrix.reshape(-1))
    return MiniBatchBlocks(levels=levels, fanouts=list(fanouts))


def sample_blocks_partial(
    store: GraphStoreAPI,
    seeds: Sequence[int],
    fanouts: Sequence[int],
    rng: RNGLike = None,
    etype: int = DEFAULT_ETYPE,
) -> Tuple[Optional[MiniBatchBlocks], List[int], List[int]]:
    """Multi-hop expansion tolerating degraded-read seed rows.

    Under a cluster client with ``degraded_reads=True``, seeds whose
    owning shard has no live replica come back as the
    :data:`~repro.core.types.UNAVAILABLE` marker.  :func:`sample_blocks`
    would silently pad those rows with self-loops — destroying the
    outage signal — so the serving tier uses this variant instead:

    * hop 0 is sampled directly through ``sample_neighbors_many`` and
      each row is identity-tested against ``UNAVAILABLE``;
    * unavailable seeds are *dropped* from the batch and reported in
      ``unavailable_idx`` (positions into ``seeds``) so the caller can
      answer them from a degraded cache;
    * the surviving seeds expand through the normal per-hop path
      (genuinely empty rows still self-loop-pad; a shard that dies
      mid-expansion degrades deeper hops to self-loops — the answer is
      fresh at hop 0, which is what the breaker keys on).

    Returns ``(blocks, served_idx, unavailable_idx)``; ``blocks`` is
    ``None`` when no seed was servable.  ``blocks.levels[0]`` holds only
    the served seeds, in ``served_idx`` order.
    """
    if not fanouts:
        raise ConfigurationError("fanouts must be non-empty")
    seed_list = [int(s) for s in seeds]
    rng = coerce_scalar_rng(rng)
    rows = store.sample_neighbors_many(seed_list, fanouts[0], rng, etype)
    served_idx: List[int] = []
    unavailable_idx: List[int] = []
    for i, row in enumerate(rows):
        if row is UNAVAILABLE:
            unavailable_idx.append(i)
        else:
            served_idx.append(i)
    if not served_idx:
        return None, [], unavailable_idx
    fanout0 = fanouts[0]
    matrix = np.empty((len(served_idx), fanout0), dtype=np.int64)
    for j, i in enumerate(served_idx):
        row = rows[i]
        matrix[j] = row if len(row) else [seed_list[i]] * fanout0
    levels = [
        np.asarray([seed_list[i] for i in served_idx], dtype=np.int64),
        matrix.reshape(-1),
    ]
    for fanout in fanouts[1:]:
        matrix = sample_neighbor_matrix(
            store, levels[-1].tolist(), fanout, rng, etype
        )
        levels.append(matrix.reshape(-1))
    blocks = MiniBatchBlocks(levels=levels, fanouts=list(fanouts))
    return blocks, served_idx, unavailable_idx


def sample_subgraph(
    store: GraphStoreAPI,
    seed: int,
    fanouts: Sequence[int],
    rng: Optional[random.Random] = None,
    etype: int = DEFAULT_ETYPE,
) -> Tuple[Set[int], List[Tuple[int, int]]]:
    """Subgraph sampling pivoted at one seed (paper §III).

    Expands ``fanouts`` hops, deduplicating vertices per frontier, and
    returns ``(vertex_set, edge_list)`` of the traversed subgraph.
    """
    nodes: Set[int] = {int(seed)}
    edges: List[Tuple[int, int]] = []
    frontier = [int(seed)]
    for fanout in fanouts:
        next_frontier: Set[int] = set()
        for src in frontier:
            for dst in store.sample_neighbors(src, fanout, rng, etype):
                edges.append((src, dst))
                if dst not in nodes:
                    nodes.add(dst)
                    next_frontier.add(dst)
        frontier = list(next_frontier)
        if not frontier:
            break
    return nodes, edges


def sample_metapath(
    store: GraphStoreAPI,
    seeds: Sequence[int],
    path: Sequence[Tuple[int, int]],
    rng: Optional[random.Random] = None,
) -> List[np.ndarray]:
    """Meta-path sampling over a heterogeneous graph (paper §VII-C).

    ``path`` is a sequence of ``(etype, fanout)`` hops — e.g. the WeChat
    recommendation pattern User→Live→Live walks ``[(USER_LIVE, f1),
    (LIVE_LIVE, f2)]``.  Returns the flattened frontier per hop, seeds
    first.
    """
    levels = [np.asarray(list(seeds), dtype=np.int64)]
    for etype, fanout in path:
        matrix = sample_neighbor_matrix(
            store, levels[-1].tolist(), fanout, rng, etype
        )
        levels.append(matrix.reshape(-1))
    return levels
