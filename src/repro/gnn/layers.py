"""GNN layers with hand-written forward/backward passes.

Each layer owns its parameters (a dict of named ``float32`` arrays) and
accumulates gradients into a parallel dict so one layer instance can be
applied at several depths of a sampled mini-batch (GraphSAGE reuses the
level-1 layer for both the seeds and the sampled frontier; the gradient
contributions sum).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.errors import ShapeError
from repro.gnn.ops import (
    mean_aggregate,
    mean_aggregate_grad,
    relu,
    relu_grad,
    xavier_init,
)

__all__ = ["Layer", "DenseLayer", "SAGEMeanLayer", "GCNLayer", "GATLayer"]


class Layer:
    """Base class: parameter/gradient bookkeeping."""

    def __init__(self) -> None:
        self.params: Dict[str, np.ndarray] = {}
        self.grads: Dict[str, np.ndarray] = {}

    def zero_grads(self) -> None:
        """Reset accumulated gradients to zero."""
        for name, p in self.params.items():
            self.grads[name] = np.zeros_like(p)

    def _add_param(self, name: str, value: np.ndarray) -> None:
        self.params[name] = value
        self.grads[name] = np.zeros_like(value)


class DenseLayer(Layer):
    """Affine map ``y = x W + b`` with optional ReLU."""

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        rng: np.random.Generator,
        activation: bool = True,
    ) -> None:
        super().__init__()
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.activation = activation
        self._add_param("W", xavier_init(in_dim, out_dim, rng))
        self._add_param("b", np.zeros(out_dim, dtype=np.float32))
        self._cache: List[Tuple[np.ndarray, np.ndarray]] = []

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Apply the layer; caches inputs for the backward pass."""
        if x.shape[-1] != self.in_dim:
            raise ShapeError(
                f"DenseLayer expects last dim {self.in_dim}, got {x.shape}"
            )
        z = x @ self.params["W"] + self.params["b"]
        self._cache.append((x, z))
        return relu(z) if self.activation else z

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Consume the most recent cached forward; returns grad wrt input."""
        x, z = self._cache.pop()
        gz = relu_grad(z, grad_out) if self.activation else grad_out
        self.grads["W"] += x.reshape(-1, self.in_dim).T @ gz.reshape(
            -1, self.out_dim
        )
        self.grads["b"] += gz.reshape(-1, self.out_dim).sum(axis=0)
        return gz @ self.params["W"].T


class SAGEMeanLayer(Layer):
    """GraphSAGE-mean convolution (Hamilton et al. [13]).

    ``h' = ReLU( h_self W_self  +  mean(h_neigh) W_neigh + b )``

    This instantiates the paper's Equation 1 with ``f`` = identity
    message, ``⊕`` = mean, and ``g`` = affine + ReLU combine.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        rng: np.random.Generator,
        activation: bool = True,
    ) -> None:
        super().__init__()
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.activation = activation
        self._add_param("W_self", xavier_init(in_dim, out_dim, rng))
        self._add_param("W_neigh", xavier_init(in_dim, out_dim, rng))
        self._add_param("b", np.zeros(out_dim, dtype=np.float32))
        self._cache: List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []

    def forward(self, h_self: np.ndarray, h_neigh: np.ndarray) -> np.ndarray:
        """``h_self``: (B, D); ``h_neigh``: (B, F, D) → (B, out_dim)."""
        if h_self.ndim != 2 or h_neigh.ndim != 3:
            raise ShapeError(
                f"SAGEMeanLayer expects (B, D) and (B, F, D); got "
                f"{h_self.shape} and {h_neigh.shape}"
            )
        if h_self.shape[0] != h_neigh.shape[0]:
            raise ShapeError(
                f"batch mismatch: {h_self.shape[0]} vs {h_neigh.shape[0]}"
            )
        if h_self.shape[1] != self.in_dim or h_neigh.shape[2] != self.in_dim:
            raise ShapeError(
                f"SAGEMeanLayer expects feature dim {self.in_dim}; got "
                f"{h_self.shape} and {h_neigh.shape}"
            )
        agg = mean_aggregate(h_neigh)
        z = (
            h_self @ self.params["W_self"]
            + agg @ self.params["W_neigh"]
            + self.params["b"]
        )
        self._cache.append((h_self, h_neigh, agg, z))
        return relu(z) if self.activation else z

    def backward(
        self, grad_out: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Returns ``(grad_h_self, grad_h_neigh)`` for the latest forward."""
        h_self, h_neigh, agg, z = self._cache.pop()
        gz = relu_grad(z, grad_out) if self.activation else grad_out
        self.grads["W_self"] += h_self.T @ gz
        self.grads["W_neigh"] += agg.T @ gz
        self.grads["b"] += gz.sum(axis=0)
        grad_self = gz @ self.params["W_self"].T
        grad_agg = gz @ self.params["W_neigh"].T
        grad_neigh = mean_aggregate_grad(grad_agg, h_neigh.shape[1])
        return grad_self, grad_neigh


class GCNLayer(Layer):
    """A GCN-style convolution on sampled neighborhoods.

    ``h' = ReLU( mean([h_self ; h_neigh]) W + b )`` — self and sampled
    neighbors share one transform, the symmetric-normalised adjacency
    being approximated by the sampled mean with a self-loop.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        rng: np.random.Generator,
        activation: bool = True,
    ) -> None:
        super().__init__()
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.activation = activation
        self._add_param("W", xavier_init(in_dim, out_dim, rng))
        self._add_param("b", np.zeros(out_dim, dtype=np.float32))
        self._cache: List[Tuple[np.ndarray, np.ndarray, int]] = []

    def forward(self, h_self: np.ndarray, h_neigh: np.ndarray) -> np.ndarray:
        """Same shapes as :class:`SAGEMeanLayer`."""
        if h_self.ndim != 2 or h_neigh.ndim != 3:
            raise ShapeError(
                f"GCNLayer expects (B, D) and (B, F, D); got "
                f"{h_self.shape} and {h_neigh.shape}"
            )
        if h_self.shape[0] != h_neigh.shape[0]:
            raise ShapeError(
                f"batch mismatch: {h_self.shape[0]} vs {h_neigh.shape[0]}"
            )
        if h_self.shape[1] != self.in_dim or h_neigh.shape[2] != self.in_dim:
            raise ShapeError(
                f"GCNLayer expects feature dim {self.in_dim}; got "
                f"{h_self.shape} and {h_neigh.shape}"
            )
        fanout = h_neigh.shape[1]
        pooled = (h_self + h_neigh.sum(axis=1)) / (fanout + 1)
        z = pooled @ self.params["W"] + self.params["b"]
        self._cache.append((pooled, z, fanout))
        return relu(z) if self.activation else z

    def backward(
        self, grad_out: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Returns ``(grad_h_self, grad_h_neigh)``."""
        pooled, z, fanout = self._cache.pop()
        gz = relu_grad(z, grad_out) if self.activation else grad_out
        self.grads["W"] += pooled.T @ gz
        self.grads["b"] += gz.sum(axis=0)
        grad_pooled = gz @ self.params["W"].T / (fanout + 1)
        grad_self = grad_pooled
        grad_neigh = np.repeat(grad_pooled[:, None, :], fanout, axis=1)
        return grad_self, grad_neigh


class GATLayer(Layer):
    """Graph attention convolution (Veličković et al. [30]) over sampled
    neighborhoods.

    Scores every sampled neighbor (and the node itself, a self-loop)
    with the standard additive attention

        u_j = LeakyReLU( a_l · (W h_self) + a_r · (W h_j) )

    softmaxes the scores, and outputs the attention-weighted sum of the
    transformed vectors.  Single-head; heads are a width-axis concern
    the model layer can stack.
    """

    #: Negative slope of the attention LeakyReLU (paper value).
    LEAKY_SLOPE = 0.2

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        rng: np.random.Generator,
        activation: bool = True,
    ) -> None:
        super().__init__()
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.activation = activation
        self._add_param("W", xavier_init(in_dim, out_dim, rng))
        self._add_param(
            "a_l", xavier_init(out_dim, 1, rng).reshape(out_dim)
        )
        self._add_param(
            "a_r", xavier_init(out_dim, 1, rng).reshape(out_dim)
        )
        self._cache: List[tuple] = []

    def forward(self, h_self: np.ndarray, h_neigh: np.ndarray) -> np.ndarray:
        """``h_self``: (B, D); ``h_neigh``: (B, F, D) → (B, out_dim)."""
        if h_self.ndim != 2 or h_neigh.ndim != 3:
            raise ShapeError(
                f"GATLayer expects (B, D) and (B, F, D); got "
                f"{h_self.shape} and {h_neigh.shape}"
            )
        if h_self.shape[0] != h_neigh.shape[0]:
            raise ShapeError(
                f"batch mismatch: {h_self.shape[0]} vs {h_neigh.shape[0]}"
            )
        if h_self.shape[1] != self.in_dim or h_neigh.shape[2] != self.in_dim:
            raise ShapeError(
                f"GATLayer expects feature dim {self.in_dim}; got "
                f"{h_self.shape} and {h_neigh.shape}"
            )
        W = self.params["W"]
        a_l, a_r = self.params["a_l"], self.params["a_r"]
        z_self = h_self @ W                       # (B, O)
        z_neigh = h_neigh @ W                     # (B, F, O)
        # Augment with the self-loop at slot 0.
        z_all = np.concatenate([z_self[:, None, :], z_neigh], axis=1)
        left = z_self @ a_l                       # (B,)
        right = z_all @ a_r                       # (B, F+1)
        u = left[:, None] + right                 # (B, F+1)
        l = np.where(u > 0, u, self.LEAKY_SLOPE * u)
        l = l - l.max(axis=1, keepdims=True)
        exp = np.exp(l)
        alpha = exp / exp.sum(axis=1, keepdims=True)   # (B, F+1)
        out_pre = np.einsum("bf,bfo->bo", alpha, z_all)
        self._cache.append((h_self, h_neigh, z_self, z_all, u, alpha, out_pre))
        return relu(out_pre) if self.activation else out_pre

    def backward(
        self, grad_out: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Returns ``(grad_h_self, grad_h_neigh)`` for the latest forward."""
        h_self, h_neigh, z_self, z_all, u, alpha, out_pre = self._cache.pop()
        W = self.params["W"]
        a_l, a_r = self.params["a_l"], self.params["a_r"]
        g = relu_grad(out_pre, grad_out) if self.activation else grad_out

        # out_pre = Σ_j α_j z_j
        grad_alpha = np.einsum("bo,bfo->bf", g, z_all)       # (B, F+1)
        grad_z_all = alpha[:, :, None] * g[:, None, :]       # (B, F+1, O)
        # softmax backward
        dot = (grad_alpha * alpha).sum(axis=1, keepdims=True)
        grad_l = alpha * (grad_alpha - dot)
        # leaky backward
        grad_u = grad_l * np.where(u > 0, 1.0, self.LEAKY_SLOPE)
        # u_j = a_l·z_self + a_r·z_j
        self.grads["a_l"] += np.einsum(
            "bf,bo->o", grad_u, z_self
        )
        self.grads["a_r"] += np.einsum("bf,bfo->o", grad_u, z_all)
        grad_z_all += grad_u[:, :, None] * a_r[None, None, :]
        grad_z_self = grad_u.sum(axis=1)[:, None] * a_l[None, :]
        # split the augmented axis back into self (slot 0) and neighbors
        grad_z_self = grad_z_self + grad_z_all[:, 0, :]
        grad_z_neigh = grad_z_all[:, 1:, :]
        # z = h W
        self.grads["W"] += h_self.T @ grad_z_self
        self.grads["W"] += np.einsum("bfd,bfo->do", h_neigh, grad_z_neigh)
        grad_h_self = grad_z_self @ W.T
        grad_h_neigh = grad_z_neigh @ W.T
        return grad_h_self, grad_h_neigh
