"""Mini-batch GNN models over sampled blocks.

A model consumes the per-level feature matrices of a
:class:`~repro.gnn.samplers.MiniBatchBlocks` expansion and produces seed
logits.  The computation is the standard sampled message-passing pyramid:
layer ``l`` maps the embeddings of every level ``d`` from the embeddings
of levels ``d`` and ``d + 1``, so after ``L`` layers only the seeds
remain — exactly the paper's Figure 1 with ``K``-hop sampling.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple, Type, Union

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.gnn.layers import GATLayer, GCNLayer, Layer, SAGEMeanLayer

__all__ = ["SampledGNN", "GraphSAGE", "GCN", "GAT"]


class SampledGNN:
    """An ``L``-layer GNN over ``L``-hop sampled blocks.

    Parameters
    ----------
    in_dim / hidden_dim / num_classes:
        Feature, hidden, and output widths.
    num_layers:
        Depth ``L``; the blocks must carry ``L`` fan-outs.
    conv:
        Layer class (``SAGEMeanLayer`` or ``GCNLayer``).
    """

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        num_classes: int,
        num_layers: int,
        rng: np.random.Generator,
        conv: Type[Layer] = SAGEMeanLayer,
    ) -> None:
        if num_layers < 1:
            raise ConfigurationError(
                f"num_layers must be >= 1, got {num_layers}"
            )
        self.num_layers = num_layers
        self.layers: List[Layer] = []
        for l in range(num_layers):
            dim_in = in_dim if l == 0 else hidden_dim
            dim_out = num_classes if l == num_layers - 1 else hidden_dim
            activation = l != num_layers - 1
            self.layers.append(conv(dim_in, dim_out, rng, activation))

    # ------------------------------------------------------------------
    def forward(
        self, feats: Sequence[np.ndarray], fanouts: Sequence[int]
    ) -> np.ndarray:
        """Seed logits from per-level features.

        ``feats[d]`` holds the features of block level ``d``; level sizes
        must telescope by the fan-outs.
        """
        if len(feats) != self.num_layers + 1:
            raise ShapeError(
                f"{self.num_layers}-layer model needs {self.num_layers + 1} "
                f"feature levels, got {len(feats)}"
            )
        if len(fanouts) != self.num_layers:
            raise ShapeError(
                f"{self.num_layers}-layer model needs {self.num_layers} "
                f"fanouts, got {len(fanouts)}"
            )
        h = [np.asarray(f, dtype=np.float32) for f in feats]
        for d in range(self.num_layers):
            if h[d + 1].shape[0] != h[d].shape[0] * fanouts[d]:
                raise ShapeError(
                    f"level {d + 1} has {h[d + 1].shape[0]} rows, expected "
                    f"{h[d].shape[0]} * {fanouts[d]}"
                )
        for layer in self.layers:
            new_h = []
            for d in range(len(h) - 1):
                n_d = h[d].shape[0]
                neigh = h[d + 1].reshape(n_d, fanouts[d], -1)
                new_h.append(layer.forward(h[d], neigh))
            h = new_h
        return h[0]

    def backward(self, grad_logits: np.ndarray) -> None:
        """Accumulate parameter gradients from seed-logit gradients."""
        grads: List[np.ndarray] = [grad_logits]
        for layer in reversed(self.layers):
            depths = len(grads)
            new_grads: List[np.ndarray] = [None] * (depths + 1)  # type: ignore[list-item]
            # The layer's caches are LIFO over d = 0..depths-1.
            for d in reversed(range(depths)):
                grad_self, grad_neigh = layer.backward(grads[d])
                if new_grads[d] is None:
                    new_grads[d] = grad_self
                else:
                    new_grads[d] = new_grads[d] + grad_self
                flat = grad_neigh.reshape(-1, grad_neigh.shape[-1])
                if new_grads[d + 1] is None:
                    new_grads[d + 1] = flat
                else:
                    new_grads[d + 1] = new_grads[d + 1] + flat
            grads = new_grads

    # ------------------------------------------------------------------
    def zero_grads(self) -> None:
        """Reset every layer's gradient accumulators."""
        for layer in self.layers:
            layer.zero_grads()

    def parameters(self) -> Iterator[Tuple[str, np.ndarray, np.ndarray]]:
        """Yield ``(qualified_name, param, grad)`` triples."""
        for i, layer in enumerate(self.layers):
            for name, param in layer.params.items():
                yield f"layer{i}.{name}", param, layer.grads[name]

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for _, p, _ in self.parameters())


class GraphSAGE(SampledGNN):
    """GraphSAGE-mean (the model family of the paper's Figure 1)."""

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        num_classes: int,
        num_layers: int = 2,
        rng: Union[np.random.Generator, None] = None,
    ) -> None:
        super().__init__(
            in_dim,
            hidden_dim,
            num_classes,
            num_layers,
            rng if rng is not None else np.random.default_rng(0),
            conv=SAGEMeanLayer,
        )


class GCN(SampledGNN):
    """Sampled GCN variant (shared self/neighbor transform)."""

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        num_classes: int,
        num_layers: int = 2,
        rng: Union[np.random.Generator, None] = None,
    ) -> None:
        super().__init__(
            in_dim,
            hidden_dim,
            num_classes,
            num_layers,
            rng if rng is not None else np.random.default_rng(0),
            conv=GCNLayer,
        )


class GAT(SampledGNN):
    """Graph attention network over sampled neighborhoods ([30])."""

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        num_classes: int,
        num_layers: int = 2,
        rng: Union[np.random.Generator, None] = None,
    ) -> None:
        super().__init__(
            in_dim,
            hidden_dim,
            num_classes,
            num_layers,
            rng if rng is not None else np.random.default_rng(0),
            conv=GATLayer,
        )
