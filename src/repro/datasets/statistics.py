"""Dataset statistics: the paper's Table III, recomputed on generated data."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.datasets.presets import DATASET_SPECS, GraphData

__all__ = ["published_table3_rows", "format_table3", "degree_histogram"]


def published_table3_rows() -> List[Dict[str, object]]:
    """The paper's Table III at full (published) size."""
    rows: List[Dict[str, object]] = []
    for dataset, specs in DATASET_SPECS.items():
        for spec in specs:
            rows.append(
                {
                    "dataset": dataset,
                    "relation": spec.name,
                    "num_src": spec.num_src,
                    "num_dst": spec.num_dst,
                    "num_edges": spec.num_edges,
                    "density": spec.density,
                }
            )
    return rows


def _fmt_count(n: int) -> str:
    """Render counts the way Table III does (K/M/B suffixes)."""
    if n >= 1_000_000_000:
        return f"{n / 1_000_000_000:.2f}B"
    if n >= 1_000_000:
        return f"{n / 1_000_000:.1f}M"
    if n >= 1_000:
        return f"{n / 1_000:.1f}K"
    return str(n)


def format_table3(rows: Sequence[Dict[str, object]]) -> str:
    """ASCII rendering of Table III-shaped rows."""
    header = (
        f"{'Dataset':<10} {'Relation (S-T)':<18} {'#S':>10} {'#T':>10} "
        f"{'#edges':>10} {'Density':>9}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['dataset']:<10} {row['relation']:<18} "
            f"{_fmt_count(int(row['num_src'])):>10} "
            f"{_fmt_count(int(row['num_dst'])):>10} "
            f"{_fmt_count(int(row['num_edges'])):>10} "
            f"{float(row['density']):>9.2f}"
        )
    return "\n".join(lines)


def degree_histogram(data: GraphData, num_buckets: int = 16) -> Dict[int, int]:
    """Log2-bucketed out-degree histogram of a generated dataset —
    evidence the generator's skew matches a power law."""
    from collections import Counter, defaultdict

    degrees: Counter = Counter()
    for rel in data.relations:
        degrees.update(int(s) for s in rel.src)
    buckets: Dict[int, int] = defaultdict(int)
    for deg in degrees.values():
        b = 0
        while (1 << (b + 1)) <= deg and b < num_buckets - 1:
            b += 1
        buckets[b] += 1
    return dict(sorted(buckets.items()))
