"""Scaled instances of the paper's evaluation datasets (Table III).

The paper evaluates on OGBN [2], Reddit [13], and the production WeChat
graph (2.1 B nodes, 63.9 B edges across four relations).  None of those
fit a laptop-scale pure-Python run — and the WeChat data is proprietary —
so each preset generates a *scaled* instance that preserves what the
experiments actually depend on (see DESIGN.md):

* the relation structure (WeChat keeps its four relations, with the same
  source/target node types);
* the per-relation **density** (avg out-degree), which fixes samtree
  height, block counts and per-op costs;
* the power-law endpoint skew of real interaction graphs.

``scale`` divides the published node counts; edge counts follow from the
preserved density, so a preset at any scale reports the same "Density"
column as the paper's Table III.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.datasets.synthetic import power_law_edges
from repro.errors import ConfigurationError

__all__ = [
    "RelationSpec",
    "RelationData",
    "GraphData",
    "DATASET_SPECS",
    "ogbn_scaled",
    "reddit_scaled",
    "wechat_scaled",
    "load_dataset",
]


@dataclass(frozen=True)
class RelationSpec:
    """One relation of Table III at full (published) size."""

    name: str
    etype: int
    src_type: int
    dst_type: int
    num_src: int
    num_dst: int
    num_edges: int

    @property
    def density(self) -> float:
        """Average out-degree (the paper's Density column)."""
        return self.num_edges / self.num_src

    def scaled(self, scale: float, min_nodes: int = 64) -> "RelationSpec":
        """Shrink node counts by ``scale`` keeping the density fixed.

        The target pool is floored at several times the density so a
        scaled source can actually accumulate the published number of
        *distinct* neighbors — adjacency length (samtree height, CSTable
        length, block count) is what the experiments stress, and it must
        not collapse just because the node universe shrank.
        """
        if scale < 1:
            raise ConfigurationError(f"scale must be >= 1, got {scale}")
        num_src = max(min_nodes, int(self.num_src / scale))
        # The floor is kept low (2x density) so asymmetric relations
        # (User-Live: 78 users per live room) keep their hub-shaped
        # reverse direction after scaling.
        num_dst = max(
            min_nodes, int(self.num_dst / scale), int(2 * self.density)
        )
        num_edges = max(num_src, int(round(num_src * self.density)))
        return RelationSpec(
            self.name,
            self.etype,
            self.src_type,
            self.dst_type,
            num_src,
            num_dst,
            num_edges,
        )


@dataclass
class RelationData:
    """Generated edges of one relation."""

    spec: RelationSpec
    src: np.ndarray
    dst: np.ndarray
    weight: np.ndarray

    @property
    def num_edges(self) -> int:
        return int(self.src.shape[0])

    def edge_tuples(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate ``(src, dst, weight)`` (python ints/floats)."""
        for s, d, w in zip(self.src, self.dst, self.weight):
            yield int(s), int(d), float(w)


@dataclass
class GraphData:
    """A generated (possibly heterogeneous) dataset."""

    name: str
    relations: List[RelationData] = field(default_factory=list)

    @property
    def num_edges(self) -> int:
        return sum(r.num_edges for r in self.relations)

    def relation(self, name: str) -> RelationData:
        """Look a relation up by name."""
        for r in self.relations:
            if r.spec.name == name:
                return r
        raise ConfigurationError(
            f"dataset {self.name!r} has no relation {name!r}"
        )

    def edge_ops(self) -> Iterator[Tuple[int, int, float, int]]:
        """Iterate every edge as ``(src, dst, weight, etype)``."""
        for rel in self.relations:
            etype = rel.spec.etype
            for s, d, w in rel.edge_tuples():
                yield s, d, w, etype

    def edge_columns(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The whole dataset as four parallel columns.

        Returns ``(src, dst, weight, etype)`` arrays spanning every
        relation — the shape the bulk ingestion tier consumes directly
        (``store.bulk_load(*data.edge_columns())``), with no per-edge
        Python objects in between.
        """
        if not self.relations:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64),
                np.empty(0, dtype=np.int16),
            )
        src = np.concatenate([r.src for r in self.relations])
        dst = np.concatenate([r.dst for r in self.relations])
        weight = np.concatenate([r.weight for r in self.relations])
        etype = np.concatenate(
            [
                np.full(r.num_edges, r.spec.etype, dtype=np.int16)
                for r in self.relations
            ]
        )
        return (
            src.astype(np.int64, copy=False),
            dst.astype(np.int64, copy=False),
            weight.astype(np.float64, copy=False),
            etype,
        )

    def all_vertices(self) -> List[int]:
        """Distinct vertex IDs appearing as any endpoint."""
        seen = set()
        for rel in self.relations:
            seen.update(int(v) for v in rel.src)
            seen.update(int(v) for v in rel.dst)
        return sorted(seen)

    def forward_relations(self) -> List["RelationData"]:
        """Relations as listed in Table III (reversed twins excluded)."""
        return [r for r in self.relations if not r.spec.name.startswith("rev:")]

    def stats_rows(self, include_reverse: bool = False) -> List[Dict[str, object]]:
        """Rows in the shape of the paper's Table III."""
        relations = (
            self.relations if include_reverse else self.forward_relations()
        )
        return [
            {
                "dataset": self.name,
                "relation": r.spec.name,
                "num_src": r.spec.num_src,
                "num_dst": r.spec.num_dst,
                "num_edges": r.num_edges,
                "density": r.num_edges / r.spec.num_src,
            }
            for r in relations
        ]


# ---------------------------------------------------------------------------
# Published (full-size) dataset specs — the paper's Table III verbatim.
# Node types: 0 generic / product / post; 1 community; for WeChat:
# 0 user, 1 live-room, 2 attribute, 3 tag.
# ---------------------------------------------------------------------------
DATASET_SPECS: Dict[str, List[RelationSpec]] = {
    "OGBN": [
        RelationSpec(
            "Product-Product", 0, 0, 0, 2_400_000, 2_400_000, 61_900_000
        ),
    ],
    "Reddit": [
        RelationSpec(
            "Post-Community", 0, 0, 1, 233_000, 233_000, 114_000_000
        ),
    ],
    "WeChat": [
        # User-Live targets the 13.1M live rooms (the paper's node census:
        # 1.02B users + 0.97B attr nodes + ~13-15M lives/tags ≈ 2.1B).
        # Reversed (the datasets are bi-directed), each live room carries
        # a hub adjacency of ~4.8K distinct users — the production regime
        # the dynamic-update experiments stress.
        RelationSpec(
            "User-Live", 0, 0, 1, 1_020_000_000, 13_100_000, 63_300_000_000
        ),
        RelationSpec(
            "User-Attr", 1, 0, 2, 970_000_000, 970_000_000, 1_900_000_000
        ),
        RelationSpec("Live-Live", 2, 1, 1, 13_100_000, 13_100_000, 650_000_000),
        RelationSpec("Live-Tag", 3, 1, 3, 15_100_000, 15_100_000, 30_100_000),
    ],
}

#: Edge-type offset of a relation's reversed twin (bi-directed storage).
REVERSE_ETYPE_OFFSET = 8


def _generate(
    name: str,
    scale: float,
    seed: int,
    min_nodes: int,
    bidirected: bool,
) -> GraphData:
    specs = DATASET_SPECS.get(name)
    if specs is None:
        raise ConfigurationError(
            f"unknown dataset {name!r}; known: {sorted(DATASET_SPECS)}"
        )
    rng = np.random.default_rng(seed)
    data = GraphData(name=name)
    for spec in specs:
        scaled = spec.scaled(scale, min_nodes)
        src, dst, weight = power_law_edges(
            scaled.num_src,
            scaled.num_dst,
            scaled.num_edges,
            rng,
            src_type=scaled.src_type,
            dst_type=scaled.dst_type,
        )
        data.relations.append(RelationData(scaled, src, dst, weight))
        if bidirected:
            # "Note that all the datasets in our experiments are
            # bi-directed" (paper §VII-A): store the reversed edges as a
            # twin relation.  Reversal flips the shape — a relation with
            # many sources and few hot targets (User-Live) becomes one
            # with few hub sources and very long adjacencies.
            rev_spec = RelationSpec(
                f"rev:{scaled.name}",
                scaled.etype + REVERSE_ETYPE_OFFSET,
                scaled.dst_type,
                scaled.src_type,
                scaled.num_dst,
                scaled.num_src,
                scaled.num_edges,
            )
            data.relations.append(RelationData(rev_spec, dst, src, weight))
    return data


def ogbn_scaled(
    scale: float = 1000.0, seed: int = 7, bidirected: bool = True
) -> GraphData:
    """OGBN Product-Product at ``1/scale`` of the published node count
    (density 25.8 preserved)."""
    return _generate("OGBN", scale, seed, min_nodes=64, bidirected=bidirected)


def reddit_scaled(
    scale: float = 1000.0, seed: int = 7, bidirected: bool = True
) -> GraphData:
    """Reddit Post-Community at ``1/scale`` (density 489.3 preserved —
    the high-density extreme of Table III)."""
    return _generate(
        "Reddit", scale, seed, min_nodes=64, bidirected=bidirected
    )


def wechat_scaled(
    scale: float = 1_000_000.0, seed: int = 7, bidirected: bool = True
) -> GraphData:
    """The four-relation WeChat production graph at ``1/scale``.

    Keeps User-Live as the dominant relation (density 62) alongside the
    sparse User-Attr / Live-Tag relations, as in Table III; bi-directed
    storage adds the reversed twins, including the hub-shaped
    rev:User-Live relation (~4.8K distinct users per live room at full
    scale).
    """
    return _generate(
        "WeChat", scale, seed, min_nodes=64, bidirected=bidirected
    )


_LOADERS = {
    "OGBN": ogbn_scaled,
    "Reddit": reddit_scaled,
    "WeChat": wechat_scaled,
}


def load_dataset(
    name: str, scale: Optional[float] = None, seed: int = 7
) -> GraphData:
    """Load a preset by name with its default (or a custom) scale."""
    loader = _LOADERS.get(name)
    if loader is None:
        raise ConfigurationError(
            f"unknown dataset {name!r}; known: {sorted(_LOADERS)}"
        )
    if scale is None:
        return loader(seed=seed)
    return loader(scale=scale, seed=seed)
