"""Synthetic graph generation with power-law degree structure.

Real interaction graphs — OGBN products, Reddit, and especially the
WeChat user-live graph — have heavy-tailed degree distributions; samtree
shape, block counts, and update costs all depend on that skew.  The
generator draws edge endpoints from Zipf-ranked vertex popularity so the
scaled datasets stress the same structural regime the paper's do.

Vertex IDs are offset per node type (the high bytes encode the type),
which both keeps heterogeneous ID spaces disjoint and mirrors the
production layout where CP-IDs prefix compression earns its keep.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "TYPE_ID_STRIDE",
    "type_offset",
    "zipf_probabilities",
    "power_law_edges",
    "powerlaw_degrees",
    "zipf_request_sources",
]

#: ID-space stride between node types: type ``t`` owns
#: ``[t * STRIDE, (t + 1) * STRIDE)``.  2^40 leaves the top 3 bytes of a
#: 64-bit ID shared within a type — the prefix CP-IDs compresses.
TYPE_ID_STRIDE = 1 << 40


def type_offset(node_type: int) -> int:
    """Base vertex ID of a node type's ID range."""
    if node_type < 0:
        raise ConfigurationError(f"node_type must be >= 0, got {node_type}")
    return node_type * TYPE_ID_STRIDE


def zipf_probabilities(n: int, exponent: float) -> np.ndarray:
    """Zipf-ranked probability vector ``p_i ∝ (i + 1)^-exponent``."""
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    if exponent < 0:
        raise ConfigurationError(f"exponent must be >= 0, got {exponent}")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    p = ranks ** -exponent
    return p / p.sum()


def power_law_edges(
    num_src: int,
    num_dst: int,
    num_edges: int,
    rng: np.random.Generator,
    src_exponent: float = 0.8,
    dst_exponent: float = 0.8,
    src_type: int = 0,
    dst_type: int = 0,
    min_weight: float = 0.1,
    max_weight: float = 1.0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Draw ``num_edges`` weighted edges with Zipf-skewed endpoints.

    Returns ``(src, dst, weight)`` arrays.  Endpoints repeat (a repeated
    pair is an in-place weight update when replayed into a store, exactly
    the dynamic-update mix the paper's workloads contain).  Popularity is
    shuffled so vertex rank is independent of vertex ID — otherwise low
    IDs would be systematically hot and share samtree leaves.
    """
    if num_src < 1 or num_dst < 1:
        raise ConfigurationError(
            f"need at least one src and dst vertex, got {num_src}/{num_dst}"
        )
    if num_edges < 0:
        raise ConfigurationError(f"num_edges must be >= 0, got {num_edges}")
    src_perm = rng.permutation(num_src)
    dst_perm = rng.permutation(num_dst)
    src_ranks = rng.choice(
        num_src, size=num_edges, p=zipf_probabilities(num_src, src_exponent)
    )
    dst_ranks = rng.choice(
        num_dst, size=num_edges, p=zipf_probabilities(num_dst, dst_exponent)
    )
    src = src_perm[src_ranks].astype(np.int64) + type_offset(src_type)
    dst = dst_perm[dst_ranks].astype(np.int64) + type_offset(dst_type)
    weights = rng.uniform(min_weight, max_weight, size=num_edges).astype(
        np.float64
    )
    return src, dst, weights


def zipf_request_sources(
    num_sources: int,
    num_requests: int,
    exponent: float,
    rng: np.random.Generator,
    src_type: int = 0,
    shuffle: bool = True,
) -> np.ndarray:
    """Draw a Zipf-skewed *serving* traffic trace: ``num_requests``
    source-vertex read requests over a universe of ``num_sources``.

    This is the read-side twin of :func:`power_law_edges` — production
    sampling traffic concentrates on a tiny hot set (rank-1 share grows
    with ``exponent``: ~3% at s=0.6, ~11% at s=0.99, ~68% at s=1.4 for a
    10k universe), which is exactly the regime the hot-key serving layer
    (replicas, TinyLFU admission, coalescing) is built for.  With
    ``shuffle`` (default) popularity rank is decorrelated from vertex ID
    via a seeded permutation, so hot keys land on arbitrary shards under
    hash partitioning; pass ``shuffle=False`` to make vertex ``i`` the
    rank-``i`` key (deterministic hot set, handy in tests).
    """
    if num_sources < 1:
        raise ConfigurationError(
            f"num_sources must be >= 1, got {num_sources}"
        )
    if num_requests < 0:
        raise ConfigurationError(
            f"num_requests must be >= 0, got {num_requests}"
        )
    ranks = rng.choice(
        num_sources,
        size=num_requests,
        p=zipf_probabilities(num_sources, exponent),
    )
    if shuffle:
        perm = rng.permutation(num_sources)
        ranks = perm[ranks]
    return ranks.astype(np.int64) + type_offset(src_type)


def powerlaw_degrees(
    num_sources: int,
    hub_degree: int,
    exponent: float = 1.4,
    min_degree: int = 16,
) -> np.ndarray:
    """Rank-aligned power-law out-degrees: vertex ``r`` (the rank-``r``
    key) gets ``max(min_degree, hub_degree / (r + 1)^exponent)`` edges.

    Popularity and degree are *correlated* in real serving graphs — the
    celebrity account that absorbs the most sampling requests is also
    the one with millions of edges, so its flattened snapshot exceeds
    any per-shard cache budget and every read of it pays an O(degree)
    rebuild on the owning shard.  Pairing this with
    :func:`zipf_request_sources` (``shuffle=False``) reproduces that
    regime: the hot head is uncacheable (what read replicas spread), the
    mid-tier is cacheable-under-pressure (what TinyLFU admission
    protects), and the tail is cheap.
    """
    if num_sources < 1:
        raise ConfigurationError(
            f"num_sources must be >= 1, got {num_sources}"
        )
    if hub_degree < 1:
        raise ConfigurationError(
            f"hub_degree must be >= 1, got {hub_degree}"
        )
    if min_degree < 1:
        raise ConfigurationError(
            f"min_degree must be >= 1, got {min_degree}"
        )
    if exponent < 0:
        raise ConfigurationError(
            f"exponent must be >= 0, got {exponent}"
        )
    ranks = np.arange(num_sources, dtype=np.float64)
    degrees = hub_degree / (ranks + 1.0) ** exponent
    return np.maximum(min_degree, degrees).astype(np.int64)
