"""Synthetic graph generation with power-law degree structure.

Real interaction graphs — OGBN products, Reddit, and especially the
WeChat user-live graph — have heavy-tailed degree distributions; samtree
shape, block counts, and update costs all depend on that skew.  The
generator draws edge endpoints from Zipf-ranked vertex popularity so the
scaled datasets stress the same structural regime the paper's do.

Vertex IDs are offset per node type (the high bytes encode the type),
which both keeps heterogeneous ID spaces disjoint and mirrors the
production layout where CP-IDs prefix compression earns its keep.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "TYPE_ID_STRIDE",
    "type_offset",
    "zipf_probabilities",
    "power_law_edges",
]

#: ID-space stride between node types: type ``t`` owns
#: ``[t * STRIDE, (t + 1) * STRIDE)``.  2^40 leaves the top 3 bytes of a
#: 64-bit ID shared within a type — the prefix CP-IDs compresses.
TYPE_ID_STRIDE = 1 << 40


def type_offset(node_type: int) -> int:
    """Base vertex ID of a node type's ID range."""
    if node_type < 0:
        raise ConfigurationError(f"node_type must be >= 0, got {node_type}")
    return node_type * TYPE_ID_STRIDE


def zipf_probabilities(n: int, exponent: float) -> np.ndarray:
    """Zipf-ranked probability vector ``p_i ∝ (i + 1)^-exponent``."""
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    if exponent < 0:
        raise ConfigurationError(f"exponent must be >= 0, got {exponent}")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    p = ranks ** -exponent
    return p / p.sum()


def power_law_edges(
    num_src: int,
    num_dst: int,
    num_edges: int,
    rng: np.random.Generator,
    src_exponent: float = 0.8,
    dst_exponent: float = 0.8,
    src_type: int = 0,
    dst_type: int = 0,
    min_weight: float = 0.1,
    max_weight: float = 1.0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Draw ``num_edges`` weighted edges with Zipf-skewed endpoints.

    Returns ``(src, dst, weight)`` arrays.  Endpoints repeat (a repeated
    pair is an in-place weight update when replayed into a store, exactly
    the dynamic-update mix the paper's workloads contain).  Popularity is
    shuffled so vertex rank is independent of vertex ID — otherwise low
    IDs would be systematically hot and share samtree leaves.
    """
    if num_src < 1 or num_dst < 1:
        raise ConfigurationError(
            f"need at least one src and dst vertex, got {num_src}/{num_dst}"
        )
    if num_edges < 0:
        raise ConfigurationError(f"num_edges must be >= 0, got {num_edges}")
    src_perm = rng.permutation(num_src)
    dst_perm = rng.permutation(num_dst)
    src_ranks = rng.choice(
        num_src, size=num_edges, p=zipf_probabilities(num_src, src_exponent)
    )
    dst_ranks = rng.choice(
        num_dst, size=num_edges, p=zipf_probabilities(num_dst, dst_exponent)
    )
    src = src_perm[src_ranks].astype(np.int64) + type_offset(src_type)
    dst = dst_perm[dst_ranks].astype(np.int64) + type_offset(dst_type)
    weights = rng.uniform(min_weight, max_weight, size=num_edges).astype(
        np.float64
    )
    return src, dst, weights
