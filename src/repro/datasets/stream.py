"""Dynamic edge streams: the update workloads of Figures 8, 9 and 11.

Two phases mirror the paper's evaluation:

* **build** — replay every dataset edge as an insert batch ("inserting
  edges of a graph in a dynamic manner", Figure 8);
* **churn** — a steady-state mix of inserts / in-place updates /
  deletions against the live edge set, the regime of Figure 9 and of the
  production recommendation workload (user interest drift means weights
  are re-written constantly, which is why in-place update cost dominates
  Table II).
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.core.ingest import EdgeBatch
from repro.core.types import EdgeOp
from repro.datasets.presets import GraphData
from repro.errors import ConfigurationError

__all__ = ["EdgeStream", "RequestStream"]


class RequestStream:
    """Seeded Zipf-skewed *sampling request* batches — the read-side
    counterpart of :class:`EdgeStream`.

    Serving benchmarks, the hot-key tests, and ``repro obs --skew`` all
    need the same thing: a reproducible power-law trace of
    ``sample_neighbors_many`` frontiers over a known source universe.
    ``exponent`` is the Zipf skew ``s`` (0.6 ≈ mild, 0.99 ≈ classic web,
    1.4 ≈ celebrity-dominated); each batch is an ``int64`` array ready to
    hand to the client.  Batches repeat sources *within* a batch at high
    skew, which is what exercises request coalescing.
    """

    def __init__(
        self,
        num_sources: int,
        exponent: float = 0.99,
        seed: int = 0,
        src_type: int = 0,
        shuffle: bool = True,
    ) -> None:
        if num_sources < 1:
            raise ConfigurationError(
                f"num_sources must be >= 1, got {num_sources}"
            )
        if exponent < 0:
            raise ConfigurationError(
                f"exponent must be >= 0, got {exponent}"
            )
        self.num_sources = num_sources
        self.exponent = exponent
        self.src_type = src_type
        self.shuffle = shuffle
        self._rng = np.random.default_rng(seed)
        # One probability vector + one rank->id permutation per stream,
        # so every batch draws from the same popularity law.
        from repro.datasets.synthetic import type_offset, zipf_probabilities

        self._probs = zipf_probabilities(num_sources, exponent)
        self._perm = (
            self._rng.permutation(num_sources)
            if shuffle
            else np.arange(num_sources)
        )
        self._offset = type_offset(src_type)

    def batch(self, batch_size: int) -> np.ndarray:
        """One frontier of ``batch_size`` source IDs."""
        if batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        ranks = self._rng.choice(
            self.num_sources, size=batch_size, p=self._probs
        )
        return self._perm[ranks].astype(np.int64) + self._offset

    def batches(
        self, batch_size: int, num_batches: int
    ) -> Iterator[np.ndarray]:
        """``num_batches`` frontiers of ``batch_size`` sources each."""
        if num_batches < 0:
            raise ConfigurationError(
                f"num_batches must be >= 0, got {num_batches}"
            )
        for _ in range(num_batches):
            yield self.batch(batch_size)

    def hot_sources(self, n: int) -> np.ndarray:
        """The ``n`` most probable source IDs, hottest first (ground
        truth for tracker-accuracy tests)."""
        if n < 0:
            raise ConfigurationError(f"n must be >= 0, got {n}")
        top_ranks = np.argsort(-self._probs, kind="stable")[:n]
        return self._perm[top_ranks].astype(np.int64) + self._offset


class EdgeStream:
    """Batch generator over a dataset's edges plus synthetic churn."""

    def __init__(self, data: GraphData, seed: int = 0) -> None:
        self.data = data
        self._rng = random.Random(seed)
        # Live-edge tracking for valid update/delete targets.
        self._live: List[Tuple[int, int, int]] = []
        self._live_set: set = set()
        # Columnar build batches defer live-set materialisation: the
        # arrays are stashed here and only expanded into per-edge keys
        # the first time churn actually needs targets.
        self._pending: List[Tuple[int, object, object]] = []

    # ------------------------------------------------------------------
    def build_batches(self, batch_size: int) -> Iterator[List[EdgeOp]]:
        """Insert batches covering every edge of the dataset, in order."""
        if batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        batch: List[EdgeOp] = []
        for src, dst, weight, etype in self.data.edge_ops():
            batch.append(EdgeOp.insert(src, dst, weight, etype))
            self._track_insert(src, dst, etype)
            if len(batch) >= batch_size:
                yield batch
                batch = []
        if batch:
            yield batch

    def build_batches_columnar(
        self, batch_size: int
    ) -> Iterator[EdgeBatch]:
        """Columnar insert batches covering every edge, in order.

        Each batch is a contiguous slice of one relation's arrays — no
        per-edge :class:`EdgeOp` objects are ever materialised, which is
        what lets a bulk load stream millions of edges through the
        columnar ingest RPCs.  Live-edge tracking (for a later churn
        phase) is deferred until churn actually needs targets.
        """
        if batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        for rel in self.data.relations:
            etype = rel.spec.etype
            n = rel.num_edges
            for a in range(0, n, batch_size):
                b = min(a + batch_size, n)
                self._pending.append((etype, rel.src[a:b], rel.dst[a:b]))
                yield EdgeBatch.inserts(
                    rel.src[a:b], rel.dst[a:b], rel.weight[a:b], etype
                )

    def churn_batches_columnar(
        self,
        batch_size: int,
        num_batches: int,
        mix: Tuple[float, float, float] = (0.5, 0.3, 0.2),
        id_space: Optional[int] = None,
    ) -> Iterator[EdgeBatch]:
        """Columnar form of :meth:`churn_batches` (same op sequence)."""
        for ops in self.churn_batches(batch_size, num_batches, mix, id_space):
            yield EdgeBatch.from_edge_ops(ops)

    def _track_insert(self, src: int, dst: int, etype: int) -> None:
        key = (etype, src, dst)
        if key not in self._live_set:
            self._live_set.add(key)
            self._live.append(key)

    def _ensure_live(self) -> None:
        """Materialise deferred columnar inserts into the live set."""
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        for etype, src_arr, dst_arr in pending:
            for s, d in zip(src_arr, dst_arr):
                self._track_insert(int(s), int(d), etype)

    def _pop_live(self) -> Optional[Tuple[int, int, int]]:
        self._ensure_live()
        rng = self._rng
        while self._live:
            i = rng.randrange(len(self._live))
            key = self._live[i]
            self._live[i] = self._live[-1]
            self._live.pop()
            if key in self._live_set:
                self._live_set.discard(key)
                return key
        return None

    def _pick_live(self) -> Optional[Tuple[int, int, int]]:
        self._ensure_live()
        rng = self._rng
        while self._live:
            i = rng.randrange(len(self._live))
            key = self._live[i]
            if key in self._live_set:
                return key
            # Lazily compact entries removed by deletion.
            self._live[i] = self._live[-1]
            self._live.pop()
        return None

    # ------------------------------------------------------------------
    def churn_batches(
        self,
        batch_size: int,
        num_batches: int,
        mix: Tuple[float, float, float] = (0.5, 0.3, 0.2),
        id_space: Optional[int] = None,
    ) -> Iterator[List[EdgeOp]]:
        """Mixed dynamic-update batches.

        ``mix = (insert, update, delete)`` fractions.  Inserts target
        fresh (src, dst) pairs drawn from the dataset's vertex ranges;
        updates and deletes target currently live edges (falling back to
        an insert when the live set is empty).
        """
        if batch_size < 1 or num_batches < 0:
            raise ConfigurationError(
                f"invalid batch_size={batch_size} / num_batches={num_batches}"
            )
        p_insert, p_update, p_delete = mix
        total = p_insert + p_update + p_delete
        if total <= 0:
            raise ConfigurationError(f"mix must have positive mass: {mix}")
        p_insert, p_update = p_insert / total, p_update / total
        self._ensure_live()
        rng = self._rng
        specs = [r.spec for r in self.data.relations]
        for _ in range(num_batches):
            batch: List[EdgeOp] = []
            for _ in range(batch_size):
                r = rng.random()
                if r < p_insert or not self._live_set:
                    spec = specs[rng.randrange(len(specs))]
                    from repro.datasets.synthetic import type_offset

                    src = type_offset(spec.src_type) + rng.randrange(
                        spec.num_src
                    )
                    dst = type_offset(spec.dst_type) + rng.randrange(
                        id_space or spec.num_dst
                    )
                    weight = 0.1 + 0.9 * rng.random()
                    batch.append(EdgeOp.insert(src, dst, weight, spec.etype))
                    self._track_insert(src, dst, spec.etype)
                elif r < p_insert + p_update:
                    key = self._pick_live()
                    if key is None:
                        continue
                    etype, src, dst = key
                    batch.append(
                        EdgeOp.update(src, dst, 0.1 + 0.9 * rng.random(), etype)
                    )
                else:
                    key = self._pop_live()
                    if key is None:
                        continue
                    etype, src, dst = key
                    batch.append(EdgeOp.delete(src, dst, etype))
            yield batch

    # ------------------------------------------------------------------
    @property
    def num_live_edges(self) -> int:
        """Distinct (etype, src, dst) triples currently live."""
        self._ensure_live()
        return len(self._live_set)
