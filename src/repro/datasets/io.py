"""Edge-list I/O: load real graphs into the store, export generated ones.

Downstream users have their own graphs; the exchange format is the
universal tab/space-separated edge list::

    # src  dst  [weight]  [etype]
    17     42   0.75      0
    17     43   1.0

* :func:`read_edge_list` streams parsed edges from a file;
* :func:`load_edge_list` pours a file straight into any store;
* :func:`write_edge_list` exports a store (or a GraphData) back out,
  so generated datasets round-trip to standard tooling.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, Optional, TextIO, Tuple, Union

from repro.core.types import DEFAULT_ETYPE, GraphStoreAPI
from repro.errors import ConfigurationError

__all__ = ["read_edge_list", "load_edge_list", "write_edge_list"]

_PathOrFile = Union[str, Path, TextIO]


def _open_read(source: _PathOrFile):
    if isinstance(source, (str, Path)):
        return open(source, "r", encoding="utf-8"), True
    return source, False


def _open_write(target: _PathOrFile):
    if isinstance(target, (str, Path)):
        return open(target, "w", encoding="utf-8"), True
    return target, False


def read_edge_list(
    source: _PathOrFile,
    default_weight: float = 1.0,
    default_etype: int = DEFAULT_ETYPE,
) -> Iterator[Tuple[int, int, float, int]]:
    """Yield ``(src, dst, weight, etype)`` from an edge-list file.

    Lines starting with ``#`` (or blank) are skipped; fields split on
    any whitespace; the third and fourth columns are optional.
    Malformed lines raise :class:`ConfigurationError` with the line
    number — silent data loss is worse than a hard stop.
    """
    handle, own = _open_read(source)
    try:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            if len(fields) < 2 or len(fields) > 4:
                raise ConfigurationError(
                    f"line {lineno}: expected 2-4 fields, got {len(fields)}"
                )
            try:
                src = int(fields[0])
                dst = int(fields[1])
                weight = float(fields[2]) if len(fields) > 2 else default_weight
                etype = int(fields[3]) if len(fields) > 3 else default_etype
            except ValueError as exc:
                raise ConfigurationError(
                    f"line {lineno}: {exc}"
                ) from None
            yield src, dst, weight, etype
    finally:
        if own:
            handle.close()


def load_edge_list(
    store: GraphStoreAPI,
    source: _PathOrFile,
    default_weight: float = 1.0,
    bidirected: bool = False,
    reverse_etype_offset: int = 8,
    bulk: bool = True,
    chunk_size: int = 262_144,
) -> int:
    """Insert every edge of a file into ``store``; returns ops applied.

    ``bidirected=True`` also inserts each edge reversed under
    ``etype + reverse_etype_offset``, matching the preset datasets'
    storage convention.

    By default parsed rows accumulate into columnar chunks of
    ``chunk_size`` and flush through :meth:`store.bulk_load
    <repro.core.types.GraphStoreAPI.bulk_load>` — the samtree store
    builds each touched tree bottom-up in O(n).  ``bulk=False`` keeps
    the historical one-``add_edge``-per-row path (identical final
    state; upserts resolve last-wins either way).
    """
    if not bulk:
        ops = 0
        for src, dst, weight, etype in read_edge_list(source, default_weight):
            store.add_edge(src, dst, weight, etype)
            ops += 1
            if bidirected:
                store.add_edge(dst, src, weight, etype + reverse_etype_offset)
                ops += 1
        return ops

    from repro.core.ingest import EdgeBatch

    ops = 0
    srcs: list = []
    dsts: list = []
    weights: list = []
    etypes: list = []

    def _flush() -> None:
        nonlocal ops
        if not srcs:
            return
        store.bulk_load(EdgeBatch.inserts(srcs, dsts, weights, etypes))
        ops += len(srcs)
        srcs.clear(); dsts.clear(); weights.clear(); etypes.clear()

    for src, dst, weight, etype in read_edge_list(source, default_weight):
        srcs.append(src); dsts.append(dst)
        weights.append(weight); etypes.append(etype)
        if bidirected:
            srcs.append(dst); dsts.append(src)
            weights.append(weight)
            etypes.append(etype + reverse_etype_offset)
        if len(srcs) >= chunk_size:
            _flush()
    _flush()
    return ops


def write_edge_list(
    store: GraphStoreAPI,
    target: _PathOrFile,
    etypes: Optional[Tuple[int, ...]] = None,
    include_header: bool = True,
) -> int:
    """Export a store's edges as ``src dst weight etype`` lines.

    Returns the number of edges written.  Relations default to whatever
    the store reports via ``etypes()`` (or just etype 0).
    """
    if etypes is None:
        getter = getattr(store, "etypes", None)
        etypes = tuple(getter()) if getter is not None else (DEFAULT_ETYPE,)
    handle, own = _open_write(target)
    try:
        if include_header:
            handle.write("# src\tdst\tweight\tetype\n")
        written = 0
        for etype in etypes:
            for src in sorted(store.sources(etype)):
                for dst, weight in sorted(store.neighbors(src, etype)):
                    handle.write(f"{src}\t{dst}\t{weight!r}\t{etype}\n")
                    written += 1
        return written
    finally:
        if own:
            handle.close()
