"""Datasets: scaled instances of the paper's Table III graphs, the
power-law generator, dynamic edge streams, and statistics helpers.
"""

from repro.datasets.io import load_edge_list, read_edge_list, write_edge_list
from repro.datasets.presets import (
    DATASET_SPECS,
    GraphData,
    RelationData,
    RelationSpec,
    load_dataset,
    ogbn_scaled,
    reddit_scaled,
    wechat_scaled,
)
from repro.datasets.statistics import (
    degree_histogram,
    format_table3,
    published_table3_rows,
)
from repro.datasets.stream import EdgeStream, RequestStream
from repro.datasets.synthetic import (
    TYPE_ID_STRIDE,
    power_law_edges,
    type_offset,
    zipf_probabilities,
    powerlaw_degrees,
    zipf_request_sources,
)

__all__ = [
    "load_edge_list",
    "read_edge_list",
    "write_edge_list",
    "DATASET_SPECS",
    "GraphData",
    "RelationData",
    "RelationSpec",
    "load_dataset",
    "ogbn_scaled",
    "reddit_scaled",
    "wechat_scaled",
    "degree_histogram",
    "format_table3",
    "published_table3_rows",
    "EdgeStream",
    "RequestStream",
    "TYPE_ID_STRIDE",
    "power_law_edges",
    "type_offset",
    "zipf_probabilities",
    "powerlaw_degrees",
    "zipf_request_sources",
]
