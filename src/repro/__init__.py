"""PlatoD2GL reproduction: an efficient dynamic deep graph learning system
for GNN training on billion-scale graphs (ICDE 2024).

The package re-implements, in pure Python, every system the paper
describes:

* :mod:`repro.core` — the samtree topology store, FSTable/FTS sampling,
  CSTable/ITS, α-Split, CP-IDs compression, and the memory model;
* :mod:`repro.storage` — the cuckoo directory, block KV store, and the
  attribute (feature) store;
* :mod:`repro.baselines` — faithful PlatoGL and AliGraph reimplementations;
* :mod:`repro.concurrency` — the PALM-style batch latch-free executor;
* :mod:`repro.distributed` — hash-by-source partitioning, graph servers,
  and the routing client;
* :mod:`repro.gnn` — NumPy message passing, GraphSAGE/GCN models, and the
  node / neighbor / subgraph samplers of the operator layer;
* :mod:`repro.datasets` — synthetic OGBN / Reddit / WeChat-scaled graphs
  and dynamic edge streams;
* :mod:`repro.bench` — the harness that regenerates every table and
  figure of the paper's evaluation.

Quickstart::

    from repro import DynamicGraphStore, SamtreeConfig

    store = DynamicGraphStore(SamtreeConfig(capacity=256))
    store.add_edge(1, 2, weight=0.1)
    store.add_edge(1, 3, weight=0.4)
    samples = store.sample_neighbors(1, k=50)
"""

from repro.core import (
    CSTable,
    DynamicGraphStore,
    Edge,
    EdgeOp,
    FSTable,
    GraphStoreAPI,
    MemoryModel,
    OpKind,
    OpStats,
    Samtree,
    SamtreeConfig,
    SnapshotCache,
    TreeSnapshot,
    humanize_bytes,
)
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "CSTable",
    "DynamicGraphStore",
    "Edge",
    "EdgeOp",
    "FSTable",
    "GraphStoreAPI",
    "MemoryModel",
    "OpKind",
    "OpStats",
    "Samtree",
    "SamtreeConfig",
    "SnapshotCache",
    "TreeSnapshot",
    "humanize_bytes",
    "ReproError",
    "__version__",
]
