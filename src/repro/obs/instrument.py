"""Register the legacy ``*Stats`` holders into a shared registry.

The repo grew seven disconnected stat holders across three PRs —
``OpStats`` (samtree structural updates), ``ServerStats`` (per-shard
endpoints), ``NetworkStats`` (simulated traffic), ``RetryStats`` (client
backoff), ``FaultStats`` (injected chaos), ``IngestStats`` (columnar
writes), and ``SnapshotCacheStats`` (read-path cache).  Each keeps its
public fields and plain-attribute increments — the hot paths are
untouched — while this module registers **views** over those fields into
one :class:`~repro.obs.registry.MetricsRegistry`, so exporters, the
``repro obs`` report, and registry snapshot-diffs see every layer under
one naming scheme (``repro_<subsystem>_<field>``; DESIGN.md §11).

Everything here is duck-typed (``getattr`` probes, no imports from
``repro.distributed``), so the dependency arrow stays
``distributed → obs`` and never cycles back.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Optional, Tuple

from repro.obs.registry import MetricsRegistry

__all__ = [
    "numeric_fields",
    "register_stats",
    "register_store",
    "register_server",
    "register_cluster",
]


def numeric_fields(obj) -> List[str]:
    """Public int/float fields of a stats holder (dataclass or slots)."""
    if dataclasses.is_dataclass(obj):
        names: Iterable[str] = (f.name for f in dataclasses.fields(obj))
    else:
        names = getattr(type(obj), "__slots__", ()) or vars(obj).keys()
    return [
        name
        for name in names
        if not name.startswith("_")
        and isinstance(getattr(obj, name, None), (int, float))
        and not isinstance(getattr(obj, name), bool)
    ]


def register_stats(
    registry: MetricsRegistry,
    prefix: str,
    obj,
    gauges: Tuple[str, ...] = (),
    fields: Optional[Iterable[str]] = None,
    **labels,
) -> List[str]:
    """Register one live view per numeric field of ``obj``.

    Field ``f`` becomes metric ``{prefix}_{f}`` (counter unless listed
    in ``gauges``); returns the registered metric names.
    """
    names: List[str] = []
    for field in fields if fields is not None else numeric_fields(obj):
        name = f"{prefix}_{field}"
        kind = "gauge" if field in gauges else "counter"
        registry.register_view(
            name,
            lambda o=obj, f=field: float(getattr(o, f)),
            help=f"{prefix.replace('_', ' ')}: {field}",
            kind=kind,
            **labels,
        )
        names.append(name)
    return names


# ---------------------------------------------------------------------------
# composite holders
# ---------------------------------------------------------------------------
def register_store(registry: MetricsRegistry, store, **labels) -> None:
    """Register a topology store's holders: ``OpStats``
    (``repro_samtree_*``), ``SnapshotCacheStats``
    (``repro_snapshot_cache_*`` + hit-rate gauge), and the cumulative
    ``IngestStats`` (``repro_ingest_*``) when the store keeps one, and
    the frozen read path's ``FrozenStats`` (``repro_frozen_*``)."""
    op_stats = getattr(store, "stats", None)
    if op_stats is not None and numeric_fields(op_stats):
        register_stats(registry, "repro_samtree", op_stats, **labels)
        registry.register_view(
            "repro_samtree_leaf_fraction",
            lambda s=op_stats: float(s.leaf_fraction),
            help="Fraction of structural updates touching only leaves",
            kind="gauge",
            **labels,
        )
    cache = getattr(store, "snapshot_cache", None)
    cache_stats = getattr(cache, "stats", None)
    if cache_stats is not None:
        register_stats(registry, "repro_snapshot_cache", cache_stats, **labels)
        registry.register_view(
            "repro_snapshot_cache_hit_rate",
            lambda s=cache_stats: float(s.hit_rate),
            help="Snapshot cache hit rate",
            kind="gauge",
            **labels,
        )
    ingest = getattr(store, "ingest_stats", None)
    if ingest is not None:
        register_stats(registry, "repro_ingest", ingest, **labels)
    frozen = getattr(store, "frozen_stats", None)
    if frozen is not None:
        register_stats(registry, "repro_frozen", frozen, **labels)


def _store_view(server, *path):
    """Read ``server.store.<path>`` live, answering 0.0 while the
    replica is crashed — :meth:`GraphServer.recover` swaps the store
    object, so views must resolve through the server each time."""

    def read() -> float:
        obj = getattr(server, "store", None)
        for attr in path:
            if obj is None:
                return 0.0
            obj = getattr(obj, attr, None)
        return float(obj) if obj is not None else 0.0

    return read


def register_server(registry: MetricsRegistry, server, **labels) -> None:
    """Register one graph server: ``ServerStats`` (``repro_server_*``),
    its WAL's append ledger, and its store's holders (resolved live
    through ``server.store``, so crash/recover cycles stay visible)."""
    register_stats(registry, "repro_server", server.stats, **labels)
    wal = getattr(server, "wal", None)
    if wal is not None:
        register_stats(
            registry,
            "repro_wal",
            wal,
            fields=("records_appended", "bytes_appended"),
            **labels,
        )
    store = server.store
    if store is None:
        return
    op_stats = getattr(store, "stats", None)
    if op_stats is not None and numeric_fields(op_stats):
        for field in numeric_fields(op_stats):
            registry.register_view(
                f"repro_samtree_{field}",
                _store_view(server, "stats", field),
                help=f"samtree structural updates: {field}",
                **labels,
            )
        registry.register_view(
            "repro_samtree_leaf_fraction",
            _store_view(server, "stats", "leaf_fraction"),
            help="Fraction of structural updates touching only leaves",
            kind="gauge",
            **labels,
        )
    cache_stats = getattr(getattr(store, "snapshot_cache", None), "stats", None)
    if cache_stats is not None:
        for field in numeric_fields(cache_stats):
            registry.register_view(
                f"repro_snapshot_cache_{field}",
                _store_view(server, "snapshot_cache", "stats", field),
                help=f"snapshot cache: {field}",
                **labels,
            )
        registry.register_view(
            "repro_snapshot_cache_hit_rate",
            _store_view(server, "snapshot_cache", "stats", "hit_rate"),
            help="Snapshot cache hit rate",
            kind="gauge",
            **labels,
        )
    if getattr(store, "ingest_stats", None) is not None:
        for field in numeric_fields(store.ingest_stats):
            registry.register_view(
                f"repro_ingest_{field}",
                _store_view(server, "ingest_stats", field),
                help=f"columnar ingest: {field}",
                **labels,
            )
    if getattr(store, "frozen_stats", None) is not None:
        for field in numeric_fields(store.frozen_stats):
            registry.register_view(
                f"repro_frozen_{field}",
                _store_view(server, "frozen_stats", field),
                help=f"frozen read path: {field}",
                **labels,
            )


def register_cluster(registry: MetricsRegistry, cluster) -> None:
    """Register every holder of a :class:`LocalCluster`: network, fault,
    and retry stats once, plus per-replica server/store/WAL views
    labeled ``{shard, replica}``."""
    network = getattr(cluster, "network", None)
    if network is not None:
        register_stats(
            registry,
            "repro_network",
            network.stats,
            gauges=("last_send_seconds",),
        )
    injector = getattr(cluster, "fault_injector", None)
    if injector is not None:
        register_stats(registry, "repro_faults", injector.stats)
    retry = getattr(cluster, "retry", None)
    if retry is not None:
        register_stats(registry, "repro_retry", retry.stats)
    serving = getattr(getattr(cluster, "client", None), "serving_stats", None)
    if serving is not None:
        register_stats(registry, "repro_cache", serving)
        registry.register_view(
            "repro_cache_coalesce_rate",
            lambda s=serving: float(s.coalesce_rate),
            help="Fraction of batched sample sources served by coalescing",
            kind="gauge",
        )
    tracker = getattr(cluster, "hot_tracker", None)
    if tracker is not None:
        register_stats(registry, "repro_hotset", tracker.stats)
        registry.register_view(
            "repro_hotset_tracked",
            lambda t=tracker: float(len(t)),
            help="Sources currently tracked by the hot-set sketch",
            kind="gauge",
        )
    for shard, group in enumerate(cluster.replica_groups):
        for r, server in enumerate(group):
            register_server(
                registry, server, shard=str(shard), replica=str(r)
            )
