"""Structured request tracing: span trees over wall or simulated clocks.

A :class:`Tracer` follows one request across layers — a
:class:`~repro.distributed.client.GraphClient` batch call, its per-shard
failover reads, every retry attempt, the
:class:`~repro.distributed.server.GraphServer` endpoint, and the samtree
descent under it — producing a tree of :class:`Span` records linked by
``trace_id`` / ``span_id`` / ``parent_id``.  Because the whole cluster
runs in-process, context propagation is a per-thread span stack: a span
opened while another is active becomes its child automatically, which is
exactly the client→RPC→server nesting the acceptance test asserts.

Cost control, the two production levers:

* **head-based sampling** — the keep/drop decision is made once at the
  *root* span from a seeded RNG (``sample_rate``); dropped traces turn
  every nested span into a no-op, so an unsampled request costs one RNG
  draw;
* **ring buffers** — finished traces land in a bounded ring
  (``max_traces``) and those slower than ``slow_threshold_seconds`` in
  a separate slow-trace ring, so memory is O(rings), never O(requests).

The clock is injectable: pass ``clock=network.now`` to measure spans on
the cluster's *simulated* clock (transfer costs, latency spikes, and
retry backoff all advance it), or leave the default
``time.perf_counter`` for wall time (the training loop's choice).
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque
from typing import Callable, Dict, Iterator, List, Optional

from repro.errors import ConfigurationError

__all__ = ["Span", "Tracer", "NULL_SPAN"]


class Span:
    """One timed operation inside a trace tree.

    Context manager: ``with tracer.span("rpc", shard=3) as sp: ...``
    closes the span on exit, recording an ``error`` status (exception
    type in the tags) when the body raises.
    """

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "tags",
        "start",
        "end",
        "status",
        "children",
        "_tracer",
    )

    def __init__(
        self,
        tracer: "Tracer",
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        tags: Dict[str, object],
    ) -> None:
        self._tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.tags = tags
        self.start = tracer.clock()
        self.end: Optional[float] = None
        self.status = "ok"
        self.children: List["Span"] = []

    # -- context management ------------------------------------------------
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.status = "error"
            self.tags.setdefault("error", exc_type.__name__)
        self._tracer._finish(self)
        return False  # never swallow

    # -- readout -----------------------------------------------------------
    @property
    def duration(self) -> float:
        """Seconds from start to end (0.0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def set_tag(self, key: str, value) -> "Span":
        self.tags[key] = value
        return self

    def walk(self) -> Iterator["Span"]:
        """Depth-first iteration over this span and its subtree."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> List["Span"]:
        """Every span in the subtree with the given name."""
        return [s for s in self.walk() if s.name == name]

    def to_dict(self) -> Dict[str, object]:
        """Nested JSON-ready form of the subtree."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "tags": dict(self.tags),
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "status": self.status,
            "children": [c.to_dict() for c in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Span({self.name!r}, trace={self.trace_id}, id={self.span_id}, "
            f"parent={self.parent_id}, {self.duration * 1e3:.3f}ms, "
            f"{self.status})"
        )


class _NullSpan:
    """No-op span for unsampled traces (every method is free)."""

    __slots__ = ("_tracer",)

    def __init__(self, tracer: Optional["Tracer"] = None) -> None:
        self._tracer = tracer

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._tracer is not None:
            self._tracer._pop_unsampled()
        return False

    def set_tag(self, key: str, value) -> "_NullSpan":
        return self

    @property
    def duration(self) -> float:
        return 0.0


#: Shared inert span for "tracer is None" call sites.
NULL_SPAN = _NullSpan()

#: Stack sentinel marking an unsampled (dropped) trace in progress.
_UNSAMPLED = object()


class Tracer:
    """Produces span trees with head-based sampling and slow-trace rings.

    Parameters
    ----------
    clock:
        Time source (seconds).  Defaults to ``time.perf_counter``; pass
        ``NetworkModel.now`` to trace on the simulated cluster clock.
    sample_rate:
        Head-sampling probability in ``[0, 1]`` (decided at the root).
    seed:
        Seeds the sampling RNG — the same seed over the same request
        sequence keeps the same traces.
    max_traces:
        Ring capacity of finished root traces.
    slow_threshold_seconds:
        Roots at least this slow also land in the slow-trace ring.
    max_slow_traces:
        Ring capacity of the slow-trace log.
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry`; when
        given, the tracer reports ``repro_trace_*`` counters into it.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        sample_rate: float = 1.0,
        seed: int = 0,
        max_traces: int = 256,
        slow_threshold_seconds: float = 0.0,
        max_slow_traces: int = 64,
        registry=None,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ConfigurationError(
                f"sample_rate must be in [0, 1], got {sample_rate}"
            )
        if max_traces < 1 or max_slow_traces < 1:
            raise ConfigurationError("trace ring capacities must be >= 1")
        if slow_threshold_seconds < 0:
            raise ConfigurationError("slow_threshold_seconds must be >= 0")
        self.clock = clock if clock is not None else time.perf_counter
        self.sample_rate = sample_rate
        self.slow_threshold_seconds = slow_threshold_seconds
        self.finished: "deque[Span]" = deque(maxlen=max_traces)
        self.slow: "deque[Span]" = deque(maxlen=max_slow_traces)
        self._rng = random.Random(seed)
        self._local = threading.local()
        self._id_lock = threading.Lock()
        self._next_trace = 0
        self._next_span = 0
        if registry is not None:
            self._c_started = registry.counter(
                "repro_trace_roots_total", "Root spans opened (pre-sampling)"
            )
            self._c_sampled = registry.counter(
                "repro_trace_sampled_total", "Root spans kept by head sampling"
            )
            self._c_spans = registry.counter(
                "repro_trace_spans_total", "Spans finished inside kept traces"
            )
            self._c_slow = registry.counter(
                "repro_trace_slow_total", "Traces past the slow threshold"
            )
        else:
            self._c_started = self._c_sampled = None
            self._c_spans = self._c_slow = None

    # ------------------------------------------------------------------
    # span stack
    # ------------------------------------------------------------------
    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Optional[Span]:
        """The innermost open (sampled) span of this thread, if any."""
        stack = self._stack()
        if stack and stack[-1] is not _UNSAMPLED:
            return stack[-1]
        return None

    def _ids(self) -> int:
        with self._id_lock:
            self._next_span += 1
            return self._next_span

    def span(self, name: str, **tags):
        """Open a span: a child of the current span, or a new trace root.

        Returns a context manager — a real :class:`Span` when the trace
        is sampled, a no-op otherwise.
        """
        stack = self._stack()
        if stack:
            parent = stack[-1]
            if parent is _UNSAMPLED:
                stack.append(_UNSAMPLED)
                return _NullSpan(self)
            span = Span(
                self, parent.trace_id, self._ids(), parent.span_id, name, tags
            )
            parent.children.append(span)
            stack.append(span)
            return span
        # Root: the head-based sampling decision.
        if self._c_started is not None:
            self._c_started.inc()
        if self.sample_rate < 1.0 and self._rng.random() >= self.sample_rate:
            stack.append(_UNSAMPLED)
            return _NullSpan(self)
        if self._c_sampled is not None:
            self._c_sampled.inc()
        with self._id_lock:
            self._next_trace += 1
            trace_id = self._next_trace
        span = Span(self, trace_id, self._ids(), None, name, tags)
        stack.append(span)
        return span

    def _pop_unsampled(self) -> None:
        stack = self._stack()
        if stack and stack[-1] is _UNSAMPLED:
            stack.pop()

    def _finish(self, span: Span) -> None:
        span.end = self.clock()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        if self._c_spans is not None:
            self._c_spans.inc()
        if span.parent_id is None:  # root: archive the whole tree
            self.finished.append(span)
            if span.duration >= self.slow_threshold_seconds:
                self.slow.append(span)
                if self._c_slow is not None:
                    self._c_slow.inc()

    # ------------------------------------------------------------------
    # readout
    # ------------------------------------------------------------------
    def top_slow(self, k: int = 5) -> List[Span]:
        """The ``k`` slowest traces currently in the slow ring."""
        return sorted(self.slow, key=lambda s: s.duration, reverse=True)[:k]

    def traces(self) -> List[Span]:
        """Finished root spans, oldest first."""
        return list(self.finished)

    def to_chrome_trace(self, spans: Optional[List[Span]] = None) -> Dict:
        """Export finished span trees as chrome://tracing JSON.

        Each finished span becomes a complete (``"ph": "X"``) event with
        microsecond timestamps; the trace id doubles as the thread id so
        every request renders as its own lane in the flamegraph UI
        (``chrome://tracing`` or https://ui.perfetto.dev).  Tags land in
        ``args`` (non-JSON-native values are ``repr``'d), alongside the
        span/parent ids so the tree is reconstructible.  ``spans``
        defaults to every archived root; pass e.g. ``tracer.top_slow(5)``
        to export just the slow ring.
        """
        events: List[Dict] = []
        roots = self.traces() if spans is None else spans
        for root in roots:
            for span in root.walk():
                if span.end is None:
                    continue
                args: Dict[str, object] = {
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "status": span.status,
                }
                for key, value in span.tags.items():
                    if isinstance(value, (bool, int, float, str)) or (
                        value is None
                    ):
                        args[key] = value
                    else:
                        args[key] = repr(value)
                events.append(
                    {
                        "name": span.name,
                        "cat": "repro",
                        "ph": "X",
                        "ts": span.start * 1e6,
                        "dur": span.duration * 1e6,
                        "pid": 0,
                        "tid": span.trace_id,
                        "args": args,
                    }
                )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def reset(self) -> None:
        """Drop archived traces (open spans are unaffected)."""
        self.finished.clear()
        self.slow.clear()
