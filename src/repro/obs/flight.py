"""Flight recorder: bounded per-category event rings on the simulated clock.

A :class:`FlightRecorder` is the black box every layer of the serving
stack writes into: cheap structured events (a timestamp, a kind, a
small dict of scalar fields) appended into **preallocated, bounded ring
buffers**, one per category.  Recording never allocates beyond the
per-event tuple, never advances the simulated clock, and never raises
on the hot path — so a recorded run executes the *same* seeded
simulation as a plain one, which is the property deterministic incident
replay (:mod:`repro.obs.replay`) rests on.

Categories (fixed at construction; see :data:`DEFAULT_CATEGORIES`):

* ``admission`` — request admits and sheds, with the shed cause;
* ``breaker``   — per-shard circuit-breaker transitions;
* ``fault``     — injected faults, policy swaps, crashes, recoveries;
* ``retry``     — transient failures, exhaustions, deadline aborts;
* ``wal``       — WAL appends and checkpoints;
* ``replica``   — hot-replica drops;
* ``migration`` — rebalance cutovers;
* ``alert``     — alert lifecycle transitions (via ``observe_alerts``);
* ``chaos``     — scenario-level chaos events with their seeds.

The hook points all follow the same zero-cost-when-detached idiom::

    rec = self.recorder
    if rec is not None:
        rec.record("fault", "crash", t=now, shard=shard)

so an unattached recorder costs one attribute read per hook site —
gated at <=2% end-to-end overhead by ``bench_flight_recorder.py``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError

__all__ = ["DEFAULT_CATEGORIES", "EventRing", "FlightRecorder"]

#: The event categories every recorder carries by default (ISSUE 10's
#: taxonomy); :class:`FlightRecorder` accepts per-category capacity
#: overrides but not ad-hoc categories — a typo'd category in a hook
#: must fail loudly, not open a silent ring.
DEFAULT_CATEGORIES = (
    "admission",
    "breaker",
    "fault",
    "retry",
    "wal",
    "replica",
    "migration",
    "alert",
    "chaos",
)


class EventRing:
    """One bounded, preallocated ring of ``(t, kind, fields)`` tuples.

    Slots are allocated once up front; an append past capacity
    overwrites the oldest event and bumps the ``dropped`` ledger — the
    recorder never grows, so a multi-hour soak holds the same memory as
    a ten-second smoke run.
    """

    __slots__ = ("category", "capacity", "_slots", "_pos", "total")

    def __init__(self, category: str, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"ring capacity must be >= 1, got {capacity}"
            )
        self.category = category
        self.capacity = capacity
        self._slots: List[Optional[Tuple[float, str, dict]]] = (
            [None] * capacity
        )
        self._pos = 0
        #: Events ever appended (retained = ``min(total, capacity)``).
        self.total = 0

    def append(self, t: float, kind: str, fields: dict) -> None:
        self._slots[self._pos] = (t, kind, fields)
        self._pos = (self._pos + 1) % self.capacity
        self.total += 1

    def __len__(self) -> int:
        return min(self.total, self.capacity)

    @property
    def dropped(self) -> int:
        return max(0, self.total - self.capacity)

    def events(self) -> List[Dict[str, object]]:
        """Retained events oldest-first, flattened to JSON-ready dicts."""
        n = len(self)
        if n == 0:
            return []
        start = self._pos - n  # may be negative: wraps
        out: List[Dict[str, object]] = []
        for i in range(n):
            t, kind, fields = self._slots[(start + i) % self.capacity]
            event: Dict[str, object] = {"t": t, "kind": kind}
            event.update(fields)
            out.append(event)
        return out

    def clear(self) -> None:
        for i in range(self.capacity):
            self._slots[i] = None
        self._pos = 0
        self.total = 0


class FlightRecorder:
    """Bounded per-category event rings on an injected (simulated) clock.

    Parameters
    ----------
    clock:
        Zero-arg callable returning the current simulated time; events
        recorded without an explicit ``t`` are stamped with it.
        ``None`` (e.g. a recorder built before its cluster) stamps 0.0
        until :attr:`clock` is assigned —
        :meth:`~repro.distributed.cluster.LocalCluster.attach_recorder`
        binds the cluster's network clock on attach.
    capacity:
        Default slots per category ring.
    capacities:
        Optional per-category overrides, e.g. ``{"admission": 4096}``.
    categories:
        The category set (default :data:`DEFAULT_CATEGORIES`).
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        capacity: int = 1024,
        capacities: Optional[Dict[str, int]] = None,
        categories: Tuple[str, ...] = DEFAULT_CATEGORIES,
    ) -> None:
        overrides = dict(capacities or {})
        unknown = set(overrides) - set(categories)
        if unknown:
            raise ConfigurationError(
                f"capacity overrides for unknown categories: "
                f"{sorted(unknown)}"
            )
        self.clock = clock
        self.capacity = capacity
        self._rings: Dict[str, EventRing] = {
            category: EventRing(category, overrides.get(category, capacity))
            for category in categories
        }

    # ------------------------------------------------------------------
    # the hot path
    # ------------------------------------------------------------------
    def record(
        self,
        category: str,
        kind: str,
        t: Optional[float] = None,
        **fields,
    ) -> None:
        """Append one event; unknown categories raise loudly.

        ``t`` should be passed by hooks that already hold the current
        simulated time (cheaper and unambiguous); otherwise the
        recorder's clock stamps the event.
        """
        ring = self._rings.get(category)
        if ring is None:
            raise ConfigurationError(
                f"unknown flight-recorder category {category!r}; "
                f"known: {sorted(self._rings)}"
            )
        if t is None:
            t = self.clock() if self.clock is not None else 0.0
        ring.append(t, kind, fields)

    # ------------------------------------------------------------------
    # alert wiring
    # ------------------------------------------------------------------
    def observe_alerts(self, manager) -> None:
        """Subscribe to an :class:`~repro.obs.alerts.AlertManager` so
        every lifecycle transition lands in the ``alert`` ring
        (idempotent)."""
        manager.add_listener(self._on_alert_event)

    def _on_alert_event(self, event) -> None:
        self.record(
            "alert",
            event.to_state,
            t=event.t,
            rule=event.rule,
            from_state=event.from_state,
            value=event.value,
            threshold=event.threshold,
        )

    # ------------------------------------------------------------------
    # readout
    # ------------------------------------------------------------------
    @property
    def categories(self) -> List[str]:
        return sorted(self._rings)

    def ring(self, category: str) -> EventRing:
        ring = self._rings.get(category)
        if ring is None:
            raise ConfigurationError(
                f"unknown flight-recorder category {category!r}"
            )
        return ring

    def events(self, category: str) -> List[Dict[str, object]]:
        """Retained events of one category, oldest-first."""
        return self.ring(category).events()

    @property
    def events_total(self) -> int:
        return sum(r.total for r in self._rings.values())

    @property
    def dropped_total(self) -> int:
        return sum(r.dropped for r in self._rings.values())

    def snapshot(self) -> Dict[str, object]:
        """Freeze the rings into one JSON-ready dict (the bundle's
        ``events`` section)."""
        return {
            "events_total": self.events_total,
            "dropped_total": self.dropped_total,
            "categories": {
                name: {
                    "capacity": ring.capacity,
                    "total": ring.total,
                    "dropped": ring.dropped,
                    "events": ring.events(),
                }
                for name, ring in sorted(self._rings.items())
            },
        }

    to_dict = snapshot

    def clear(self) -> None:
        for ring in self._rings.values():
            ring.clear()
