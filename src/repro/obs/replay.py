"""Deterministic incident replay: re-run a bundle, verify convergence.

Every incident bundle carries the scenario **spec** that produced the
run — scenario name, generator seed, rig seed, and the keyword
arguments of both.  Because the whole stack is seeded and runs on a
simulated clock, that spec is a complete recipe: :func:`replay_bundle`
rebuilds the rig from it, re-runs the scenario *prefix* up to the
captured instant (:meth:`ScenarioRunner.run_until` — no final drain, no
closing scrape), and checks that

* the same alert fires at the same simulated instant (tolerance
  :data:`TIME_TOLERANCE`), and
* the flight recorder holds the **same event stream**, category by
  category, event by event.

A replay that passes both is *converged*: the incident is a
reproducible artifact, not a one-off observation.  ``repro replay``
exits 3 on divergence, which is what the CI incident-smoke job gates.

Manual and exception bundles have no alert to wait for; their replay
runs to the captured instant, takes a fresh capture there, and compares
event streams only.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigurationError

__all__ = [
    "TIME_TOLERANCE",
    "ReplayResult",
    "build_rig_from_spec",
    "make_spec",
    "replay_bundle",
    "scenario_from_spec",
]

#: Max |original - replay| divergence of the alert's simulated firing
#: instant still counted as "the same instant".  The clock is exact
#: float arithmetic over an identical event schedule, so anything
#: beyond rounding noise means the runs genuinely diverged.
TIME_TOLERANCE = 1e-9


# ---------------------------------------------------------------------------
# specs
# ---------------------------------------------------------------------------
def make_spec(
    scenario: str,
    seed: int = 0,
    scenario_seed: Optional[int] = None,
    rig_kwargs: Optional[Dict] = None,
    scenario_kwargs: Optional[Dict] = None,
) -> Dict:
    """A self-contained recipe for one monitored scenario run.

    ``seed`` seeds the rig (graph, encoder, service, prewarm);
    ``scenario_seed`` seeds the event schedule and defaults to
    ``seed + 7``, the convention ``run_scenario`` and the CLI use.
    ``rig_kwargs`` are forwarded to ``build_serving_rig`` (put
    ``monitor_interval`` here — alert replay needs the monitor).
    """
    from repro.serving.scenarios import SCENARIOS

    if scenario not in SCENARIOS:
        raise ConfigurationError(
            f"unknown scenario {scenario!r}; choose from "
            f"{sorted(SCENARIOS)}"
        )
    return {
        "scenario": scenario,
        "seed": int(seed),
        "scenario_seed": int(
            scenario_seed if scenario_seed is not None else seed + 7
        ),
        "rig_kwargs": dict(rig_kwargs or {}),
        "scenario_kwargs": dict(scenario_kwargs or {}),
    }


def build_rig_from_spec(spec: Dict):
    """Build the spec's serving rig, flight recorder always attached."""
    from repro.serving.scenarios import build_serving_rig

    rig_kwargs = dict(spec.get("rig_kwargs") or {})
    rig_kwargs.pop("recorder", None)
    rig_kwargs.pop("seed", None)
    return build_serving_rig(
        seed=int(spec["seed"]), recorder=True, **rig_kwargs
    )


def scenario_from_spec(spec: Dict, num_sources: int):
    """Regenerate the spec's (bit-identical) event schedule."""
    from repro.serving.scenarios import SCENARIOS

    name = spec["scenario"]
    if name not in SCENARIOS:
        raise ConfigurationError(f"unknown scenario {name!r} in spec")
    return SCENARIOS[name](
        num_sources,
        seed=int(spec["scenario_seed"]),
        **dict(spec.get("scenario_kwargs") or {}),
    )


# ---------------------------------------------------------------------------
# the verdict
# ---------------------------------------------------------------------------
@dataclass
class ReplayResult:
    """Outcome of replaying one bundle against a rebuilt rig."""

    bundle_id: str
    trigger: str
    rule: Optional[str]
    original_t_rel: float
    replay_t_rel: Optional[float] = None
    alert_match: bool = False
    events_match: bool = False
    mismatches: List[str] = field(default_factory=list)
    #: Alert firings the replay saw for the bundle's rule.
    replay_firings: int = 0

    @property
    def converged(self) -> bool:
        return self.alert_match and self.events_match

    def to_dict(self) -> Dict:
        return {
            "bundle_id": self.bundle_id,
            "trigger": self.trigger,
            "rule": self.rule,
            "original_t_rel": self.original_t_rel,
            "replay_t_rel": self.replay_t_rel,
            "alert_match": self.alert_match,
            "events_match": self.events_match,
            "converged": self.converged,
            "mismatches": list(self.mismatches),
            "replay_firings": self.replay_firings,
        }

    def render(self) -> str:
        lines = [
            f"replay of {self.bundle_id} "
            f"({'alert ' + self.rule if self.rule else self.trigger}):",
            f"  captured at t_rel={self.original_t_rel:.6f}s; replay "
            + (
                f"fired at t_rel={self.replay_t_rel:.6f}s"
                if self.replay_t_rel is not None
                else "never fired"
            ),
            f"  alert instant: {'MATCH' if self.alert_match else 'DIVERGED'}",
            f"  event stream:  {'MATCH' if self.events_match else 'DIVERGED'}",
        ]
        for mismatch in self.mismatches:
            lines.append(f"    - {mismatch}")
        lines.append(
            "  verdict: CONVERGED — incident is deterministic"
            if self.converged
            else "  verdict: DIVERGED"
        )
        return "\n".join(lines)


def _canon(value):
    """JSON round-trip, so an in-memory capture compares equal to one
    loaded back from a bundle directory (tuples -> lists, etc.)."""
    return json.loads(json.dumps(value, sort_keys=True))


def _diff_events(original: Dict, replay: Dict, out: List[str]) -> bool:
    """Compare two recorder snapshots category by category; append
    human-readable mismatch lines to ``out``.  Returns True on match."""
    orig_cats = dict(original.get("categories") or {})
    rep_cats = dict(replay.get("categories") or {})
    ok = True
    for name in sorted(set(orig_cats) | set(rep_cats)):
        a = orig_cats.get(name)
        b = rep_cats.get(name)
        if a is None or b is None:
            out.append(f"events[{name}]: present in only one run")
            ok = False
            continue
        ev_a, ev_b = a.get("events", []), b.get("events", [])
        if len(ev_a) != len(ev_b):
            out.append(
                f"events[{name}]: {len(ev_a)} original vs "
                f"{len(ev_b)} replayed"
            )
            ok = False
            continue
        for i, (x, y) in enumerate(zip(ev_a, ev_b)):
            if x != y:
                out.append(
                    f"events[{name}][{i}]: {json.dumps(x, sort_keys=True)}"
                    f" != {json.dumps(y, sort_keys=True)}"
                )
                ok = False
                break
        if a.get("dropped") != b.get("dropped"):
            out.append(
                f"events[{name}]: dropped {a.get('dropped')} vs "
                f"{b.get('dropped')}"
            )
            ok = False
    return ok


# ---------------------------------------------------------------------------
# the replay
# ---------------------------------------------------------------------------
def replay_bundle(bundle_or_path, max_traces: int = 5) -> ReplayResult:
    """Re-run a bundle's captured window; verify it converges.

    Accepts an in-memory bundle dict or a bundle directory path.  The
    replay attaches its own in-memory :class:`IncidentManager` at the
    same listener position the original used (recorder first, then the
    manager — both via ``add_listener`` order), so its capture freezes
    at the *identical execution point* inside the alert evaluation, and
    the two event streams are comparable moment for moment.
    """
    from repro.obs.incident import IncidentManager, load_bundle
    from repro.serving.scenarios import ScenarioRunner

    bundle = (
        load_bundle(bundle_or_path)
        if isinstance(bundle_or_path, str)
        else bundle_or_path
    )
    meta = bundle["meta"]
    spec = bundle.get("spec")
    if spec is None:
        raise ConfigurationError(
            f"bundle {meta.get('id')!r} has no spec; it was captured "
            "without IncidentManager.mark_start(spec) and cannot be "
            "replayed"
        )
    t_rel = meta.get("t_rel")
    if t_rel is None:
        raise ConfigurationError(
            f"bundle {meta.get('id')!r} has no t_rel; mark_start() was "
            "not called before the run"
        )
    trigger = meta.get("trigger", "alert")
    rule = meta.get("rule")
    result = ReplayResult(
        bundle_id=meta.get("id", "?"),
        trigger=trigger,
        rule=rule,
        original_t_rel=float(t_rel),
    )

    rig = build_rig_from_spec(spec)
    if trigger == "alert" and rig.monitor is None:
        raise ConfigurationError(
            "bundle was alert-triggered but the spec's rig has no "
            "monitor; put monitor_interval in spec['rig_kwargs']"
        )
    manager = IncidentManager(rig.cluster, cooldown=0.0,
                              max_traces=max_traces)
    if rig.monitor is not None:
        manager.watch(rig.monitor.alerts)
    manager.mark_start(spec)
    scenario = scenario_from_spec(spec, rig.num_sources)
    runner = ScenarioRunner(rig, scenario)
    runner.run_until(float(t_rel))

    if trigger == "alert":
        candidates = [
            b for b in manager.incidents
            if b["meta"].get("trigger") == "alert"
            and b["meta"].get("rule") == rule
        ]
        result.replay_firings = len(candidates)
        if not candidates:
            result.mismatches.append(
                f"alert {rule!r} never fired during the replayed window"
            )
            return result
        replayed = min(
            candidates,
            key=lambda b: abs(b["meta"]["t_rel"] - float(t_rel)),
        )
    else:
        # Manual/exception captures: nothing fires on its own — take a
        # fresh capture at the stop instant and compare streams.
        replayed = manager.trigger(reason="replay")
        replayed["meta"]["t_rel"] = float(t_rel)

    result.replay_t_rel = float(replayed["meta"]["t_rel"])
    delta = abs(result.replay_t_rel - result.original_t_rel)
    result.alert_match = delta <= TIME_TOLERANCE
    if not result.alert_match:
        result.mismatches.append(
            f"firing instant diverged by {delta:.3e}s "
            f"(original t_rel={result.original_t_rel!r}, "
            f"replay t_rel={result.replay_t_rel!r})"
        )
    result.events_match = _diff_events(
        _canon(bundle.get("events") or {}),
        _canon(replayed.get("events") or {}),
        result.mismatches,
    )
    return result
