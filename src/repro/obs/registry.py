"""MetricsRegistry: named counters, gauges, and histograms with labels.

One registry instance is the aggregation point of a deployment — a
:class:`~repro.distributed.cluster.LocalCluster` owns one, a
:class:`~repro.gnn.training.Trainer` can share it, and exporters
(:mod:`repro.obs.export`) and the ``repro obs`` report read it.

Two kinds of entries coexist:

* **owned metrics** — :class:`Counter` / :class:`Gauge` /
  :class:`~repro.obs.hist.LatencyHistogram` objects created through
  :meth:`MetricsRegistry.counter` & friends; callers mutate them
  directly (``c.inc()``, ``h.record(dt)``);
* **views** — zero-copy read-throughs over the legacy ``*Stats``
  holders (:meth:`MetricsRegistry.register_view` /
  :func:`repro.obs.instrument.register_stats`).  The holders keep their
  plain attribute increments — the hot paths pay nothing — and the
  registry materialises their values only when a snapshot or export
  asks.

Metric identity is ``(name, sorted labels)``; names follow the
``repro_<subsystem>_<metric>`` scheme (see DESIGN.md §11) and must match
the Prometheus name grammar so the text exposition always lints.

:meth:`MetricsRegistry.snapshot` captures every scalar and histogram;
:meth:`RegistrySnapshot.diff` subtracts an earlier snapshot, so a
workload's own counts can be isolated (before/after equality is pinned
in ``tests/test_obs.py``).
"""

from __future__ import annotations

import re
import threading
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.obs.hist import LatencyHistogram

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "RegistrySnapshot",
    "Sample",
    "metric_key",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Canonical label tuple: sorted ``(key, value)`` pairs, values stringified.
LabelItems = Tuple[Tuple[str, str], ...]


def _canon_labels(labels: Dict[str, object]) -> LabelItems:
    items = tuple(sorted((str(k), str(v)) for k, v in labels.items()))
    for k, _ in items:
        if not _LABEL_RE.match(k):
            raise ConfigurationError(f"invalid label name {k!r}")
    return items


def metric_key(name: str, labels: LabelItems) -> str:
    """Canonical ``name{k="v",...}`` identity string (snapshot keys)."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonic counter (owned metric)."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counters only go up; use a gauge (got {amount})"
            )
        self.value += amount

    def get(self) -> float:
        return self.value


class Gauge:
    """Point-in-time value (owned metric)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def get(self) -> float:
        return self.value


class Sample:
    """One materialised scalar: ``(name, kind, help, labels, value)``."""

    __slots__ = ("name", "kind", "help", "labels", "value")

    def __init__(self, name, kind, help_text, labels, value) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.labels = labels
        self.value = value

    @property
    def key(self) -> str:
        return metric_key(self.name, self.labels)


class _Entry:
    """Registry slot: an owned metric or a view callback."""

    __slots__ = ("name", "kind", "help", "labels", "obj", "read", "key")

    def __init__(self, name, kind, help_text, labels, obj, read) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.labels = labels
        self.obj = obj  # owned metric / histogram, or None for views
        self.read = read  # () -> float for scalars, unused for histograms
        # Canonical string identity, computed once: snapshot() runs on
        # the monitor's scrape cadence, so per-collect key building is
        # measurable registry-width work (bench_monitoring gates it).
        self.key = metric_key(name, labels)


class RegistrySnapshot:
    """Materialised registry state at one instant.

    ``scalars`` maps canonical keys to float values; ``histograms`` maps
    keys to ``(buckets, count, sum, max)`` states.  :meth:`diff`
    subtracts an earlier snapshot — counter deltas clamp at zero (a
    ``reset_stats`` between snapshots would otherwise yield negative
    "work"), gauges keep signed deltas, and histograms subtract
    bucket-wise with the same clamp.  ``resets`` on the returned
    snapshot counts how many series were clamped, so callers (the
    bench-overhead gate, ``rate()``) can tell a quiet window from a
    reset one.
    """

    __slots__ = ("scalars", "histograms", "kinds", "resets")

    def __init__(
        self,
        scalars: Dict[str, float],
        histograms: Dict[str, Tuple[Tuple[int, ...], int, float, float]],
        kinds: Dict[str, str],
        resets: int = 0,
    ) -> None:
        self.scalars = scalars
        self.histograms = histograms
        self.kinds = kinds
        #: Series whose counter went *backwards* across a :meth:`diff`
        #: (0 on snapshots that are not diffs).
        self.resets = resets

    def diff(self, before: "RegistrySnapshot") -> "RegistrySnapshot":
        """This snapshot minus ``before`` (a workload's own counts)."""
        scalars: Dict[str, float] = {}
        resets = 0
        for key, value in self.scalars.items():
            delta = value - before.scalars.get(key, 0.0)
            if delta < 0 and self.kinds.get(key) == "counter":
                # Counter reset between the snapshots: the pre-reset
                # tail is unknowable, so clamp instead of going
                # negative and flag it through ``resets``.
                delta = 0.0
                resets += 1
            scalars[key] = delta
        hists = {}
        for key, (buckets, count, total, mx) in self.histograms.items():
            b0, c0, t0, _ = before.histograms.get(
                key, ((0,) * len(buckets), 0, 0.0, 0.0)
            )
            if count < c0:
                resets += 1
            hists[key] = (
                tuple(max(0, b - a) for b, a in zip(buckets, b0)),
                max(0, count - c0),
                max(0.0, total - t0),
                mx,  # max is not subtractable; keep the later max
            )
        return RegistrySnapshot(scalars, hists, dict(self.kinds), resets)

    def get(self, key: str, default: float = 0.0) -> float:
        return self.scalars.get(key, default)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready payload (benchmarks embed this in ``BENCH_*.json``)."""
        return {
            "resets": self.resets,
            "scalars": dict(sorted(self.scalars.items())),
            "histograms": {
                key: {
                    "count": count,
                    "sum": total,
                    "max": mx,
                    "buckets": list(buckets),
                }
                for key, (buckets, count, total, mx) in sorted(
                    self.histograms.items()
                )
            },
        }


class MetricsRegistry:
    """Shared registry of named metrics with labels.

    Thread-safe for registration (a lock guards the table); owned-metric
    mutation relies on the GIL exactly as the legacy ``*Stats`` holders
    always have.
    """

    def __init__(self) -> None:
        self._entries: Dict[Tuple[str, LabelItems], _Entry] = {}
        self._help: Dict[str, str] = {}
        self._kind: Dict[str, str] = {}
        self._lock = threading.Lock()
        # Sorted-entry cache: registration is rare, collection runs on
        # the monitor's scrape cadence.  Invalidated on every new slot.
        self._sorted: Optional[List[_Entry]] = None

    # ------------------------------------------------------------------
    # registration internals
    # ------------------------------------------------------------------
    def _slot(
        self,
        name: str,
        kind: str,
        help_text: str,
        labels: Dict[str, object],
        factory: Callable[[], object],
        read: Optional[Callable[[], float]],
        allow_existing: bool = True,
    ) -> _Entry:
        if not _NAME_RE.match(name):
            raise ConfigurationError(f"invalid metric name {name!r}")
        items = _canon_labels(labels)
        key = (name, items)
        with self._lock:
            existing_kind = self._kind.get(name)
            if existing_kind is not None and existing_kind != kind:
                raise ConfigurationError(
                    f"metric {name!r} already registered as "
                    f"{existing_kind}, not {kind}"
                )
            entry = self._entries.get(key)
            if entry is not None:
                if not allow_existing or entry.obj is None:
                    raise ConfigurationError(
                        f"metric {metric_key(name, items)} already registered"
                    )
                return entry
            obj = factory()
            entry = _Entry(name, kind, help_text, items, obj, read)
            self._entries[key] = entry
            self._sorted = None
            self._kind[name] = kind
            if help_text or name not in self._help:
                self._help[name] = help_text
            return entry

    # ------------------------------------------------------------------
    # owned metrics
    # ------------------------------------------------------------------
    def counter(self, name: str, help: str = "", **labels) -> Counter:
        """Create-or-get the :class:`Counter` at ``(name, labels)``."""
        return self._slot(name, "counter", help, labels, Counter, None).obj

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        """Create-or-get the :class:`Gauge` at ``(name, labels)``."""
        return self._slot(name, "gauge", help, labels, Gauge, None).obj

    def histogram(self, name: str, help: str = "", **labels) -> LatencyHistogram:
        """Create-or-get the labeled :class:`LatencyHistogram`."""
        return self._slot(
            name, "histogram", help, labels, LatencyHistogram, None
        ).obj

    # ------------------------------------------------------------------
    # views (pull-based: read the source of truth at collection time)
    # ------------------------------------------------------------------
    def register_view(
        self,
        name: str,
        read: Callable[[], float],
        help: str = "",
        kind: str = "counter",
        **labels,
    ) -> None:
        """Register a live scalar view — ``read()`` is called at every
        snapshot/export, so the owning object keeps its plain fields and
        the hot path pays nothing."""
        if kind not in ("counter", "gauge"):
            raise ConfigurationError(f"view kind must be counter|gauge, not {kind}")
        self._slot(
            name, kind, help, labels, lambda: None, read, allow_existing=False
        )

    def register_histogram(
        self, name: str, hist: LatencyHistogram, help: str = "", **labels
    ) -> LatencyHistogram:
        """Register an externally-owned histogram under ``(name, labels)``."""
        self._slot(
            name, "histogram", help, labels, lambda: hist, None,
            allow_existing=False,
        )
        return hist

    # ------------------------------------------------------------------
    # collection
    # ------------------------------------------------------------------
    def _entries_sorted(self) -> List[_Entry]:
        with self._lock:
            if self._sorted is None:
                entries = sorted(
                    self._entries.values(),
                    key=lambda e: (e.name, e.labels),
                )
                self._sorted = entries
            return self._sorted

    def collect(self) -> List[Sample]:
        """Materialise every scalar (owned values + view reads)."""
        out: List[Sample] = []
        for e in self._entries_sorted():
            if e.kind == "histogram":
                continue
            value = e.read() if e.read is not None else e.obj.get()
            out.append(Sample(e.name, e.kind, e.help, e.labels, float(value)))
        return out

    def collect_histograms(
        self,
    ) -> List[Tuple[str, str, LabelItems, LatencyHistogram]]:
        """``(name, help, labels, histogram)`` for every histogram."""
        return [
            (e.name, e.help, e.labels, e.obj)
            for e in self._entries_sorted()
            if e.kind == "histogram"
        ]

    def has(self, name: str, **labels) -> bool:
        """Whether ``(name, labels)`` is already registered.

        Lets components that register non-idempotent entries (views,
        external histograms) guard against double registration when
        they may be constructed more than once against one registry.
        """
        key = (name, _canon_labels(labels))
        with self._lock:
            return key in self._entries

    def names(self) -> List[str]:
        with self._lock:
            return sorted({name for name, _ in self._entries})

    def help_for(self, name: str) -> str:
        return self._help.get(name, "")

    def kind_for(self, name: str) -> str:
        return self._kind.get(name, "untyped")

    # ------------------------------------------------------------------
    # snapshot / diff / merge
    # ------------------------------------------------------------------
    def snapshot(
        self, prefixes: Optional[Tuple[str, ...]] = None
    ) -> RegistrySnapshot:
        """Materialise everything into an immutable snapshot.

        Iterates the slots directly (no intermediate :class:`Sample`
        list) — this runs once per monitor scrape, where allocation per
        series dominates on a wide registry.  ``prefixes`` restricts the
        snapshot to series whose canonical key starts with one of them
        (the :class:`~repro.obs.monitor.TimeSeriesStore` pushes its
        ``name_filter`` down here so unwanted view callbacks are never
        invoked).
        """
        scalars: Dict[str, float] = {}
        kinds: Dict[str, str] = {}
        hists = {}
        for e in self._entries_sorted():
            key = e.key
            if prefixes is not None and not key.startswith(prefixes):
                continue
            if e.kind == "histogram":
                hists[key] = e.obj.state()
                kinds[key] = "histogram"
                continue
            value = e.read() if e.read is not None else e.obj.value
            scalars[key] = float(value)
            kinds[key] = e.kind
        return RegistrySnapshot(scalars, hists, kinds)

    def merge_from(self, other: "MetricsRegistry") -> None:
        """Fold another registry's materialised state into this one's
        **owned** metrics (worker aggregation: counters add, gauges take
        the other's value, histograms bucket-merge)."""
        for s in other.collect():
            labels = dict(s.labels)
            if s.kind == "counter":
                self.counter(s.name, s.help, **labels).inc(s.value)
            else:
                self.gauge(s.name, s.help, **labels).set(s.value)
        for name, help_text, labels, hist in other.collect_histograms():
            mine = self.histogram(name, help_text, **dict(labels))
            mine.merge(hist)

    def reset_owned(self) -> None:
        """Zero every owned metric (views reset through their holders)."""
        for e in self._entries_sorted():
            if e.read is not None:
                continue
            if e.kind == "histogram":
                e.obj.reset()
            else:
                e.obj.value = 0.0
