"""Exporters: Prometheus text exposition, JSON dump, and a format linter.

``to_prometheus_text`` renders a :class:`~repro.obs.registry.MetricsRegistry`
in the Prometheus text exposition format (version 0.0.4): one
``# HELP`` / ``# TYPE`` header per metric family, one sample line per
labeled child, and the standard cumulative ``_bucket``/``_sum``/``_count``
triplet for histograms (bucket upper bounds are the log₂ histogram's
:meth:`~repro.obs.hist.LatencyHistogram.bucket_bounds`, in seconds, with
a final ``+Inf``).

``lint_prometheus`` is the checker the CI ``obs-smoke`` job runs over
the CLI's export — the container has no ``promtool``, so the subset of
the grammar that matters is enforced here: name/label syntax, TYPE
validity, header-before-samples ordering, parseable float values,
duplicate series detection, and histogram completeness (monotone
cumulative buckets, ``+Inf`` bucket, ``_count`` == ``+Inf``,
``_sum``/``_count`` present).

``to_json`` emits the same registry (plus, optionally, a tracer's
archived traces) as one JSON-ready dict — the payload benchmarks embed
in their ``BENCH_*.json`` records.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.errors import ReproError
from repro.obs.registry import MetricsRegistry, metric_key

__all__ = [
    "PrometheusFormatError",
    "lint_prometheus",
    "to_json",
    "to_prometheus_text",
]


class PrometheusFormatError(ReproError):
    """The exposition text violates the Prometheus text format."""


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------
def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _fmt_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _fmt_labels(items) -> str:
    if not items:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in items)
    return "{" + inner + "}"


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: List[str] = []
    emitted_header: set = set()

    def header(name: str, kind: str) -> None:
        if name in emitted_header:
            return
        emitted_header.add(name)
        help_text = registry.help_for(name) or name.replace("_", " ")
        lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {kind}")

    for sample in registry.collect():
        header(sample.name, sample.kind)
        lines.append(
            f"{sample.name}{_fmt_labels(sample.labels)} "
            f"{_fmt_value(sample.value)}"
        )

    exemplar_lines: List[str] = []
    for name, _, labels, hist in registry.collect_histograms():
        header(name, "histogram")
        cumulative = 0
        counts = hist.bucket_counts()
        bounds = hist.bucket_bounds()
        les = [
            "+Inf" if hi == math.inf else repr(hi) for _, hi in bounds
        ]
        for le, count in zip(les, counts):
            cumulative += count
            le_labels = tuple(labels) + (("le", le),)
            lines.append(
                f"{name}_bucket{_fmt_labels(le_labels)} {cumulative}"
            )
        lines.append(
            f"{name}_sum{_fmt_labels(labels)} {_fmt_value(hist.sum)}"
        )
        lines.append(f"{name}_count{_fmt_labels(labels)} {hist.count}")
        # Exemplars (DESIGN.md §12): the 0.0.4 text format has no native
        # exemplar syntax (that's OpenMetrics), so the slowest op of each
        # bucket is exported as a companion gauge family
        # ``<name>_exemplar{le=..., trace_id=..., detail=...}`` whose
        # value is the exemplar latency in seconds — still lintable and
        # still joinable to the trace ring by ``trace_id``.
        exemplars = getattr(hist, "exemplars", None)
        if exemplars is None:
            continue
        for idx, ex in sorted(exemplars().items()):
            ex_name = f"{name}_exemplar"
            if ex_name not in emitted_header:
                emitted_header.add(ex_name)
                exemplar_lines.append(
                    f"# HELP {ex_name} Slowest observation per bucket "
                    f"(joinable to traces by trace_id)"
                )
                exemplar_lines.append(f"# TYPE {ex_name} gauge")
            ex_labels = tuple(labels) + (
                ("le", les[idx]),
                ("trace_id", "" if ex.trace_id is None else str(ex.trace_id)),
                ("detail", ex.detail),
            )
            exemplar_lines.append(
                f"{ex_name}{_fmt_labels(ex_labels)} {_fmt_value(ex.value)}"
            )
    lines.extend(exemplar_lines)

    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# JSON dump
# ---------------------------------------------------------------------------
def to_json(
    registry: MetricsRegistry, tracer=None, top_slow: int = 5
) -> Dict[str, object]:
    """One JSON-ready document: metrics, histograms, optional traces."""
    doc: Dict[str, object] = {
        "metrics": {
            s.key: {"kind": s.kind, "value": s.value}
            for s in registry.collect()
        },
        "histograms": {},
    }
    for name, _, labels, hist in registry.collect_histograms():
        summary = hist.summary()
        summary["buckets"] = hist.bucket_counts()
        doc["histograms"][metric_key(name, labels)] = summary
    if tracer is not None:
        doc["slow_traces"] = [
            span.to_dict() for span in tracer.top_slow(top_slow)
        ]
        doc["traces_archived"] = len(tracer.finished)
    return doc


# ---------------------------------------------------------------------------
# the exposition-format linter (CI's promtool stand-in)
# ---------------------------------------------------------------------------
import re

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)(?:\s+(?P<ts>-?\d+))?$"
)
_LABEL_PAIR_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"'
)
_VALID_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def _base_family(name: str, types: Dict[str, str]) -> str:
    """Map ``x_bucket``/``x_sum``/``x_count`` to family ``x`` when ``x``
    is a declared histogram/summary."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if types.get(base) in ("histogram", "summary"):
                return base
    return name


def _parse_value(raw: str) -> float:
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    if raw == "NaN":
        return math.nan
    try:
        return float(raw)
    except ValueError:
        raise PrometheusFormatError(f"unparseable sample value {raw!r}")


def lint_prometheus(text: str) -> Dict[str, int]:
    """Validate Prometheus text exposition; raises
    :class:`PrometheusFormatError` on the first violation.

    Returns ``{"families": n, "samples": m}`` on success so callers can
    assert non-emptiness.
    """
    types: Dict[str, str] = {}
    helps: Dict[str, str] = {}
    seen_series: set = set()
    samples_by_family: Dict[str, List] = {}
    families_with_samples: List[str] = []
    n_samples = 0

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                continue  # plain comment
            keyword, name = parts[1], parts[2]
            if not _METRIC_NAME.match(name):
                raise PrometheusFormatError(
                    f"line {lineno}: invalid metric name {name!r}"
                )
            if keyword == "TYPE":
                if len(parts) != 4 or parts[3] not in _VALID_TYPES:
                    raise PrometheusFormatError(
                        f"line {lineno}: invalid TYPE for {name}"
                    )
                if name in types:
                    raise PrometheusFormatError(
                        f"line {lineno}: duplicate TYPE for {name}"
                    )
                if name in samples_by_family:
                    raise PrometheusFormatError(
                        f"line {lineno}: TYPE for {name} after its samples"
                    )
                types[name] = parts[3]
            else:
                if name in helps:
                    raise PrometheusFormatError(
                        f"line {lineno}: duplicate HELP for {name}"
                    )
                helps[name] = parts[3] if len(parts) == 4 else ""
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise PrometheusFormatError(
                f"line {lineno}: unparseable sample line {line!r}"
            )
        name = match.group("name")
        label_blob = match.group("labels")
        labels = []
        if label_blob:
            pos = 0
            while pos < len(label_blob):
                pair = _LABEL_PAIR_RE.match(label_blob, pos)
                if pair is None:
                    raise PrometheusFormatError(
                        f"line {lineno}: malformed label set "
                        f"{{{label_blob}}}"
                    )
                labels.append((pair.group(1), pair.group(2)))
                pos = pair.end()
                if pos < len(label_blob):
                    if label_blob[pos] != ",":
                        raise PrometheusFormatError(
                            f"line {lineno}: malformed label set "
                            f"{{{label_blob}}}"
                        )
                    pos += 1
            for key, _ in labels:
                if not _LABEL_NAME.match(key):
                    raise PrometheusFormatError(
                        f"line {lineno}: invalid label name {key!r}"
                    )
        value = _parse_value(match.group("value"))
        series = (name, tuple(sorted(labels)))
        if series in seen_series:
            raise PrometheusFormatError(
                f"line {lineno}: duplicate series "
                f"{metric_key(name, tuple(sorted(labels)))}"
            )
        seen_series.add(series)
        family = _base_family(name, types)
        if family not in samples_by_family:
            samples_by_family[family] = []
            families_with_samples.append(family)
        samples_by_family[family].append((name, dict(labels), value))
        n_samples += 1

    # Histogram completeness: per label set, cumulative monotone buckets
    # ending in +Inf, with matching _count and a _sum.
    for family, kind in types.items():
        if kind != "histogram" or family not in samples_by_family:
            continue
        buckets: Dict[tuple, List] = {}
        sums: Dict[tuple, float] = {}
        counts: Dict[tuple, float] = {}
        for name, labels, value in samples_by_family[family]:
            if name == family + "_bucket":
                le = labels.pop("le", None)
                if le is None:
                    raise PrometheusFormatError(
                        f"{family}_bucket sample without an le label"
                    )
                key = tuple(sorted(labels.items()))
                bound = math.inf if le == "+Inf" else _parse_value(le)
                buckets.setdefault(key, []).append((bound, value))
            elif name == family + "_sum":
                sums[tuple(sorted(labels.items()))] = value
            elif name == family + "_count":
                counts[tuple(sorted(labels.items()))] = value
        for key, series in buckets.items():
            series.sort(key=lambda bv: bv[0])
            if not series or series[-1][0] != math.inf:
                raise PrometheusFormatError(
                    f"histogram {family}{dict(key)} lacks a +Inf bucket"
                )
            last = -math.inf
            for bound, cumulative in series:
                if cumulative < last:
                    raise PrometheusFormatError(
                        f"histogram {family}{dict(key)} buckets are not "
                        f"cumulative at le={bound}"
                    )
                last = cumulative
            if key not in counts:
                raise PrometheusFormatError(
                    f"histogram {family}{dict(key)} lacks _count"
                )
            if key not in sums:
                raise PrometheusFormatError(
                    f"histogram {family}{dict(key)} lacks _sum"
                )
            if counts[key] != series[-1][1]:
                raise PrometheusFormatError(
                    f"histogram {family}{dict(key)}: _count "
                    f"{counts[key]} != +Inf bucket {series[-1][1]}"
                )

    return {"families": len(families_with_samples), "samples": n_samples}
