"""Log₂-bucketed latency histogram (the telemetry layer's distribution type).

Moved here from ``repro.core.metrics`` (which still re-exports it for
compatibility) and extended for the shared registry:

* **exact bucketing** — bucket assignment is computed with
  :func:`math.frexp` on the float microsecond value instead of the old
  ``int(us)`` truncation, so fractional observations land in the bucket
  their documented range ``[2^(i-1), 2^i)`` claims, and the mapping is
  pinned by :meth:`bucket_bounds` plus a property test
  (``tests/test_obs.py``);
* **overflow honesty** — the last bucket is open-ended
  (``[2^(n-2) µs, ∞)``); :meth:`bucket_bounds` reports ``inf`` and
  :meth:`percentile` answers queries landing there with the recorded
  maximum instead of a fabricated power-of-two bound;
* **merge / snapshot** — :meth:`merge` folds a peer histogram in (the
  per-thread-then-merge pattern the concurrency tests exercise), and
  :meth:`state` captures an immutable snapshot the registry diff uses;
* **exemplars (opt-in)** — after :meth:`enable_exemplars`, each bucket
  remembers its *slowest* observation as an :class:`Exemplar` (value +
  optional trace id + args digest), so a fat p99 bucket links directly
  to the span tree that produced it (DESIGN.md §12).  Disabled
  histograms pay nothing — ``record`` checks one attribute.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError

__all__ = ["Exemplar", "LatencyHistogram", "NUM_BUCKETS"]

#: Bucket 0 covers < 1 µs; bucket ``i`` covers ``[2^(i-1), 2^i)`` µs for
#: ``0 < i < NUM_BUCKETS - 1``; the last bucket is open-ended.
NUM_BUCKETS = 24


class Exemplar:
    """One bucket's slowest observation, linkable back to its trace.

    ``value`` is the recorded latency in seconds; ``trace_id`` is the
    PR 4 tracer's root trace id (``None`` when recorded outside a
    sampled trace); ``detail`` is a short free-form digest of the
    operation's arguments (e.g. ``"srcs=1024 k=25"``).
    """

    __slots__ = ("value", "trace_id", "detail")

    def __init__(
        self,
        value: float,
        trace_id: Optional[int] = None,
        detail: str = "",
    ) -> None:
        self.value = value
        self.trace_id = trace_id
        self.detail = detail

    def to_dict(self) -> Dict[str, object]:
        return {
            "value": self.value,
            "trace_id": self.trace_id,
            "detail": self.detail,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Exemplar({self.value:.6g}s, trace={self.trace_id}, "
            f"{self.detail!r})"
        )


class LatencyHistogram:
    """Log₂-bucketed latency histogram (microsecond resolution)."""

    __slots__ = ("_buckets", "_count", "_sum", "_max", "_exemplars")

    def __init__(self) -> None:
        self._buckets = [0] * NUM_BUCKETS
        self._count = 0
        self._sum = 0.0
        self._max = 0.0
        #: ``None`` until :meth:`enable_exemplars` — the common case
        #: pays a single attribute check per record.
        self._exemplars: Optional[List[Optional[Exemplar]]] = None

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    @staticmethod
    def bucket_index(seconds: float) -> int:
        """Bucket of one observation (exact, no integer truncation).

        ``frexp(us) = (m, e)`` with ``us = m * 2**e`` and
        ``0.5 <= m < 1``, so ``us ∈ [2^(e-1), 2^e)`` — bucket ``e``,
        clamped to ``[0, NUM_BUCKETS - 1]``.
        """
        us = seconds * 1e6
        if us <= 0.0:
            return 0
        _, exp = math.frexp(us)
        if exp < 0:
            return 0
        return exp if exp < NUM_BUCKETS else NUM_BUCKETS - 1

    def record(
        self,
        seconds: float,
        trace_id: Optional[int] = None,
        detail: str = "",
    ) -> None:
        """Record one observation.

        ``trace_id`` / ``detail`` are only kept when exemplars are
        enabled (:meth:`enable_exemplars`) **and** this observation is
        the slowest its bucket has seen.
        """
        if seconds < 0:
            raise ConfigurationError(f"latency cannot be negative: {seconds}")
        idx = self.bucket_index(seconds)
        self._buckets[idx] += 1
        self._count += 1
        self._sum += seconds
        if seconds > self._max:
            self._max = seconds
        if self._exemplars is not None:
            current = self._exemplars[idx]
            if current is None or seconds >= current.value:
                self._exemplars[idx] = Exemplar(seconds, trace_id, detail)

    # ------------------------------------------------------------------
    # exemplars
    # ------------------------------------------------------------------
    def enable_exemplars(self) -> "LatencyHistogram":
        """Turn on per-bucket slowest-op exemplars (idempotent)."""
        if self._exemplars is None:
            self._exemplars = [None] * NUM_BUCKETS
        return self

    @property
    def exemplars_enabled(self) -> bool:
        return self._exemplars is not None

    def exemplars(self) -> Dict[int, Exemplar]:
        """``{bucket_index: Exemplar}`` for every non-empty exemplar."""
        if self._exemplars is None:
            return {}
        return {
            i: ex for i, ex in enumerate(self._exemplars) if ex is not None
        }

    # ------------------------------------------------------------------
    # bucket geometry
    # ------------------------------------------------------------------
    @staticmethod
    def bucket_bounds() -> List[Tuple[float, float]]:
        """Half-open ``[lo, hi)`` range of every bucket, in **seconds**.

        Bucket 0 is ``[0, 1µs)``; bucket ``i`` is ``[2^(i-1), 2^i)`` µs;
        the last bucket is ``[2^(n-2) µs, inf)`` — every recordable value
        falls inside exactly one bucket (the property test's invariant).
        """
        bounds: List[Tuple[float, float]] = [(0.0, 1e-6)]
        for i in range(1, NUM_BUCKETS - 1):
            bounds.append(((1 << (i - 1)) * 1e-6, (1 << i) * 1e-6))
        bounds.append(((1 << (NUM_BUCKETS - 2)) * 1e-6, math.inf))
        return bounds

    def bucket_counts(self) -> List[int]:
        """Per-bucket observation counts (copy)."""
        return list(self._buckets)

    # ------------------------------------------------------------------
    # readout
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        """Total recorded seconds."""
        return self._sum

    @property
    def mean(self) -> float:
        """Mean latency in seconds."""
        return self._sum / self._count if self._count else 0.0

    @property
    def max(self) -> float:
        """Largest recorded latency in seconds."""
        return self._max

    def percentile(self, q: float) -> float:
        """Approximate latency at quantile ``q`` (bucket upper bound,
        seconds).  q in [0, 1].  Queries resolving to the open-ended
        overflow bucket answer with the recorded maximum."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if self._count == 0:
            return 0.0
        target = q * self._count
        seen = 0
        for i, c in enumerate(self._buckets):
            seen += c
            if seen >= target:
                if i == NUM_BUCKETS - 1:
                    return self._max
                return (1 << i) * 1e-6
        return self._max

    # ------------------------------------------------------------------
    # merge / snapshot / reset
    # ------------------------------------------------------------------
    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram into this one (thread-local histograms
        merged into a shared one — the registry's aggregation pattern)."""
        for i in range(NUM_BUCKETS):
            self._buckets[i] += other._buckets[i]
        self._count += other._count
        self._sum += other._sum
        self._max = max(self._max, other._max)
        if other._exemplars is not None:
            self.enable_exemplars()
            for i, theirs in enumerate(other._exemplars):
                if theirs is None:
                    continue
                mine = self._exemplars[i]
                if mine is None or theirs.value >= mine.value:
                    self._exemplars[i] = theirs

    def state(self) -> Tuple[Tuple[int, ...], int, float, float]:
        """Immutable ``(buckets, count, sum, max)`` snapshot (diff unit)."""
        return (tuple(self._buckets), self._count, self._sum, self._max)

    @classmethod
    def from_state(
        cls, state: Tuple[Tuple[int, ...], int, float, float]
    ) -> "LatencyHistogram":
        """Rebuild a histogram from a :meth:`state` tuple.

        The monitor's ``quantile_over_time`` subtracts two scrape states
        and rehydrates the delta into a real histogram so the existing
        :meth:`percentile` / :meth:`merge` machinery answers windowed
        quantile queries.  Components are clamped at zero so a slightly
        inconsistent delta (e.g. across a reset) degrades to an empty
        histogram instead of corrupting quantile math.
        """
        buckets, count, total, mx = state
        if len(buckets) != NUM_BUCKETS:
            raise ConfigurationError(
                f"state has {len(buckets)} buckets, expected {NUM_BUCKETS}"
            )
        hist = cls()
        hist._buckets = [max(0, int(b)) for b in buckets]
        hist._count = max(0, int(count))
        hist._sum = max(0.0, float(total))
        hist._max = max(0.0, float(mx))
        return hist

    def reset(self) -> None:
        self._buckets = [0] * NUM_BUCKETS
        self._count = 0
        self._sum = 0.0
        self._max = 0.0
        if self._exemplars is not None:
            self._exemplars = [None] * NUM_BUCKETS

    def summary(self) -> Dict[str, float]:
        """count / mean / p50 / p99 / max in one dict (seconds)."""
        return {
            "count": float(self._count),
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p99": self.percentile(0.99),
            "max": self._max,
        }
