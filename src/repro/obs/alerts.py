"""Rule-based alerting over the monitor's time series.

The rule grammar covers the two shapes a serving on-call actually pages
on (DESIGN.md §16):

* :class:`BurnRateRule` — the SRE-workbook **multi-window
  multi-burn-rate** SLO alert: the burn rate
  ``(bad / total) / (1 - target)`` must exceed a threshold in *both* a
  fast and a slow trailing window.  The fast window makes the alert
  respond within seconds of an onset; the slow window keeps a short
  blip from paging.  Production pairs like 5m/1h scale down to the
  simulated clock (e.g. 0.25s/1.0s on a 3s scenario) — the ratios, not
  the absolute durations, carry the semantics.
* :class:`ThresholdRule` — a comparison against any windowed query over
  one series: ``rate``, ``increase``, ``avg``/``max``/``min`` over
  time, ``latest``, or a histogram ``quantile`` (``q=0.99``).

Rules feed an :class:`AlertManager` with the Prometheus lifecycle:
**inactive → pending** (condition first true) **→ firing** (still true
after ``for_seconds``) **→ resolved/inactive** (condition clears).
Every transition lands in an event log with the evaluation timestamp
and the rule's labels — the alert timeline a chaos scenario is judged
by ("did the flash-crowd page fire before the SLO report would have
told us?").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigurationError

__all__ = [
    "Alert",
    "AlertEvent",
    "AlertManager",
    "AlertRule",
    "BurnRateRule",
    "ThresholdRule",
    "default_serving_rules",
]

_OPS = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
}

_THRESHOLD_MODES = (
    "rate",
    "increase",
    "avg",
    "max",
    "min",
    "latest",
    "quantile",
)


class AlertRule:
    """Base rule: a named condition over the time-series store.

    ``evaluate(store, now)`` returns ``(active, value)`` — whether the
    condition holds at ``now`` and the measured value that decided it
    (recorded on transitions for the timeline).
    """

    def __init__(
        self,
        name: str,
        for_seconds: float = 0.0,
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        if for_seconds < 0:
            raise ConfigurationError("for_seconds must be >= 0")
        self.name = name
        self.for_seconds = for_seconds
        self.labels = dict(labels or {})

    def evaluate(self, store, now: float):  # pragma: no cover - abstract
        raise NotImplementedError


class ThresholdRule(AlertRule):
    """``<query>(key, window) <op> threshold`` over one series."""

    def __init__(
        self,
        name: str,
        key: str,
        threshold: float,
        mode: str = "rate",
        window: float = 1.0,
        op: str = ">",
        q: Optional[float] = None,
        for_seconds: float = 0.0,
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        super().__init__(name, for_seconds, labels)
        if mode not in _THRESHOLD_MODES:
            raise ConfigurationError(
                f"mode must be one of {_THRESHOLD_MODES}, got {mode!r}"
            )
        if op not in _OPS:
            raise ConfigurationError(f"op must be one of {sorted(_OPS)}")
        if mode == "quantile" and q is None:
            raise ConfigurationError("quantile mode needs q")
        if window <= 0:
            raise ConfigurationError("window must be > 0")
        self.key = key
        self.mode = mode
        self.window = window
        self.op = op
        self.q = q
        self.threshold = threshold

    def _measure(self, store, now: float) -> float:
        if self.mode == "rate":
            return store.rate(self.key, self.window, at=now)
        if self.mode == "increase":
            return store.increase(self.key, self.window, at=now)
        if self.mode == "avg":
            return store.avg_over_time(self.key, self.window, at=now)
        if self.mode == "max":
            return store.max_over_time(self.key, self.window, at=now)
        if self.mode == "min":
            return store.min_over_time(self.key, self.window, at=now)
        if self.mode == "latest":
            return store.latest(self.key)
        return store.quantile_over_time(self.q, self.key, self.window, at=now)

    def evaluate(self, store, now: float):
        value = self._measure(store, now)
        return _OPS[self.op](value, self.threshold), value

    def describe(self) -> str:
        expr = (
            f"quantile_over_time({self.q}, {self.key}[{self.window:g}s])"
            if self.mode == "quantile"
            else f"{self.mode}({self.key}[{self.window:g}s])"
        )
        return f"{expr} {self.op} {self.threshold:g}"


class BurnRateRule(AlertRule):
    """Multi-window multi-burn-rate SLO alert over a good/total pair.

    ``good`` and ``total`` are cumulative counter series; the burn rate
    of a window is ``((total - good) / total) / (1 - target)`` computed
    from the windows' increases.  The rule is active only when **both**
    windows burn past ``threshold`` — the fast window gives onset
    latency, the slow one de-flaps.  An empty window (no traffic)
    burns 0.
    """

    def __init__(
        self,
        name: str,
        good: str,
        total: str,
        target: float = 0.99,
        fast_window: float = 0.25,
        slow_window: float = 1.0,
        threshold: float = 8.0,
        for_seconds: float = 0.0,
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        super().__init__(name, for_seconds, labels)
        if not 0.0 < target < 1.0:
            raise ConfigurationError(
                f"target must be in (0, 1), got {target}"
            )
        if fast_window <= 0 or slow_window <= 0:
            raise ConfigurationError("windows must be > 0")
        if fast_window >= slow_window:
            raise ConfigurationError(
                "fast_window must be shorter than slow_window "
                f"(got {fast_window} >= {slow_window})"
            )
        if threshold <= 0:
            raise ConfigurationError("threshold must be > 0")
        self.good = good
        self.total = total
        self.target = target
        self.fast_window = fast_window
        self.slow_window = slow_window
        self.threshold = threshold

    def burn(self, store, window: float, now: float) -> float:
        total = store.increase(self.total, window, at=now)
        if total <= 0:
            return 0.0
        good = store.increase(self.good, window, at=now)
        bad_fraction = max(0.0, total - good) / total
        return bad_fraction / (1.0 - self.target)

    def evaluate(self, store, now: float):
        fast = self.burn(store, self.fast_window, now)
        slow = self.burn(store, self.slow_window, now)
        value = min(fast, slow)  # the binding window
        return (
            fast > self.threshold and slow > self.threshold,
            value,
        )

    def describe(self) -> str:
        return (
            f"burn({self.total}\\{self.good}, target={self.target:g}) > "
            f"{self.threshold:g} in both [{self.fast_window:g}s] and "
            f"[{self.slow_window:g}s]"
        )


@dataclass
class AlertEvent:
    """One lifecycle transition (the timeline unit).

    ``value`` is the measurement that decided the transition and
    ``threshold`` the rule's trigger level at that instant — together
    they say *why* a rule fired, not just that it did.
    """

    t: float
    rule: str
    from_state: str
    to_state: str
    value: float
    labels: Dict[str, str] = field(default_factory=dict)
    threshold: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "t": self.t,
            "rule": self.rule,
            "from": self.from_state,
            "to": self.to_state,
            "value": self.value,
            "threshold": self.threshold,
            "labels": dict(self.labels),
        }


@dataclass
class Alert:
    """Current state of one rule."""

    rule: AlertRule
    state: str = "inactive"  # inactive | pending | firing
    since: Optional[float] = None
    value: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule.name,
            "state": self.state,
            "since": self.since,
            "value": self.value,
            "labels": dict(self.rule.labels),
        }


class AlertManager:
    """Evaluates rules after every scrape; keeps states + an event log."""

    def __init__(self, rules: Optional[List[AlertRule]] = None) -> None:
        self.rules: List[AlertRule] = []
        self.alerts: Dict[str, Alert] = {}
        self.events: List[AlertEvent] = []
        self.evaluations = 0
        self.transitions = 0
        self.listeners: List = []
        for rule in rules or []:
            self.add_rule(rule)

    def add_rule(self, rule: AlertRule) -> AlertRule:
        if rule.name in self.alerts:
            raise ConfigurationError(
                f"alert rule {rule.name!r} already registered"
            )
        self.rules.append(rule)
        self.alerts[rule.name] = Alert(rule)
        return rule

    def add_listener(self, listener) -> None:
        """Subscribe a callable to every transition (idempotent).

        Listeners receive the :class:`AlertEvent` *synchronously inside*
        the evaluation pass, at the simulated instant of the transition —
        this is the hook the flight recorder and incident manager ride.
        """
        if listener not in self.listeners:
            self.listeners.append(listener)

    def _transition(
        self, alert: Alert, to_state: str, now: float, value: float
    ) -> None:
        event = AlertEvent(
            t=now,
            rule=alert.rule.name,
            from_state=alert.state,
            to_state=to_state,
            value=value,
            labels=dict(alert.rule.labels),
            threshold=getattr(alert.rule, "threshold", None),
        )
        self.events.append(event)
        self.transitions += 1
        # "resolved" is an event, not a state — the alert returns to
        # inactive and can fire again later in the same run.
        alert.state = "inactive" if to_state == "resolved" else to_state
        alert.since = now if to_state == "pending" else alert.since
        if to_state in ("inactive", "resolved"):
            alert.since = None
        for listener in self.listeners:
            listener(event)

    def evaluate(self, store, now: float) -> None:
        """One evaluation pass (the monitor calls this after a scrape)."""
        self.evaluations += 1
        for rule in self.rules:
            alert = self.alerts[rule.name]
            active, value = rule.evaluate(store, now)
            alert.value = value
            if alert.state == "inactive":
                if active:
                    self._transition(alert, "pending", now, value)
                    if now - alert.since >= rule.for_seconds:
                        self._transition(alert, "firing", now, value)
            elif alert.state == "pending":
                if not active:
                    self._transition(alert, "inactive", now, value)
                elif now - alert.since >= rule.for_seconds:
                    self._transition(alert, "firing", now, value)
            elif alert.state == "firing":
                if not active:
                    self._transition(alert, "resolved", now, value)

    # ------------------------------------------------------------------
    # readout
    # ------------------------------------------------------------------
    def firing(self) -> List[Alert]:
        return [a for a in self.alerts.values() if a.state == "firing"]

    def pending(self) -> List[Alert]:
        return [a for a in self.alerts.values() if a.state == "pending"]

    def state_of(self, rule_name: str) -> str:
        return self.alerts[rule_name].state

    def timeline(self, rule: Optional[str] = None) -> List[AlertEvent]:
        """The event log, optionally filtered to one rule."""
        if rule is None:
            return list(self.events)
        return [e for e in self.events if e.rule == rule]

    def to_dict(self) -> Dict[str, object]:
        return {
            "alerts": [
                self.alerts[r.name].to_dict() for r in self.rules
            ],
            "events": [e.to_dict() for e in self.events],
            "evaluations": self.evaluations,
            "transitions": self.transitions,
        }


def default_serving_rules(
    target: float = 0.99,
    fast_window: float = 0.25,
    slow_window: float = 1.0,
    burn_threshold: float = 8.0,
    for_seconds: float = 0.04,
    p99_threshold_seconds: float = 25e-3,
    failure_rate_threshold: float = 5.0,
) -> List[AlertRule]:
    """The serving tier's canonical rule set (scaled to simulated time).

    The availability burn rate counts *fresh* in-SLO answers as good —
    a shed request rescued by the degraded cache still spends error
    budget here, which is exactly what makes a flash crowd visible
    while the shedding machinery keeps end-to-end availability high.
    """
    return [
        BurnRateRule(
            "serving_availability_burn",
            good="repro_serving_answered_fresh",
            total="repro_serving_submitted",
            target=target,
            fast_window=fast_window,
            slow_window=slow_window,
            threshold=burn_threshold,
            for_seconds=for_seconds,
            labels={"severity": "page", "slo": f"{target:g}"},
        ),
        ThresholdRule(
            "serving_p99_high",
            key="repro_serving_request_seconds",
            mode="quantile",
            q=0.99,
            window=slow_window,
            op=">",
            threshold=p99_threshold_seconds,
            for_seconds=for_seconds,
            labels={"severity": "ticket"},
        ),
        ThresholdRule(
            "serving_failure_rate",
            key="repro_serving_failed",
            mode="rate",
            window=slow_window,
            op=">",
            threshold=failure_rate_threshold,
            labels={"severity": "page"},
        ),
    ]
