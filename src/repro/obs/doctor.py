"""Samtree doctor: structural health + memory breakdown (DESIGN.md §12).

The paper's structural claims — leaves stay within the ``[c/2 - α, c]``
occupancy band, α-Split pivots land near the median (Theorem 1), trees
stay shallow (``H = O(log_c n)``), and the samtree layout undercuts
key-value stores byte-for-byte (Table IV) — are *invariants of a running
deployment*, not one-shot build facts.  Under churn they can silently
rot: merges can thrash, a degenerate pivot distribution can skew leaves,
snapshot caches can balloon.  The doctor makes those properties
observable:

* :func:`diagnose` walks a :class:`~repro.core.topology.DynamicGraphStore`
  (or every live primary of a
  :class:`~repro.distributed.cluster.LocalCluster`) and produces a
  :class:`DoctorReport` — depth histogram, leaf fill-factor histogram
  (root leaves tracked separately from non-root leaves, whose occupancy
  the paper actually bounds), FSTable/CSTable node counts, mean internal
  fan-out, split/merge/rebuild counters, and the α-Split pivot-imbalance
  readout accumulated by :class:`~repro.core.samtree.OpStats`;
* the report carries a :class:`~repro.core.memory.MemoryModel`-based
  byte breakdown by component (``leaf_nodes`` / ``fstables`` /
  ``internal_nodes`` / ``cstables`` / ``directory`` /
  ``snapshot_cache``, plus ``wal`` / ``attributes`` at cluster level)
  whose sum **equals** the store's ``nbytes()`` by construction — the
  invariant ``tests/test_doctor.py`` pins under bulk build, churn, and
  crash/recovery;
* :func:`check_thresholds` turns a report into a pass/fail health gate
  (``repro doctor --fail-on fill=0.4,depth=4``), and
  :meth:`DoctorReport.to_registry` exports everything as
  ``repro_doctor_*`` gauges so the same readout ships through the PR 4
  Prometheus exposition.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.memory import (
    DEFAULT_MEMORY_MODEL,
    MemoryModel,
    humanize_bytes,
)
from repro.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry

__all__ = [
    "DoctorReport",
    "FILL_BINS",
    "check_thresholds",
    "diagnose",
    "diagnose_cluster",
    "diagnose_store",
    "parse_fail_on",
]

#: Leaf fill-factor histogram resolution: bin ``i`` covers
#: ``(i/FILL_BINS, (i+1)/FILL_BINS]`` (empty leaves land in bin 0).
FILL_BINS = 10


class _FillStats:
    """Streaming min/mean/max + fixed-bin histogram over ``[0, 1]``."""

    __slots__ = ("count", "sum", "min", "max", "bins")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = 0.0
        self.max = 0.0
        self.bins = [0] * FILL_BINS

    def add(self, fill: float) -> None:
        if self.count == 0 or fill < self.min:
            self.min = fill
        if fill > self.max:
            self.max = fill
        self.count += 1
        self.sum += fill
        if fill <= 0.0:
            idx = 0
        else:
            # fill in (i/FILL_BINS, (i+1)/FILL_BINS] -> bin i
            idx = min(FILL_BINS - 1, int((fill * FILL_BINS) - 1e-9))
        self.bins[idx] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max,
            "bins": list(self.bins),
        }


class DoctorReport:
    """Aggregate structural-health readout of one store or cluster.

    The byte ``components`` dict is an exact partition:
    ``total_bytes == sum(components.values())`` and, for a single store,
    ``total_bytes == store.nbytes(model)`` (plus WAL/attribute bytes at
    cluster level) — both equalities are pinned by ``tests/test_doctor.py``.
    """

    def __init__(self, scope: str, capacity: int) -> None:
        self.scope = scope  #: ``"store"`` or ``"cluster"``
        self.capacity = capacity
        self.num_trees = 0
        self.num_edges = 0
        self.num_leaves = 0  #: == number of FSTables
        self.num_internal = 0  #: == number of CSTables
        self.depth_hist: Dict[int, int] = {}
        self.fill = _FillStats()  #: every leaf
        self.fill_nonroot = _FillStats()  #: leaves of multi-node trees
        self.fanout_sum = 0
        #: Structural-update counters (summed ``OpStats``).
        self.counters: Dict[str, float] = {
            "leaf_ops": 0,
            "internal_ops": 0,
            "leaf_splits": 0,
            "internal_splits": 0,
            "merges": 0,
            "split_imbalance_sum": 0.0,
            "trees_rebuilt": 0,
            "trees_incremental": 0,
            "trees_created": 0,
        }
        self.directory_entries = 0
        self.directory_load_factor = 0.0
        self.cache_entries = 0
        self.cache_hit_rate = 0.0  #: worst single-shard rate (health signal)
        #: Raw snapshot-cache counters summed over shards — the exact
        #: aggregate rates the per-shard worst-rate above can't give.
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_admission_rejects = 0
        #: Frozen-shard occupancy (the CSC read images of
        #: :mod:`repro.core.frozen`): how many shards are compiled, how
        #: much of the graph they cover, and the worst epoch drift —
        #: drift past a store's staleness budget means the hot path is
        #: silently falling back to live samtree reads.
        self.frozen_shards = 0
        self.frozen_rows = 0
        self.frozen_edges = 0
        self.frozen_epoch_drift = 0
        #: Frozen read-path serving counters (summed ``FrozenStats``).
        self.frozen_vertices = 0
        self.frozen_missing = 0
        self.frozen_stale_misses = 0
        #: Cluster-scope serving readout: the client's ``ServingStats``
        #: dict (coalesce rate, hot reads, ...) — ``None`` at store scope.
        self.serving: Optional[Dict[str, object]] = None
        #: Online inference tier readout (``ServiceStats.to_dict`` of the
        #: cluster's attached ``InferenceService``) — ``None`` when no
        #: service is attached or at store scope.
        self.inference: Optional[Dict[str, float]] = None
        #: Hot-set top-k exemplars ``(src, count, error)``, hottest first.
        self.hot_top: List[Tuple[int, int, int]] = []
        self.hot_observations = 0
        self.components: Dict[str, int] = {}
        self.num_shards_seen = 0  #: live primaries walked (cluster scope)

    # ------------------------------------------------------------------
    # derived readouts
    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        """Exact sum of the per-component breakdown."""
        return sum(self.components.values())

    @property
    def max_depth(self) -> int:
        return max(self.depth_hist) if self.depth_hist else 0

    @property
    def mean_depth(self) -> float:
        if not self.num_trees:
            return 0.0
        return (
            sum(d * n for d, n in self.depth_hist.items()) / self.num_trees
        )

    @property
    def mean_fanout(self) -> float:
        """Mean children per internal node."""
        if not self.num_internal:
            return 0.0
        return self.fanout_sum / self.num_internal

    @property
    def mean_split_imbalance(self) -> float:
        """Mean α-Split pivot imbalance over every recorded leaf split."""
        splits = self.counters["leaf_splits"]
        if not splits:
            return 0.0
        return self.counters["split_imbalance_sum"] / splits

    @property
    def cache_hit_rate_aggregate(self) -> float:
        """Exact hit rate over every shard's raw counters."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def frozen_hit_rate(self) -> float:
        """Fraction of frozen-path frontier vertices served from a
        compiled row (misses = no frozen row for the vertex)."""
        total = self.frozen_vertices + self.frozen_missing
        return self.frozen_vertices / total if total else 0.0

    @property
    def check_fill(self) -> float:
        """The fill figure the ``fill=`` threshold gates on: mean
        *non-root* leaf fill when any exist (the occupancy band the
        paper bounds), else mean fill over all leaves."""
        if self.fill_nonroot.count:
            return self.fill_nonroot.mean
        return self.fill.mean

    # ------------------------------------------------------------------
    # ingestion (one tree at a time)
    # ------------------------------------------------------------------
    def observe_tree(self, tree) -> None:
        """Fold one samtree's structure into the aggregate."""
        self.num_trees += 1
        self.num_edges += tree.degree
        cap = tree.config.capacity
        height = tree.height
        self.depth_hist[height] = self.depth_hist.get(height, 0) + 1
        multi_node = height > 1
        for node, _depth in tree.iter_nodes():
            if node.is_leaf:
                self.num_leaves += 1
                fill = node.size / cap
                self.fill.add(fill)
                if multi_node:
                    self.fill_nonroot.add(fill)
            else:
                self.num_internal += 1
                self.fanout_sum += node.size

    def observe_counters(self, op_stats, ingest_stats=None) -> None:
        """Fold structural-update counters (``OpStats`` +
        ``IngestStats``) into the aggregate."""
        c = self.counters
        c["leaf_ops"] += op_stats.leaf_ops
        c["internal_ops"] += op_stats.internal_ops
        c["leaf_splits"] += op_stats.leaf_splits
        c["internal_splits"] += op_stats.internal_splits
        c["merges"] += op_stats.merges
        c["split_imbalance_sum"] += op_stats.split_imbalance_sum
        if ingest_stats is not None:
            c["trees_rebuilt"] += ingest_stats.trees_rebuilt
            c["trees_incremental"] += ingest_stats.trees_incremental
            c["trees_created"] += ingest_stats.trees_created

    def add_components(self, parts: Dict[str, int]) -> None:
        for name, nbytes in parts.items():
            self.components[name] = self.components.get(name, 0) + nbytes

    # ------------------------------------------------------------------
    # export: dict / human / registry
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-ready payload (``repro doctor --format json``)."""
        return {
            "scope": self.scope,
            "capacity": self.capacity,
            "num_trees": self.num_trees,
            "num_edges": self.num_edges,
            "num_leaves": self.num_leaves,
            "num_internal": self.num_internal,
            "num_fstables": self.num_leaves,
            "num_cstables": self.num_internal,
            "num_shards_seen": self.num_shards_seen,
            "depth": {
                "histogram": {
                    str(d): n for d, n in sorted(self.depth_hist.items())
                },
                "max": self.max_depth,
                "mean": self.mean_depth,
            },
            "fill": self.fill.to_dict(),
            "fill_nonroot": self.fill_nonroot.to_dict(),
            "mean_fanout": self.mean_fanout,
            "counters": dict(self.counters),
            "mean_split_imbalance": self.mean_split_imbalance,
            "directory": {
                "entries": self.directory_entries,
                "load_factor": self.directory_load_factor,
            },
            "snapshot_cache": {
                "entries": self.cache_entries,
                "hit_rate": self.cache_hit_rate,
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "hit_rate_aggregate": self.cache_hit_rate_aggregate,
                "admission_rejects": self.cache_admission_rejects,
            },
            "frozen": {
                "shards": self.frozen_shards,
                "rows": self.frozen_rows,
                "edges": self.frozen_edges,
                "coverage": (
                    self.frozen_edges / self.num_edges
                    if self.num_edges
                    else 0.0
                ),
                "max_epoch_drift": self.frozen_epoch_drift,
                "vertices_served": self.frozen_vertices,
                "missing_vertices": self.frozen_missing,
                "stale_misses": self.frozen_stale_misses,
                "hit_rate": self.frozen_hit_rate,
            },
            "serving": self.serving,
            "inference": self.inference,
            "hot_set": {
                "observations": self.hot_observations,
                "top": [
                    {"src": src, "count": count, "error": error}
                    for src, count, error in self.hot_top
                ],
            },
            "memory": {
                "components": dict(sorted(self.components.items())),
                "total_bytes": self.total_bytes,
            },
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render(self) -> str:
        """Human health report (the default ``repro doctor`` output)."""
        lines: List[str] = []
        lines.append(f"samtree doctor — scope={self.scope}")
        lines.append(
            f"  trees={self.num_trees}  edges={self.num_edges}  "
            f"capacity c={self.capacity}"
        )
        lines.append(
            f"  nodes: {self.num_leaves} leaves (FSTables) + "
            f"{self.num_internal} internal (CSTables)"
        )
        depth_parts = "  ".join(
            f"H={d}:{n}" for d, n in sorted(self.depth_hist.items())
        )
        lines.append(
            f"  depth: max={self.max_depth} mean={self.mean_depth:.2f}  "
            f"[{depth_parts}]"
        )
        for label, fs in (
            ("fill (all leaves)", self.fill),
            ("fill (non-root) ", self.fill_nonroot),
        ):
            if fs.count:
                lines.append(
                    f"  {label}: mean={fs.mean:.3f} "
                    f"min={fs.min:.3f} max={fs.max:.3f} n={fs.count}"
                )
            else:
                lines.append(f"  {label}: (none)")
        if self.fill.count:
            bars = []
            peak = max(self.fill.bins) or 1
            for i, n in enumerate(self.fill.bins):
                bar = "#" * max(1 if n else 0, round(8 * n / peak))
                bars.append(f"    ({i / FILL_BINS:.1f},"
                            f"{(i + 1) / FILL_BINS:.1f}] {n:>8} {bar}")
            lines.append("  fill histogram (all leaves):")
            lines.extend(bars)
        lines.append(f"  mean internal fan-out: {self.mean_fanout:.2f}")
        c = self.counters
        lines.append(
            "  updates: "
            f"leaf_ops={int(c['leaf_ops'])} "
            f"internal_ops={int(c['internal_ops'])} "
            f"leaf_splits={int(c['leaf_splits'])} "
            f"internal_splits={int(c['internal_splits'])} "
            f"merges={int(c['merges'])}"
        )
        lines.append(
            "  ingest: "
            f"rebuilt={int(c['trees_rebuilt'])} "
            f"incremental={int(c['trees_incremental'])} "
            f"created={int(c['trees_created'])}"
        )
        lines.append(
            f"  alpha-split pivot imbalance: "
            f"mean={self.mean_split_imbalance:.4f} "
            f"(0=perfect median, over {int(c['leaf_splits'])} splits)"
        )
        lines.append(
            f"  directory: entries={self.directory_entries} "
            f"load={self.directory_load_factor:.2f}"
        )
        lines.append(
            f"  snapshot cache: entries={self.cache_entries} "
            f"hit_rate={self.cache_hit_rate:.2f} "
            f"(aggregate={self.cache_hit_rate_aggregate:.2f}, "
            f"{self.cache_hits} hits / {self.cache_misses} misses, "
            f"admission_rejects={self.cache_admission_rejects})"
        )
        if self.frozen_vertices or self.frozen_missing:
            lines.append(
                f"  frozen serving: hit_rate={self.frozen_hit_rate:.2f} "
                f"({self.frozen_vertices} vertices, "
                f"{self.frozen_missing} missing, "
                f"{self.frozen_stale_misses} stale refusals)"
            )
        if self.serving is not None:
            s = self.serving
            lines.append(
                "  serving: "
                f"batches={int(s.get('batches', 0))} "
                f"sources={int(s.get('sources', 0))} "
                f"coalesce_rate={float(s.get('coalesce_rate', 0.0)):.2f} "
                f"hot_reads={int(s.get('hot_reads', 0))} "
                f"spread_reads={int(s.get('spread_reads', 0))}"
            )
        if self.inference is not None:
            i = self.inference
            lines.append(
                "  inference tier: "
                f"submitted={int(i.get('submitted', 0))} "
                f"fresh={int(i.get('answered_fresh', 0))} "
                f"degraded={int(i.get('answered_degraded', 0))} "
                f"failed={int(i.get('failed', 0))} "
                f"shed={int(i.get('shed_total', 0))} "
                f"missed={int(i.get('deadline_missed', 0))} "
                f"availability={float(i.get('availability', 1.0)):.2%}"
            )
        if self.hot_top:
            lines.append(
                f"  hot set (top {len(self.hot_top)} of "
                f"{self.hot_observations} observed reads):"
            )
            total = self.hot_observations or 1
            for src, count, error in self.hot_top:
                lines.append(
                    f"    src={src:<12} count={count:<8} "
                    f"(±{error}) {100.0 * count / total:5.1f}%"
                )
        if self.frozen_shards:
            coverage = (
                self.frozen_edges / self.num_edges if self.num_edges else 0.0
            )
            lines.append(
                f"  frozen shards: {self.frozen_shards} "
                f"({self.frozen_rows} rows, {self.frozen_edges} edges, "
                f"{coverage:.0%} of stored edges) "
                f"max_epoch_drift={self.frozen_epoch_drift}"
            )
        else:
            lines.append("  frozen shards: (none compiled)")
        lines.append("  memory breakdown:")
        total = self.total_bytes or 1
        for name, nbytes in sorted(
            self.components.items(), key=lambda kv: -kv[1]
        ):
            lines.append(
                f"    {name:<14} {humanize_bytes(nbytes):>10}  "
                f"{100.0 * nbytes / total:5.1f}%"
            )
        lines.append(
            f"    {'total':<14} {humanize_bytes(self.total_bytes):>10}"
        )
        return "\n".join(lines)

    def to_registry(
        self, registry: Optional[MetricsRegistry] = None
    ) -> MetricsRegistry:
        """Materialise the report as ``repro_doctor_*`` gauges.

        A fresh registry is used by default so the doctor's point-in-time
        gauges never collide with a live cluster registry; pass one in to
        co-export (names are distinct from every ``repro_<subsystem>_*``
        family PR 4 registers).
        """
        reg = registry if registry is not None else MetricsRegistry()
        g = reg.gauge
        g("repro_doctor_trees", "Samtrees walked").set(self.num_trees)
        g("repro_doctor_edges", "Edges stored").set(self.num_edges)
        g(
            "repro_doctor_leaf_nodes", "Leaf nodes (== FSTables)"
        ).set(self.num_leaves)
        g(
            "repro_doctor_internal_nodes", "Internal nodes (== CSTables)"
        ).set(self.num_internal)
        g("repro_doctor_depth_max", "Deepest tree height").set(self.max_depth)
        g("repro_doctor_depth_mean", "Mean tree height").set(self.mean_depth)
        for depth, n in sorted(self.depth_hist.items()):
            g(
                "repro_doctor_depth_trees",
                "Trees at each height",
                depth=depth,
            ).set(n)
        for scope_label, fs in (
            ("all", self.fill),
            ("nonroot", self.fill_nonroot),
        ):
            g(
                "repro_doctor_fill_mean",
                "Mean leaf fill factor",
                leaves=scope_label,
            ).set(fs.mean)
            g(
                "repro_doctor_fill_min",
                "Min leaf fill factor",
                leaves=scope_label,
            ).set(fs.min if fs.count else 0.0)
            for i, n in enumerate(fs.bins):
                g(
                    "repro_doctor_fill_leaves",
                    "Leaves per fill-factor bin (upper bound label)",
                    leaves=scope_label,
                    le=f"{(i + 1) / FILL_BINS:.1f}",
                ).set(n)
        g("repro_doctor_fanout_mean", "Mean internal fan-out").set(
            self.mean_fanout
        )
        for name, value in self.counters.items():
            g(
                "repro_doctor_updates",
                "Structural-update counters at diagnosis time",
                kind=name,
            ).set(value)
        g(
            "repro_doctor_split_imbalance_mean",
            "Mean alpha-split pivot imbalance (0 = perfect median)",
        ).set(self.mean_split_imbalance)
        g(
            "repro_doctor_directory_entries", "Cuckoo directory entries"
        ).set(self.directory_entries)
        g(
            "repro_doctor_directory_load_factor", "Cuckoo directory load"
        ).set(self.directory_load_factor)
        g(
            "repro_doctor_cache_entries", "Snapshot-cache entries"
        ).set(self.cache_entries)
        g(
            "repro_doctor_cache_hit_rate", "Snapshot-cache hit rate"
        ).set(self.cache_hit_rate)
        g(
            "repro_doctor_cache_hit_rate_aggregate",
            "Snapshot-cache hit rate over all shards' raw counters",
        ).set(self.cache_hit_rate_aggregate)
        g(
            "repro_doctor_cache_admission_rejects",
            "Cache fills refused by the frequency admission filter",
        ).set(self.cache_admission_rejects)
        g(
            "repro_doctor_frozen_hit_rate",
            "Frozen read path frontier hit rate",
        ).set(self.frozen_hit_rate)
        if self.serving is not None:
            g(
                "repro_doctor_serving_coalesce_rate",
                "Fraction of batched sample sources served by coalescing",
            ).set(float(self.serving.get("coalesce_rate", 0.0)))
            g(
                "repro_doctor_serving_hot_reads",
                "Reads routed through the hot-replica directory",
            ).set(float(self.serving.get("hot_reads", 0)))
        if self.inference is not None:
            g(
                "repro_doctor_inference_availability",
                "Fraction of serving-tier requests answered in deadline",
            ).set(float(self.inference.get("availability", 1.0)))
            g(
                "repro_doctor_inference_shed",
                "Serving-tier requests shed by admission control",
            ).set(float(self.inference.get("shed_total", 0)))
            g(
                "repro_doctor_inference_degraded",
                "Serving-tier requests answered from the stale cache",
            ).set(float(self.inference.get("answered_degraded", 0)))
        for rank, (src, count, _error) in enumerate(self.hot_top):
            g(
                "repro_doctor_hotset_count",
                "Decayed read count of the top-k hottest sources",
                rank=str(rank),
                src=str(src),
            ).set(count)
        g(
            "repro_doctor_frozen_shards", "Compiled frozen CSC shards"
        ).set(self.frozen_shards)
        g(
            "repro_doctor_frozen_rows", "Rows across frozen shards"
        ).set(self.frozen_rows)
        g(
            "repro_doctor_frozen_edges", "Edges across frozen shards"
        ).set(self.frozen_edges)
        g(
            "repro_doctor_frozen_epoch_drift",
            "Worst mutation-epoch drift of any frozen shard",
        ).set(self.frozen_epoch_drift)
        for name, nbytes in sorted(self.components.items()):
            g(
                "repro_doctor_component_bytes",
                "Modeled bytes by structural component",
                component=name,
            ).set(nbytes)
        g(
            "repro_doctor_total_bytes",
            "Sum of the component breakdown (== store nbytes)",
        ).set(self.total_bytes)
        return reg


# ---------------------------------------------------------------------------
# diagnosis entry points
# ---------------------------------------------------------------------------
def _observe_store(report: DoctorReport, store, model: MemoryModel) -> None:
    for _key, tree in store.iter_trees():
        report.observe_tree(tree)
    report.observe_counters(store.stats, getattr(store, "ingest_stats", None))
    directory = store.directory
    report.directory_entries += len(directory)
    # Cluster scope keeps the *max* shard load factor (skew indicator);
    # a single store just reports its own.
    report.directory_load_factor = max(
        report.directory_load_factor, directory.load_factor
    )
    cache = getattr(store, "snapshot_cache", None)
    if cache is not None:
        report.cache_entries += len(cache)
        # Worst (lowest) single-shard rate is the health signal; the raw
        # counters below give the exact aggregate alongside it.
        rate = cache.stats.hit_rate
        if report.num_shards_seen <= 1:
            report.cache_hit_rate = rate
        else:
            report.cache_hit_rate = min(report.cache_hit_rate, rate)
        report.cache_hits += cache.stats.hits
        report.cache_misses += cache.stats.misses
        report.cache_admission_rejects += getattr(
            cache.stats, "admission_rejects", 0
        )
    frozen_stats = getattr(store, "frozen_stats", None)
    if frozen_stats is not None:
        report.frozen_vertices += frozen_stats.vertices
        report.frozen_missing += frozen_stats.missing_vertices
        report.frozen_stale_misses += frozen_stats.stale_misses
    frozen = getattr(store, "frozen_shards", None)
    if frozen:
        epoch = getattr(store, "mutation_epoch", 0)
        for shard in frozen:
            report.frozen_shards += 1
            report.frozen_rows += shard.num_rows
            report.frozen_edges += shard.num_edges
            report.frozen_epoch_drift = max(
                report.frozen_epoch_drift, epoch - shard.epoch
            )
    report.add_components(store.nbytes_breakdown(model))


def diagnose_store(
    store, model: MemoryModel = DEFAULT_MEMORY_MODEL
) -> DoctorReport:
    """Walk one :class:`DynamicGraphStore` into a :class:`DoctorReport`.

    ``report.total_bytes == store.nbytes(model)`` exactly — both sides
    are the same component sum.
    """
    report = DoctorReport("store", store.config.capacity)
    report.num_shards_seen = 1
    _observe_store(report, store, model)
    return report


def diagnose_cluster(
    cluster, model: MemoryModel = DEFAULT_MEMORY_MODEL
) -> DoctorReport:
    """Walk every live *primary* replica of a ``LocalCluster``.

    Matches :meth:`LocalCluster.total_nbytes` semantics (primaries only,
    comparable across replication factors); adds ``attributes`` and
    ``wal`` byte components on top of the store breakdown, so
    ``total_bytes == cluster.total_nbytes(model) + Σ wal bytes`` on a
    fully-live cluster.
    """
    capacity = 0
    for server in cluster.servers:
        if server.alive and server.store is not None:
            capacity = server.store.config.capacity
            break
    report = DoctorReport("cluster", capacity)
    attr_bytes = 0
    wal_bytes = 0
    for server in cluster.servers:
        if not server.alive or server.store is None:
            continue
        report.num_shards_seen += 1
        _observe_store(report, server.store, model)
        attributes = getattr(server, "attributes", None)
        if attributes is not None:
            attr_bytes += attributes.nbytes()
        wal = getattr(server, "wal", None)
        if wal is not None:
            wal_bytes += wal.nbytes
    report.add_components({"attributes": attr_bytes, "wal": wal_bytes})
    serving = getattr(getattr(cluster, "client", None), "serving_stats", None)
    if serving is not None:
        report.serving = serving.to_dict()
    inference = getattr(cluster, "inference_service", None)
    if inference is not None:
        report.inference = inference.stats.to_dict()
    tracker = getattr(cluster, "hot_tracker", None)
    if tracker is not None:
        report.hot_observations = tracker.stats.observations
        report.hot_top = [
            (int(e.src), int(e.count), int(e.error))
            for e in tracker.top(10)
        ]
    return report


def diagnose(target, model: MemoryModel = DEFAULT_MEMORY_MODEL) -> DoctorReport:
    """Dispatch on the target's shape: store or cluster."""
    if hasattr(target, "iter_trees"):
        return diagnose_store(target, model)
    if hasattr(target, "replica_groups"):
        return diagnose_cluster(target, model)
    raise ConfigurationError(
        f"doctor cannot diagnose a {type(target).__name__}; expected a "
        f"DynamicGraphStore or LocalCluster"
    )


# ---------------------------------------------------------------------------
# threshold gate (``--fail-on``)
# ---------------------------------------------------------------------------
_BYTE_SUFFIXES = {
    "kb": 1 << 10,
    "mb": 1 << 20,
    "gb": 1 << 30,
    "tb": 1 << 40,
    "b": 1,
}


def _parse_bytes(text: str) -> float:
    low = text.strip().lower()
    for suffix, mult in _BYTE_SUFFIXES.items():
        if low.endswith(suffix):
            return float(low[: -len(suffix)]) * mult
    return float(low)


def parse_fail_on(spec: str) -> List[Tuple[str, float]]:
    """Parse ``"fill=0.4,depth=4"`` into ``[(key, bound), ...]``.

    Known keys: ``fill`` (lower bound on mean non-root leaf fill),
    ``depth`` (upper bound on max height), ``imbalance`` (upper bound on
    mean α-Split pivot imbalance), ``bytes`` (upper bound on total
    modeled bytes; accepts ``64MB``-style suffixes).
    """
    checks: List[Tuple[str, float]] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ConfigurationError(
                f"--fail-on entries must be key=value, got {part!r}"
            )
        key, _, raw = part.partition("=")
        key = key.strip().lower()
        if key == "bytes":
            value = _parse_bytes(raw)
        else:
            try:
                value = float(raw)
            except ValueError:
                raise ConfigurationError(
                    f"--fail-on {key} needs a number, got {raw!r}"
                )
        if key not in ("fill", "depth", "imbalance", "bytes"):
            raise ConfigurationError(
                f"unknown --fail-on key {key!r}; expected "
                f"fill|depth|imbalance|bytes"
            )
        checks.append((key, value))
    return checks


def check_thresholds(
    report: DoctorReport, checks: Iterable[Tuple[str, float]]
) -> List[str]:
    """Evaluate parsed ``--fail-on`` checks; return violation strings.

    Empty list == healthy.  ``fill`` is a *lower* bound (occupancy must
    not rot below it); the rest are upper bounds.
    """
    violations: List[str] = []
    for key, bound in checks:
        if key == "fill":
            actual = report.check_fill
            if actual < bound:
                violations.append(
                    f"fill: mean non-root leaf fill {actual:.3f} "
                    f"< bound {bound:.3f}"
                )
        elif key == "depth":
            actual = report.max_depth
            if actual > bound:
                violations.append(
                    f"depth: max tree height {actual} > bound {bound:g}"
                )
        elif key == "imbalance":
            actual = report.mean_split_imbalance
            if actual > bound:
                violations.append(
                    f"imbalance: mean split imbalance {actual:.4f} "
                    f"> bound {bound:.4f}"
                )
        elif key == "bytes":
            actual = report.total_bytes
            if actual > bound:
                violations.append(
                    f"bytes: total {humanize_bytes(actual)} "
                    f"> bound {humanize_bytes(bound)}"
                )
    return violations
