"""Unified telemetry layer: metrics registry, request tracing, exporters.

The paper's production claim — PlatoD2GL serving WeChat live-streaming
GNN training under continuous churn — rests on the system being able to
*see itself*: per-operation tail latencies, shard skew, retry storms,
cache-hit decay.  This package is the cross-cutting layer every
subsystem reports into:

* :mod:`repro.obs.hist` — the log₂ :class:`LatencyHistogram` (moved
  from ``repro.core.metrics``), with exact bucket bounds, merge, and
  snapshot state;
* :mod:`repro.obs.registry` — a :class:`MetricsRegistry` of named
  counters, gauges, and histograms with labels, plus *views* over the
  legacy ``*Stats`` holders (pull-based, so hot paths keep their plain
  attribute increments and pay **zero** collection cost until a
  snapshot or export materialises them);
* :mod:`repro.obs.trace` — structured tracing: a :class:`Tracer`
  producing span trees (trace/span/parent ids, wall or simulated
  clocks, tags) with head-based sampling and a slow-trace ring buffer;
* :mod:`repro.obs.export` — Prometheus text exposition, JSON dump, and
  the exposition-format linter CI uses;
* :mod:`repro.obs.report` — the human ``repro obs`` report (per-shard
  skew table, top-k slow traces, cache/retry/WAL counters);
* :mod:`repro.obs.instrument` — helpers registering every legacy
  ``*Stats`` holder (``OpStats``, ``ServerStats``, ``NetworkStats``,
  ``RetryStats``, ``FaultStats``, ``IngestStats``,
  ``SnapshotCacheStats``) into one shared registry;
* :mod:`repro.obs.doctor` — the samtree doctor: structural-health
  diagnosis (depth/fill histograms, α-Split pivot quality, FSTable vs
  CSTable counts) plus the per-component memory breakdown whose sum
  equals the store's ``nbytes()`` (DESIGN.md §12);
* :mod:`repro.obs.profile` — the opt-in layer-attributed deterministic
  profiler and the :func:`~repro.obs.profile.observe` helper that
  records histogram exemplars (trace id + args digest of the slowest
  op per bucket);
* :mod:`repro.obs.monitor` — continuous monitoring: a
  :class:`TimeSeriesStore` scraping the registry on the (simulated)
  clock with PromQL-flavored window queries (``rate``, ``increase``,
  ``avg/max_over_time``, ``quantile_over_time`` via windowed histogram
  state subtraction) and counter-reset correction, driven by a
  :class:`Monitor` scrape loop (DESIGN.md §16);
* :mod:`repro.obs.alerts` — multi-window multi-burn-rate SLO rules and
  threshold rules with the pending→firing→resolved lifecycle and an
  event timeline (:class:`AlertManager`);
* :mod:`repro.obs.critical` — critical-path analysis over tracer span
  trees: the self-time segments that bound a request's end-to-end
  duration, aggregated into a per-layer table
  (:func:`analyze_critical_paths`).
"""

from repro.obs.alerts import (
    Alert,
    AlertEvent,
    AlertManager,
    AlertRule,
    BurnRateRule,
    ThresholdRule,
    default_serving_rules,
)
from repro.obs.critical import (
    CriticalPathReport,
    CriticalSegment,
    analyze_critical_paths,
    critical_path,
    layer_for,
)
from repro.obs.doctor import (
    DoctorReport,
    check_thresholds,
    diagnose,
    diagnose_cluster,
    diagnose_store,
    parse_fail_on,
)
from repro.obs.export import (
    PrometheusFormatError,
    lint_prometheus,
    to_json,
    to_prometheus_text,
)
from repro.obs.hist import Exemplar, LatencyHistogram
from repro.obs.instrument import (
    register_cluster,
    register_stats,
    register_store,
)
from repro.obs.monitor import Monitor, TimeSeriesStore
from repro.obs.profile import LayerProfiler, args_digest, observe
from repro.obs.registry import (
    Counter,
    Gauge,
    MetricsRegistry,
    RegistrySnapshot,
)
from repro.obs.report import render_report
from repro.obs.trace import Span, Tracer

__all__ = [
    "Alert",
    "AlertEvent",
    "AlertManager",
    "AlertRule",
    "BurnRateRule",
    "Counter",
    "CriticalPathReport",
    "CriticalSegment",
    "DoctorReport",
    "Exemplar",
    "Gauge",
    "LatencyHistogram",
    "LayerProfiler",
    "MetricsRegistry",
    "Monitor",
    "PrometheusFormatError",
    "RegistrySnapshot",
    "Span",
    "ThresholdRule",
    "TimeSeriesStore",
    "Tracer",
    "analyze_critical_paths",
    "args_digest",
    "check_thresholds",
    "critical_path",
    "default_serving_rules",
    "diagnose",
    "diagnose_cluster",
    "diagnose_store",
    "layer_for",
    "lint_prometheus",
    "observe",
    "parse_fail_on",
    "register_cluster",
    "register_stats",
    "register_store",
    "render_report",
    "to_json",
    "to_prometheus_text",
]
