"""Unified telemetry layer: metrics registry, request tracing, exporters.

The paper's production claim — PlatoD2GL serving WeChat live-streaming
GNN training under continuous churn — rests on the system being able to
*see itself*: per-operation tail latencies, shard skew, retry storms,
cache-hit decay.  This package is the cross-cutting layer every
subsystem reports into:

* :mod:`repro.obs.hist` — the log₂ :class:`LatencyHistogram` (moved
  from ``repro.core.metrics``), with exact bucket bounds, merge, and
  snapshot state;
* :mod:`repro.obs.registry` — a :class:`MetricsRegistry` of named
  counters, gauges, and histograms with labels, plus *views* over the
  legacy ``*Stats`` holders (pull-based, so hot paths keep their plain
  attribute increments and pay **zero** collection cost until a
  snapshot or export materialises them);
* :mod:`repro.obs.trace` — structured tracing: a :class:`Tracer`
  producing span trees (trace/span/parent ids, wall or simulated
  clocks, tags) with head-based sampling and a slow-trace ring buffer;
* :mod:`repro.obs.export` — Prometheus text exposition, JSON dump, and
  the exposition-format linter CI uses;
* :mod:`repro.obs.report` — the human ``repro obs`` report (per-shard
  skew table, top-k slow traces, cache/retry/WAL counters);
* :mod:`repro.obs.instrument` — helpers registering every legacy
  ``*Stats`` holder (``OpStats``, ``ServerStats``, ``NetworkStats``,
  ``RetryStats``, ``FaultStats``, ``IngestStats``,
  ``SnapshotCacheStats``) into one shared registry.
"""

from repro.obs.export import (
    PrometheusFormatError,
    lint_prometheus,
    to_json,
    to_prometheus_text,
)
from repro.obs.hist import LatencyHistogram
from repro.obs.instrument import (
    register_cluster,
    register_stats,
    register_store,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    MetricsRegistry,
    RegistrySnapshot,
)
from repro.obs.report import render_report
from repro.obs.trace import Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "PrometheusFormatError",
    "RegistrySnapshot",
    "Span",
    "Tracer",
    "lint_prometheus",
    "register_cluster",
    "register_stats",
    "register_store",
    "render_report",
    "to_json",
    "to_prometheus_text",
]
