"""Unified telemetry layer: metrics registry, request tracing, exporters.

The paper's production claim — PlatoD2GL serving WeChat live-streaming
GNN training under continuous churn — rests on the system being able to
*see itself*: per-operation tail latencies, shard skew, retry storms,
cache-hit decay.  This package is the cross-cutting layer every
subsystem reports into:

* :mod:`repro.obs.hist` — the log₂ :class:`LatencyHistogram` (moved
  from ``repro.core.metrics``), with exact bucket bounds, merge, and
  snapshot state;
* :mod:`repro.obs.registry` — a :class:`MetricsRegistry` of named
  counters, gauges, and histograms with labels, plus *views* over the
  legacy ``*Stats`` holders (pull-based, so hot paths keep their plain
  attribute increments and pay **zero** collection cost until a
  snapshot or export materialises them);
* :mod:`repro.obs.trace` — structured tracing: a :class:`Tracer`
  producing span trees (trace/span/parent ids, wall or simulated
  clocks, tags) with head-based sampling and a slow-trace ring buffer;
* :mod:`repro.obs.export` — Prometheus text exposition, JSON dump, and
  the exposition-format linter CI uses;
* :mod:`repro.obs.report` — the human ``repro obs`` report (per-shard
  skew table, top-k slow traces, cache/retry/WAL counters);
* :mod:`repro.obs.instrument` — helpers registering every legacy
  ``*Stats`` holder (``OpStats``, ``ServerStats``, ``NetworkStats``,
  ``RetryStats``, ``FaultStats``, ``IngestStats``,
  ``SnapshotCacheStats``) into one shared registry;
* :mod:`repro.obs.doctor` — the samtree doctor: structural-health
  diagnosis (depth/fill histograms, α-Split pivot quality, FSTable vs
  CSTable counts) plus the per-component memory breakdown whose sum
  equals the store's ``nbytes()`` (DESIGN.md §12);
* :mod:`repro.obs.profile` — the opt-in layer-attributed deterministic
  profiler and the :func:`~repro.obs.profile.observe` helper that
  records histogram exemplars (trace id + args digest of the slowest
  op per bucket);
* :mod:`repro.obs.monitor` — continuous monitoring: a
  :class:`TimeSeriesStore` scraping the registry on the (simulated)
  clock with PromQL-flavored window queries (``rate``, ``increase``,
  ``avg/max_over_time``, ``quantile_over_time`` via windowed histogram
  state subtraction) and counter-reset correction, driven by a
  :class:`Monitor` scrape loop (DESIGN.md §16);
* :mod:`repro.obs.alerts` — multi-window multi-burn-rate SLO rules and
  threshold rules with the pending→firing→resolved lifecycle and an
  event timeline (:class:`AlertManager`);
* :mod:`repro.obs.critical` — critical-path analysis over tracer span
  trees: the self-time segments that bound a request's end-to-end
  duration, aggregated into a per-layer table
  (:func:`analyze_critical_paths`);
* :mod:`repro.obs.flight` — the flight recorder: bounded, preallocated
  per-category ring buffers of cheap structured events (admission
  decisions, breaker transitions, fault injections, retries, WAL
  activity, replica drops, migration cutovers, alert transitions,
  chaos schedule), appended on the simulated clock by hooks in every
  layer (DESIGN.md §17);
* :mod:`repro.obs.incident` — alert-triggered incident bundles: the
  recorder rings + metrics snapshot/window diff + series windows +
  slow traces + doctor digest + scenario spec/seeds, frozen at the
  firing instant and serialized as JSON bundle directories;
* :mod:`repro.obs.replay` — deterministic replay: rebuild the rig from
  a bundle's spec, re-run the captured window, and verify the same
  alert fires at the same simulated instant with a matching event
  stream.
"""

from repro.obs.alerts import (
    Alert,
    AlertEvent,
    AlertManager,
    AlertRule,
    BurnRateRule,
    ThresholdRule,
    default_serving_rules,
)
from repro.obs.critical import (
    CriticalPathReport,
    CriticalSegment,
    analyze_critical_paths,
    critical_path,
    layer_for,
)
from repro.obs.doctor import (
    DoctorReport,
    check_thresholds,
    diagnose,
    diagnose_cluster,
    diagnose_store,
    parse_fail_on,
)
from repro.obs.export import (
    PrometheusFormatError,
    lint_prometheus,
    to_json,
    to_prometheus_text,
)
from repro.obs.flight import EventRing, FlightRecorder
from repro.obs.hist import Exemplar, LatencyHistogram
from repro.obs.incident import (
    IncidentManager,
    list_bundles,
    load_bundle,
    write_bundle,
)
from repro.obs.instrument import (
    register_cluster,
    register_stats,
    register_store,
)
from repro.obs.monitor import Monitor, TimeSeriesStore
from repro.obs.profile import LayerProfiler, args_digest, observe
from repro.obs.registry import (
    Counter,
    Gauge,
    MetricsRegistry,
    RegistrySnapshot,
)
from repro.obs.replay import (
    ReplayResult,
    build_rig_from_spec,
    make_spec,
    replay_bundle,
    scenario_from_spec,
)
from repro.obs.report import render_report
from repro.obs.trace import Span, Tracer

__all__ = [
    "Alert",
    "AlertEvent",
    "AlertManager",
    "AlertRule",
    "BurnRateRule",
    "Counter",
    "CriticalPathReport",
    "CriticalSegment",
    "DoctorReport",
    "EventRing",
    "Exemplar",
    "FlightRecorder",
    "Gauge",
    "IncidentManager",
    "LatencyHistogram",
    "LayerProfiler",
    "MetricsRegistry",
    "Monitor",
    "PrometheusFormatError",
    "RegistrySnapshot",
    "ReplayResult",
    "Span",
    "ThresholdRule",
    "TimeSeriesStore",
    "Tracer",
    "analyze_critical_paths",
    "args_digest",
    "build_rig_from_spec",
    "check_thresholds",
    "critical_path",
    "default_serving_rules",
    "diagnose",
    "diagnose_cluster",
    "diagnose_store",
    "layer_for",
    "lint_prometheus",
    "list_bundles",
    "load_bundle",
    "make_spec",
    "observe",
    "parse_fail_on",
    "register_cluster",
    "register_stats",
    "register_store",
    "render_report",
    "replay_bundle",
    "scenario_from_spec",
    "to_json",
    "to_prometheus_text",
    "write_bundle",
]
