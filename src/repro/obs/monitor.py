"""Continuous monitoring: time-series scraping over the metrics registry.

PR 4's telemetry is point-in-time — a snapshot or an export shows where
the counters *are*, not how they got there.  This module adds the
missing axis: a :class:`TimeSeriesStore` scrapes the registry on the
cluster's (simulated) clock at a fixed interval, keeps a bounded ring of
points per series, and answers PromQL-flavored window queries:

* ``rate()`` / ``increase()`` over counters, with **counter-reset
  detection** — a value that goes backwards (``reset_stats``, a crashed
  holder) folds the pre-reset total into a per-series offset so the
  cumulative adjusted series stays monotone and windows spanning a
  reset stay correct (the PromQL adjustment, not the clamp
  :meth:`~repro.obs.registry.RegistrySnapshot.diff` applies);
* ``avg_over_time()`` / ``max_over_time()`` / ``min_over_time()`` over
  any scalar series;
* ``quantile_over_time()`` over histogram series — the scrape stores
  full :meth:`~repro.obs.hist.LatencyHistogram.state` tuples, a window
  query subtracts the state at the window start from the state at its
  end and rehydrates the delta through
  :meth:`~repro.obs.hist.LatencyHistogram.from_state`, so windowed
  quantiles reuse the exact ``merge``/``bucket_bounds`` machinery the
  registry already trusts.

A :class:`Monitor` owns one store plus an optional
:class:`~repro.obs.alerts.AlertManager`, schedules scrapes through
``next_due()``/``poll()`` (the scenario runner stops the simulated
clock at every due scrape, exactly as it stops at batch-flush windows),
and evaluates alert rules after each scrape.  All state is plain Python
on the injected clock — a monitored scenario is as deterministic as an
unmonitored one.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs.hist import LatencyHistogram

__all__ = ["Monitor", "TimeSeriesStore"]

#: One histogram scrape state: ``(buckets, count, sum, max)``.
HistState = Tuple[Tuple[int, ...], int, float, float]

_ZERO_HIST: HistState = ((0,) * 24, 0, 0.0, 0.0)


def _add_states(a: HistState, b: HistState) -> HistState:
    return (
        tuple(x + y for x, y in zip(a[0], b[0])),
        a[1] + b[1],
        a[2] + b[2],
        max(a[3], b[3]),
    )


def _sub_states(end: HistState, start: HistState) -> HistState:
    """``end - start`` bucket-wise; max keeps the end-of-window value
    (a per-window max would need per-window state the registry does not
    keep — same documented caveat as ``RegistrySnapshot.diff``)."""
    return (
        tuple(max(0, x - y) for x, y in zip(end[0], start[0])),
        max(0, end[1] - start[1]),
        max(0.0, end[2] - start[2]),
        end[3],
    )


class TimeSeriesStore:
    """Bounded per-series rings of scraped registry values.

    Parameters
    ----------
    registry:
        The :class:`~repro.obs.registry.MetricsRegistry` to scrape.
    clock:
        Time source for point timestamps (``NetworkModel.now`` on a
        cluster; defaults to ``time.perf_counter``).
    max_points:
        Ring capacity per series — memory stays O(series × max_points)
        no matter how long the deployment runs.
    name_filter:
        Optional sequence of name prefixes; only series whose canonical
        key starts with one of them is scraped (bounds scrape cost on
        very wide registries).
    """

    def __init__(
        self,
        registry,
        clock: Optional[Callable[[], float]] = None,
        max_points: int = 4096,
        name_filter: Optional[Sequence[str]] = None,
    ) -> None:
        if max_points < 2:
            raise ConfigurationError("max_points must be >= 2")
        self.registry = registry
        self.clock = clock if clock is not None else time.perf_counter
        self.max_points = max_points
        self.name_filter = tuple(name_filter) if name_filter else None
        #: Adjusted (reset-corrected, monotone for counters) scalars.
        self._scalars: Dict[str, Deque[Tuple[float, float]]] = {}
        #: Adjusted histogram states.
        self._hists: Dict[str, Deque[Tuple[float, HistState]]] = {}
        self._kinds: Dict[str, str] = {}
        self._last_raw: Dict[str, float] = {}
        self._offset: Dict[str, float] = {}
        self._last_raw_hist: Dict[str, HistState] = {}
        self._offset_hist: Dict[str, HistState] = {}
        #: Per-series reset counts (counter went backwards at a scrape).
        self.resets: Dict[str, int] = {}
        self.scrapes = 0
        self.last_scrape_at: Optional[float] = None
        self._point_count = 0

    # ------------------------------------------------------------------
    # scraping
    # ------------------------------------------------------------------
    def scrape(self, now: Optional[float] = None) -> float:
        """Materialise the registry once; returns the scrape timestamp.

        This is the monitoring hot path — it runs every interval on the
        same thread as the serving loop, so it works off hoisted locals
        and pushes ``name_filter`` down into the registry snapshot
        (unwanted view callbacks are never invoked).
        ``bench_monitoring`` gates the cost.
        """
        t = self.clock() if now is None else float(now)
        snap = self.registry.snapshot(prefixes=self.name_filter)
        kinds = self._kinds
        snap_kinds = snap.kinds
        last_raw = self._last_raw
        offsets = self._offset
        scalars = self._scalars
        max_points = self.max_points
        full = max_points  # a full ring drops a point per append
        added = 0
        for key, value in snap.scalars.items():
            kind = snap_kinds.get(key, "untyped")
            kinds[key] = kind
            if kind == "counter":
                last = last_raw.get(key)
                if last is not None and value < last:
                    # Reset: fold the pre-reset total into the offset so
                    # the adjusted cumulative series stays monotone.
                    offsets[key] = offsets.get(key, 0.0) + last
                    self.resets[key] = self.resets.get(key, 0) + 1
                last_raw[key] = value
                adjusted = value + offsets.get(key, 0.0)
            else:
                adjusted = value
            ring = scalars.get(key)
            if ring is None:
                ring = scalars[key] = deque(maxlen=max_points)
            if len(ring) < full:
                added += 1
            ring.append((t, adjusted))
        last_raw_hist = self._last_raw_hist
        offset_hist = self._offset_hist
        hists = self._hists
        for key, state in snap.histograms.items():
            kinds[key] = "histogram"
            last = last_raw_hist.get(key)
            if last is not None and state[1] < last[1]:
                offset_hist[key] = _add_states(
                    offset_hist.get(key, _ZERO_HIST), last
                )
                self.resets[key] = self.resets.get(key, 0) + 1
            last_raw_hist[key] = state
            offset = offset_hist.get(key)
            adjusted_state = (
                state if offset is None else _add_states(offset, state)
            )
            hring = hists.get(key)
            if hring is None:
                hring = hists[key] = deque(maxlen=max_points)
            if len(hring) < full:
                added += 1
            hring.append((t, adjusted_state))
        self._point_count += added
        self.scrapes += 1
        self.last_scrape_at = t
        return t

    # ------------------------------------------------------------------
    # series readout
    # ------------------------------------------------------------------
    def series_names(self) -> List[str]:
        return sorted(set(self._scalars) | set(self._hists))

    def kind_of(self, key: str) -> str:
        return self._kinds.get(key, "untyped")

    @property
    def num_series(self) -> int:
        return len(self._scalars) + len(self._hists)

    @property
    def num_points(self) -> int:
        # Maintained incrementally: this feeds the monitor's own
        # ``repro_monitor_points`` view, which is read on every scrape —
        # summing ring lengths would make each scrape O(series) twice.
        return self._point_count

    @property
    def resets_total(self) -> int:
        return sum(self.resets.values())

    def points(self, key: str) -> List[Tuple[float, float]]:
        """Raw ``(t, adjusted value)`` points of one scalar series."""
        return list(self._scalars.get(key, ()))

    def latest(self, key: str, default: float = 0.0) -> float:
        ring = self._scalars.get(key)
        return ring[-1][1] if ring else default

    # ------------------------------------------------------------------
    # window selection helpers
    # ------------------------------------------------------------------
    def _window_points(
        self, ring, window: float, at: Optional[float]
    ) -> List[Tuple[float, object]]:
        end = at if at is not None else (
            self.last_scrape_at if self.last_scrape_at is not None else 0.0
        )
        lo = end - window
        # Reverse scan: a window covers the newest few points of a ring
        # that may hold thousands, so walk back from the end and stop at
        # the window edge instead of filtering the whole ring.
        out: List[Tuple[float, object]] = []
        for t, v in reversed(ring):
            if t > end:
                continue
            if t <= lo:
                break
            out.append((t, v))
        out.reverse()
        return out

    def _window_delta(
        self, ring, window: float, at: Optional[float]
    ) -> Optional[Tuple[float, float, object, object]]:
        """``(t_base, t_end, v_base, v_end)`` for a cumulative series.

        The baseline is the last point at or before the window start
        (PromQL's "looking back"); a series younger than the window
        falls back to its earliest in-window point (partial window).
        Returns ``None`` with fewer than two usable points.
        """
        if not ring:
            return None
        end = at if at is not None else ring[-1][0]
        lo = end - window
        base = None
        last = None
        # Reverse scan (see _window_points): the first point at or
        # before the window start, walking backwards, IS the last point
        # before the window — stop there.
        for t, v in reversed(ring):
            if t > end:
                continue
            if last is None:
                last = (t, v)
            base = (t, v)
            if t <= lo:
                break
        if base is None or last is None or last[0] <= base[0]:
            return None
        return (base[0], last[0], base[1], last[1])

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def increase(
        self, key: str, window: float, at: Optional[float] = None
    ) -> float:
        """Counter growth over the trailing window (reset-corrected)."""
        delta = self._window_delta(self._scalars.get(key, ()), window, at)
        if delta is None:
            return 0.0
        return max(0.0, float(delta[3]) - float(delta[2]))

    def rate(
        self, key: str, window: float, at: Optional[float] = None
    ) -> float:
        """Per-second counter rate over the *covered* part of the window
        (a series younger than the window answers over what it has)."""
        delta = self._window_delta(self._scalars.get(key, ()), window, at)
        if delta is None:
            return 0.0
        covered = delta[1] - delta[0]
        if covered <= 0:
            return 0.0
        return max(0.0, float(delta[3]) - float(delta[2])) / covered

    def avg_over_time(
        self, key: str, window: float, at: Optional[float] = None
    ) -> float:
        pts = self._window_points(self._scalars.get(key, ()), window, at)
        if not pts:
            return 0.0
        return sum(float(v) for _, v in pts) / len(pts)

    def max_over_time(
        self, key: str, window: float, at: Optional[float] = None
    ) -> float:
        pts = self._window_points(self._scalars.get(key, ()), window, at)
        return max((float(v) for _, v in pts), default=0.0)

    def min_over_time(
        self, key: str, window: float, at: Optional[float] = None
    ) -> float:
        pts = self._window_points(self._scalars.get(key, ()), window, at)
        return min((float(v) for _, v in pts), default=0.0)

    def window_histogram(
        self, key: str, window: float, at: Optional[float] = None
    ) -> LatencyHistogram:
        """The histogram of observations recorded inside the window."""
        delta = self._window_delta(self._hists.get(key, ()), window, at)
        if delta is None:
            return LatencyHistogram()
        return LatencyHistogram.from_state(_sub_states(delta[3], delta[2]))

    def quantile_over_time(
        self, q: float, key: str, window: float, at: Optional[float] = None
    ) -> float:
        """Quantile of the observations recorded inside the window."""
        return self.window_histogram(key, window, at).percentile(q)


class Monitor:
    """A scrape loop plus alert evaluation on an injectable clock.

    ``next_due()`` / ``poll()`` mirror the service's
    ``next_flush_at()`` / ``poll()`` pair so a single-threaded driver
    (the :class:`~repro.serving.scenarios.ScenarioRunner`) can stop the
    simulated clock at every scrape instant.  After each scrape the
    attached :class:`~repro.obs.alerts.AlertManager` (if any) evaluates
    its rules against the freshly extended series.
    """

    def __init__(
        self,
        registry,
        clock: Optional[Callable[[], float]] = None,
        interval: float = 0.05,
        alerts=None,
        max_points: int = 4096,
        name_filter: Optional[Sequence[str]] = None,
    ) -> None:
        if interval <= 0:
            raise ConfigurationError("scrape interval must be > 0")
        self.store = TimeSeriesStore(
            registry,
            clock=clock,
            max_points=max_points,
            name_filter=name_filter,
        )
        self.clock = self.store.clock
        self.interval = interval
        self.alerts = alerts
        self._next_due: Optional[float] = None

    def next_due(self) -> float:
        """Clock time of the next scheduled scrape (first call: now)."""
        if self._next_due is None:
            self._next_due = self.clock()
        return self._next_due

    def poll(self, now: Optional[float] = None) -> bool:
        """Scrape iff the interval has elapsed; returns whether it did.

        The next due time is anchored at the *actual* scrape time, so a
        driver that fell behind does not trigger a catch-up storm.
        """
        t = self.clock() if now is None else float(now)
        if t < self.next_due():
            return False
        self.scrape(t)
        return True

    def scrape(self, now: Optional[float] = None) -> float:
        """Unconditional scrape + alert evaluation (poll's slow half)."""
        t = self.store.scrape(now)
        self._next_due = t + self.interval
        if self.alerts is not None:
            self.alerts.evaluate(self.store, t)
        return t

    # -- convenience readouts used by CLI/report code -------------------
    @property
    def scrapes(self) -> int:
        return self.store.scrapes

    def firing(self):
        """Currently-firing alerts (empty without an AlertManager)."""
        return self.alerts.firing() if self.alerts is not None else []
