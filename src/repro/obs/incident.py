"""Incident bundles: alert-triggered snapshots of a serving rig.

An :class:`IncidentManager` turns a firing alert into a frozen,
self-describing **incident bundle**: the flight recorder's event rings,
the metrics registry at the instant of capture plus its windowed deltas
over the alert's binding window, the relevant time-series windows, the
slowest trace trees, a doctor digest, and — crucially — the scenario
spec and seeds that produced the run.  Because the whole stack runs on
a seeded simulated clock, that spec is sufficient for
:mod:`repro.obs.replay` to re-execute the captured window and verify
the same alert fires at the same simulated instant with the same event
stream — every incident is a deterministic regression test.

Triggers:

* **alert** — the manager subscribes to an
  :class:`~repro.obs.alerts.AlertManager` (:meth:`watch`) and captures
  on every ``firing`` transition, subject to a per-rule simulated-time
  ``cooldown`` so a flapping alert can't spam bundles;
* **manual** — :meth:`trigger` captures on demand (an operator's
  "grab me the state now");
* **exception** — :meth:`capture_exception` (or the :meth:`guard`
  context manager) captures when driver code blows up mid-run.

Bundles live in memory (``manager.incidents``) and, when ``out_dir`` is
set, as JSON bundle directories (one file per section) that
``repro incidents`` lists and ``repro replay`` consumes.
"""

from __future__ import annotations

import json
import os
import traceback
from contextlib import contextmanager
from typing import Dict, List, Optional

from repro.errors import ConfigurationError

__all__ = [
    "BUNDLE_SECTIONS",
    "IncidentManager",
    "list_bundles",
    "load_bundle",
    "write_bundle",
]

#: The files of a bundle directory (section name -> file name).
BUNDLE_SECTIONS = (
    "meta",
    "spec",
    "events",
    "metrics",
    "series",
    "traces",
    "doctor",
)

#: Fallback metrics/series window (simulated seconds) when the trigger
#: carries no rule (manual/exception captures).
DEFAULT_WINDOW = 1.0


def _binding_window(rule) -> float:
    """The alert's binding window: the slow window of a burn-rate rule,
    the query window of a threshold rule, else the default."""
    if rule is None:
        return DEFAULT_WINDOW
    slow = getattr(rule, "slow_window", None)
    if slow is not None:
        return float(slow)
    window = getattr(rule, "window", None)
    if window is not None:
        return float(window)
    return DEFAULT_WINDOW


class IncidentManager:
    """Captures incident bundles from a wired serving cluster.

    Parameters
    ----------
    cluster:
        The :class:`~repro.distributed.cluster.LocalCluster` under
        observation — its recorder, registry, monitor, and tracer are
        the capture sources.  A flight recorder should already be
        attached (:meth:`LocalCluster.attach_recorder`); capture works
        without one but the bundle's event section will be empty.
    out_dir:
        When set, every captured bundle is also serialized to
        ``out_dir/<incident-id>/`` as JSON (one file per section).
    cooldown:
        Minimum simulated seconds between two *alert-triggered*
        captures of the same rule; suppressed firings are counted in
        :attr:`suppressed`.  Manual and exception triggers ignore it.
    max_traces:
        Slowest trace trees to embed per bundle.
    """

    def __init__(
        self,
        cluster,
        out_dir: Optional[str] = None,
        cooldown: float = 0.5,
        max_traces: int = 5,
    ) -> None:
        if cooldown < 0:
            raise ConfigurationError(
                f"cooldown must be >= 0, got {cooldown}"
            )
        self.cluster = cluster
        self.out_dir = out_dir
        self.cooldown = cooldown
        self.max_traces = max_traces
        self.incidents: List[Dict] = []
        #: Alert firings skipped because the rule was in cooldown.
        self.suppressed = 0
        self._last_capture: Dict[str, float] = {}
        self._watched = []
        #: Scenario spec of the current run (:meth:`mark_start`).
        self.spec: Optional[Dict] = None
        self._t0: Optional[float] = None

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def watch(self, manager) -> None:
        """Subscribe to an :class:`~repro.obs.alerts.AlertManager` so
        every ``firing`` transition triggers a capture (idempotent)."""
        if manager not in self._watched:
            manager.add_listener(self._on_alert)
            self._watched.append(manager)

    def mark_start(self, spec: Optional[Dict] = None) -> None:
        """Record the run's scenario spec and its start instant.

        Call immediately before ``ScenarioRunner.run()`` — the recorded
        ``t0`` lets bundle metadata express the capture instant relative
        to run start, which is what the replay harness re-runs to.
        """
        self.spec = dict(spec) if spec is not None else None
        self._t0 = self._now()

    def _now(self) -> float:
        network = getattr(self.cluster, "network", None)
        return network.now() if network is not None else 0.0

    # ------------------------------------------------------------------
    # triggers
    # ------------------------------------------------------------------
    def _on_alert(self, event) -> None:
        if event.to_state != "firing":
            return
        last = self._last_capture.get(event.rule)
        if last is not None and event.t - last < self.cooldown:
            self.suppressed += 1
            return
        self._last_capture[event.rule] = event.t
        self.capture(
            trigger="alert",
            rule=event.rule,
            t=event.t,
            value=event.value,
            threshold=event.threshold,
            labels=dict(event.labels),
        )

    def trigger(self, reason: str = "manual") -> Dict:
        """Capture a bundle right now (no cooldown)."""
        return self.capture(trigger="manual", reason=reason)

    def capture_exception(self, exc: BaseException) -> Dict:
        """Capture a bundle for an exception that escaped driver code."""
        return self.capture(
            trigger="exception",
            error=repr(exc),
            error_context=dict(getattr(exc, "context", dict)() or {}),
            traceback="".join(
                traceback.format_exception(type(exc), exc, exc.__traceback__)
            )[-4000:],
        )

    @contextmanager
    def guard(self):
        """Context manager: capture a bundle if the body raises."""
        try:
            yield self
        except Exception as exc:
            self.capture_exception(exc)
            raise

    # ------------------------------------------------------------------
    # the freeze
    # ------------------------------------------------------------------
    def capture(self, trigger: str, **info) -> Dict:
        """Freeze one bundle at the current simulated instant.

        Runs synchronously at the exact point of the trigger — for
        alert triggers that is *inside* the evaluation pass, at the
        firing transition, which is what lets the replay harness
        compare event streams without racing post-capture traffic.
        """
        cluster = self.cluster
        now = info.get("t", self._now())
        rule = None
        monitor = getattr(cluster, "monitor", None)
        if monitor is not None and info.get("rule") is not None:
            alert = monitor.alerts.alerts.get(info["rule"])
            rule = alert.rule if alert is not None else None
        window = _binding_window(rule)

        incident_id = (
            f"incident-{len(self.incidents):04d}-"
            f"{info.get('rule') or trigger}"
        )
        meta: Dict[str, object] = {
            "id": incident_id,
            "trigger": trigger,
            "t": now,
            "t_rel": (now - self._t0) if self._t0 is not None else None,
            "t0": self._t0,
            "window_seconds": window,
        }
        meta.update(info)

        recorder = getattr(cluster, "recorder", None)
        events = (
            recorder.snapshot()
            if recorder is not None
            else {"events_total": 0, "dropped_total": 0, "categories": {}}
        )

        registry = getattr(cluster, "registry", None)
        metrics: Dict[str, object] = {}
        if registry is not None:
            metrics["snapshot"] = registry.snapshot().to_dict()
        series: Dict[str, object] = {"window_seconds": window, "series": {}}
        if monitor is not None:
            store = monitor.store
            window_diff: Dict[str, float] = {}
            for key in store.series_names():
                kind = store.kind_of(key)
                if kind == "histogram":
                    continue
                if kind == "counter":
                    window_diff[key] = store.increase(key, window, at=now)
                series["series"][key] = [
                    [t, v]
                    for t, v in store.points(key)
                    if now - window < t <= now
                ]
            metrics["window_diff"] = window_diff
            metrics["window_seconds"] = window

        tracer = getattr(cluster, "tracer", None)
        traces = (
            [span.to_dict() for span in tracer.top_slow(self.max_traces)]
            if tracer is not None
            else []
        )

        # The doctor walks live stores; a capture mid-outage must not
        # die because a crashed shard has no store to inspect.
        try:
            from repro.obs.doctor import diagnose

            doctor = diagnose(cluster).to_dict()
        except Exception as exc:
            doctor = {"error": repr(exc)}

        bundle = {
            "meta": meta,
            "spec": dict(self.spec) if self.spec is not None else None,
            "events": events,
            "metrics": metrics,
            "series": series,
            "traces": traces,
            "doctor": doctor,
        }
        self.incidents.append(bundle)
        if self.out_dir is not None:
            write_bundle(bundle, self.out_dir)
        return bundle


# ---------------------------------------------------------------------------
# bundle (de)serialization
# ---------------------------------------------------------------------------
def write_bundle(bundle: Dict, out_dir: str) -> str:
    """Serialize one bundle to ``out_dir/<id>/<section>.json``."""
    incident_id = bundle["meta"]["id"]
    path = os.path.join(out_dir, incident_id)
    os.makedirs(path, exist_ok=True)
    for section in BUNDLE_SECTIONS:
        with open(os.path.join(path, f"{section}.json"), "w") as fh:
            json.dump(bundle.get(section), fh, indent=2, sort_keys=True)
            fh.write("\n")
    return path


def load_bundle(path: str) -> Dict:
    """Load a bundle directory back into its dict form."""
    if not os.path.isdir(path):
        raise ConfigurationError(f"not a bundle directory: {path!r}")
    bundle: Dict[str, object] = {}
    for section in BUNDLE_SECTIONS:
        section_path = os.path.join(path, f"{section}.json")
        if not os.path.exists(section_path):
            raise ConfigurationError(
                f"bundle {path!r} is missing its {section}.json"
            )
        with open(section_path) as fh:
            bundle[section] = json.load(fh)
    return bundle


def list_bundles(out_dir: str) -> List[Dict]:
    """Metadata of every bundle under ``out_dir``, sorted by id."""
    if not os.path.isdir(out_dir):
        return []
    out: List[Dict] = []
    for name in sorted(os.listdir(out_dir)):
        meta_path = os.path.join(out_dir, name, "meta.json")
        if os.path.exists(meta_path):
            with open(meta_path) as fh:
                meta = json.load(fh)
            meta["path"] = os.path.join(out_dir, name)
            out.append(meta)
    return out
