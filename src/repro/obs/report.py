"""The human-facing observability report (backs ``repro obs``).

Renders, from a live cluster / registry / tracer:

* a per-shard load table with skew factors (max/mean of edges and of
  sample requests — the imbalance a rebalancer would act on);
* the cross-layer counter digest: snapshot cache, columnar ingest,
  retries, injected faults, network, and WAL ledgers;
* the top-k slow traces as indented span trees with per-span durations
  and tags.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.memory import humanize_bytes
from repro.obs.registry import MetricsRegistry, RegistrySnapshot

__all__ = ["render_report", "render_span_tree"]


def _sum_by_name(snap: RegistrySnapshot, name: str) -> float:
    """Sum one metric across every label set (cluster-wide totals)."""
    total = 0.0
    for key, value in snap.scalars.items():
        base = key.split("{", 1)[0]
        if base == name:
            total += value
    return total


def _fmt(value: float) -> str:
    if float(value).is_integer():
        return f"{int(value):,}"
    return f"{value:,.3f}"


def _counter_digest(snap: RegistrySnapshot) -> List[str]:
    lines: List[str] = []

    def row(title: str, parts: Dict[str, str]) -> None:
        body = "  ".join(f"{k}={v}" for k, v in parts.items())
        lines.append(f"  {title:<10} {body}")

    hits = _sum_by_name(snap, "repro_snapshot_cache_hits")
    misses = _sum_by_name(snap, "repro_snapshot_cache_misses")
    total = hits + misses
    row(
        "cache",
        {
            "hits": _fmt(hits),
            "misses": _fmt(misses),
            "hit_rate": f"{hits / total:.2%}" if total else "n/a",
            "evictions": _fmt(_sum_by_name(snap, "repro_snapshot_cache_evictions")),
            "invalidations": _fmt(
                _sum_by_name(snap, "repro_snapshot_cache_invalidations")
            ),
        },
    )
    row(
        "ingest",
        {
            "ops": _fmt(_sum_by_name(snap, "repro_ingest_ops")),
            "inserted": _fmt(_sum_by_name(snap, "repro_ingest_inserted")),
            "removed": _fmt(_sum_by_name(snap, "repro_ingest_removed")),
            "rebuilt": _fmt(_sum_by_name(snap, "repro_ingest_trees_rebuilt")),
            "incremental": _fmt(
                _sum_by_name(snap, "repro_ingest_trees_incremental")
            ),
        },
    )
    batches = _sum_by_name(snap, "repro_cache_batches")
    if batches:
        sources = _sum_by_name(snap, "repro_cache_sources")
        coalesced = _sum_by_name(snap, "repro_cache_coalesced_sources")
        row(
            "serving",
            {
                "batches": _fmt(batches),
                "sources": _fmt(sources),
                "coalesce_rate": (
                    f"{coalesced / sources:.2%}" if sources else "n/a"
                ),
                "hot_reads": _fmt(_sum_by_name(snap, "repro_cache_hot_reads")),
                "spread": _fmt(
                    _sum_by_name(snap, "repro_cache_spread_reads")
                ),
            },
        )
    submitted = _sum_by_name(snap, "repro_serving_submitted")
    if submitted:
        answered = _sum_by_name(
            snap, "repro_serving_answered_fresh"
        ) + _sum_by_name(snap, "repro_serving_answered_degraded")
        shed = (
            _sum_by_name(snap, "repro_serving_shed_queue_full")
            + _sum_by_name(snap, "repro_serving_shed_deadline_hopeless")
            + _sum_by_name(snap, "repro_serving_shed_breaker_open")
        )
        row(
            "inference",
            {
                "submitted": _fmt(submitted),
                "answered": _fmt(answered),
                "degraded": _fmt(
                    _sum_by_name(snap, "repro_serving_answered_degraded")
                ),
                "shed": _fmt(shed),
                "missed": _fmt(
                    _sum_by_name(snap, "repro_serving_deadline_missed")
                ),
                "availability": f"{_sum_by_name(snap, 'repro_serving_availability'):.2%}",
            },
        )
    observations = _sum_by_name(snap, "repro_hotset_observations")
    if observations:
        row(
            "hotset",
            {
                "observed": _fmt(observations),
                "tracked": _fmt(_sum_by_name(snap, "repro_hotset_tracked")),
                "replacements": _fmt(
                    _sum_by_name(snap, "repro_hotset_replacements")
                ),
                "decays": _fmt(_sum_by_name(snap, "repro_hotset_decays")),
            },
        )
    row(
        "retries",
        {
            "attempts": _fmt(_sum_by_name(snap, "repro_retry_attempts")),
            "retries": _fmt(_sum_by_name(snap, "repro_retry_retries")),
            "recoveries": _fmt(_sum_by_name(snap, "repro_retry_recoveries")),
            "exhausted": _fmt(_sum_by_name(snap, "repro_retry_exhausted")),
            "backoff_s": f"{_sum_by_name(snap, 'repro_retry_backoff_seconds'):.4f}",
        },
    )
    row(
        "faults",
        {
            "transient": _fmt(_sum_by_name(snap, "repro_faults_transient_errors")),
            "spikes": _fmt(_sum_by_name(snap, "repro_faults_latency_spikes")),
            "crashes": _fmt(_sum_by_name(snap, "repro_faults_crashes")),
            "refused": _fmt(
                _sum_by_name(snap, "repro_faults_refused_while_down")
            ),
        },
    )
    row(
        "network",
        {
            "messages": _fmt(_sum_by_name(snap, "repro_network_messages")),
            "bytes": _fmt(_sum_by_name(snap, "repro_network_payload_bytes")),
            "sim_s": f"{_sum_by_name(snap, 'repro_network_simulated_seconds'):.4f}",
        },
    )
    row(
        "wal",
        {
            "appended": _fmt(_sum_by_name(snap, "repro_wal_records_appended")),
            "replayed": _fmt(
                _sum_by_name(snap, "repro_server_wal_records_replayed")
            ),
            "recoveries": _fmt(_sum_by_name(snap, "repro_server_recoveries")),
        },
    )
    return lines


def _shard_table(cluster, snap: RegistrySnapshot) -> List[str]:
    infos = cluster.shard_infos()
    lines = [
        f"  {'shard':>5} {'sources':>9} {'edges':>10} {'memory':>10} "
        f"{'live':>4} {'sample_rq':>9} {'write_rq':>8} {'refused':>7}"
    ]
    edges: List[float] = []
    sample_rq: List[float] = []
    for info in infos:
        shard = info.shard_id
        srq = wrq = refused = 0.0
        for r, _ in enumerate(cluster.replica_groups[shard]):
            labels = f'{{replica="{r}",shard="{shard}"}}'
            srq += snap.get(f"repro_server_sample_requests{labels}")
            wrq += snap.get(f"repro_server_update_requests{labels}")
            wrq += snap.get(f"repro_server_ingest_requests{labels}")
            refused += snap.get(f"repro_server_refused_requests{labels}")
        edges.append(float(info.num_edges))
        sample_rq.append(srq)
        lines.append(
            f"  {shard:>5} {info.num_sources:>9,} {info.num_edges:>10,} "
            f"{humanize_bytes(info.nbytes):>10} {info.live_replicas:>4} "
            f"{int(srq):>9,} {int(wrq):>8,} {int(refused):>7,}"
        )

    def skew(values: List[float]) -> str:
        mean = sum(values) / len(values) if values else 0.0
        if mean <= 0:
            return "n/a"
        return f"{max(values) / mean:.2f}x"

    lines.append(
        f"  skew: edges max/mean = {skew(edges)}; "
        f"sample requests max/mean = {skew(sample_rq)}"
    )
    return lines


def render_span_tree(span, indent: int = 0, clock_note: str = "") -> List[str]:
    """Indented one-line-per-span rendering of a trace tree."""
    tags = " ".join(
        f"{k}={v}" for k, v in sorted(span.tags.items(), key=lambda kv: kv[0])
    )
    marker = "" if span.status == "ok" else f" !{span.status}"
    head = "  " * indent + ("- " if indent else "")
    lines = [
        f"    {head}{span.name} {span.duration * 1e3:.3f}ms{clock_note}"
        f"{marker}" + (f" [{tags}]" if tags else "")
    ]
    for child in span.children:
        lines.extend(render_span_tree(child, indent + 1))
    return lines


def render_report(
    cluster=None,
    registry: Optional[MetricsRegistry] = None,
    tracer=None,
    top_k: int = 5,
) -> str:
    """Render the full observability report as one string."""
    if registry is None and cluster is not None:
        registry = getattr(cluster, "registry", None)
    if tracer is None and cluster is not None:
        tracer = getattr(cluster, "tracer", None)
    lines: List[str] = ["== repro observability report =="]
    snap = registry.snapshot() if registry is not None else None

    if cluster is not None and snap is not None:
        lines.append("")
        lines.append("-- per-shard load --")
        lines.extend(_shard_table(cluster, snap))

    if snap is not None:
        lines.append("")
        lines.append("-- counters --")
        lines.extend(_counter_digest(snap))
        if snap.histograms:
            lines.append("")
            lines.append("-- latency histograms --")
            for name, _, labels, hist in registry.collect_histograms():
                if hist.count == 0:
                    continue
                s = hist.summary()
                label_txt = " ".join(f"{k}={v}" for k, v in labels)
                lines.append(
                    f"  {name}{(' [' + label_txt + ']') if label_txt else ''}: "
                    f"n={int(s['count'])} mean={s['mean'] * 1e3:.3f}ms "
                    f"p50={s['p50'] * 1e3:.3f}ms p99={s['p99'] * 1e3:.3f}ms "
                    f"max={s['max'] * 1e3:.3f}ms"
                )

    if tracer is not None:
        slow = tracer.top_slow(top_k)
        lines.append("")
        lines.append(
            f"-- top {len(slow)} slow traces "
            f"({len(tracer.finished)} archived) --"
        )
        if not slow:
            lines.append("    (no traces recorded)")
        for rank, root in enumerate(slow, 1):
            lines.append(
                f"  #{rank} trace {root.trace_id}: "
                f"{root.duration * 1e3:.3f}ms"
            )
            lines.extend(render_span_tree(root))
    return "\n".join(lines)
