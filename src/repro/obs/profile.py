"""Layer-attributed deterministic profiler + exemplar recording helpers.

Two small tools close the loop between "p99 is fat" and "here is why"
(DESIGN.md §12):

* :class:`LayerProfiler` — an opt-in :func:`sys.setprofile`-based
  deterministic profiler that attributes **exclusive** wall time to the
  subsystem layer owning each executing frame (samtree descent, Fenwick
  FTS, snapshot read path, attribute gather, RPC plumbing, other).  It
  answers "where inside one slow operation did the time go?" without
  the sampling bias of a statistical profiler and without external
  dependencies.  Deterministic profiling multiplies interpreter
  dispatch cost — expect 2–10× slowdown while enabled — so it is never
  on by default and is meant for one-off investigation of an exemplar,
  not for production collection (the overhead budget is documented in
  DESIGN.md §12).

* :func:`observe` / :func:`args_digest` — the standard way to record a
  latency into a :class:`~repro.obs.hist.LatencyHistogram` *with* an
  exemplar: the current trace id is pulled from the PR 4
  :class:`~repro.obs.trace.Tracer` (if one is active and sampled) and
  the operation's arguments are digested into a short ``k=v`` string,
  so the slowest observation of every bucket links straight back to its
  span tree.

Layer attribution is by code-object filename: each layer owns a set of
module basenames (:data:`DEFAULT_LAYERS`), and a frame executes in the
first layer whose set contains its file's basename.  Time inside C
builtins is charged to the layer of the *calling* frame (the profiler
pushes a frame for ``c_call`` events), so e.g. ``list.sort`` inside the
α-Split shows up under ``descent``.
"""

from __future__ import annotations

import os
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "DEFAULT_LAYERS",
    "LayerProfiler",
    "args_digest",
    "observe",
]

#: ``layer -> module basenames`` ownership map.  Order matters only for
#: documentation; lookup is by exact basename so the sets are disjoint.
DEFAULT_LAYERS: Dict[str, Tuple[str, ...]] = {
    # root→leaf descent and structural maintenance of the samtree
    "descent": (
        "samtree.py",
        "alpha_split.py",
        "cstable.py",
        "compression.py",
        "tree_batch.py",
    ),
    # Fenwick-tree sampling / weight maintenance at the leaf
    "fts": ("fenwick.py",),
    # flat snapshot build + vectorized batched draws
    "snapshot": ("snapshot.py", "topology.py"),
    # feature/attribute gather
    "gather": ("attributes.py", "training.py", "sampler.py"),
    # client/server plumbing, simulated network, retries, WAL
    "rpc": (
        "rpc.py",
        "client.py",
        "server.py",
        "cluster.py",
        "retry.py",
        "faults.py",
        "wal.py",
        "partition.py",
    ),
}

_OTHER = "other"


class LayerProfiler:
    """Deterministic exclusive-time profiler bucketed by subsystem layer.

    Usage::

        prof = LayerProfiler()
        with prof:
            client.sample_neighbors_many(frontier, k=25, rng=rng)
        print(prof.report())

    While active, every Python call/return (and C call/return) event is
    timestamped; the time between consecutive events is charged to the
    layer of the frame on top of the profiler's shadow stack, so the
    per-layer figures are **exclusive** (self) times that sum to the
    profiled wall time (minus profiler overhead between events).

    Not reentrant and not thread-aware: it profiles the installing
    thread only (``sys.setprofile`` is per-thread) and raises if started
    twice.  ``clock`` is injectable for deterministic tests.
    """

    def __init__(
        self,
        layers: Optional[Dict[str, Tuple[str, ...]]] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        layer_map = layers if layers is not None else DEFAULT_LAYERS
        self._by_basename: Dict[str, str] = {}
        for layer, basenames in layer_map.items():
            for basename in basenames:
                if basename in self._by_basename:
                    raise ConfigurationError(
                        f"module {basename!r} claimed by two layers: "
                        f"{self._by_basename[basename]!r} and {layer!r}"
                    )
                self._by_basename[basename] = layer
        self._clock = clock
        self._active = False
        self._prev_profiler = None
        self._stack: List[str] = []
        self._last = 0.0
        self.seconds: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}
        #: Memoised ``co_filename -> layer`` (the hot lookup).
        self._file_cache: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # attribution
    # ------------------------------------------------------------------
    def _layer_of_file(self, filename: str) -> str:
        layer = self._file_cache.get(filename)
        if layer is None:
            layer = self._by_basename.get(os.path.basename(filename), _OTHER)
            self._file_cache[filename] = layer
        return layer

    def _handler(self, frame, event: str, arg) -> None:
        now = self._clock()
        if self._stack:
            top = self._stack[-1]
            self.seconds[top] = (
                self.seconds.get(top, 0.0) + (now - self._last)
            )
        if event == "call":
            layer = self._layer_of_file(frame.f_code.co_filename)
            self._stack.append(layer)
            self.calls[layer] = self.calls.get(layer, 0) + 1
        elif event == "c_call":
            # C time is charged to the calling frame's layer.
            self._stack.append(self._layer_of_file(frame.f_code.co_filename))
        elif event in ("return", "c_return", "c_exception"):
            if self._stack:
                self._stack.pop()
        self._last = self._clock()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "LayerProfiler":
        if self._active:
            raise ConfigurationError("LayerProfiler is already running")
        self._active = True
        self._stack = []
        self._prev_profiler = sys.getprofile()
        self._last = self._clock()
        sys.setprofile(self._handler)
        return self

    def stop(self) -> None:
        if not self._active:
            return
        sys.setprofile(self._prev_profiler)
        self._prev_profiler = None
        self._active = False
        self._stack = []

    def __enter__(self) -> "LayerProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    def reset(self) -> None:
        if self._active:
            raise ConfigurationError("cannot reset a running LayerProfiler")
        self.seconds = {}
        self.calls = {}

    # ------------------------------------------------------------------
    # readout
    # ------------------------------------------------------------------
    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def totals(self) -> Dict[str, float]:
        """Exclusive seconds per layer (copy, descending)."""
        return dict(
            sorted(self.seconds.items(), key=lambda kv: -kv[1])
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "seconds": self.totals(),
            "calls": dict(sorted(self.calls.items())),
            "total_seconds": self.total_seconds,
        }

    def report(self) -> str:
        """Human table: layer, exclusive ms, share, python calls."""
        total = self.total_seconds or 1.0
        lines = ["layer profile (exclusive time):"]
        for layer, secs in self.totals().items():
            lines.append(
                f"  {layer:<10} {secs * 1e3:>9.3f}ms "
                f"{100.0 * secs / total:5.1f}%  "
                f"calls={self.calls.get(layer, 0)}"
            )
        lines.append(f"  {'total':<10} {self.total_seconds * 1e3:>9.3f}ms")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# exemplar recording helpers
# ---------------------------------------------------------------------------
def args_digest(_max_len: int = 80, **kwargs) -> str:
    """Digest operation arguments into a short ``k=v k2=v2`` string.

    Deterministic (keys sorted), bounded (truncated to ``_max_len``
    with an ellipsis), and safe for Prometheus label values (newlines
    stripped).  Collections are summarised by length rather than
    content — an exemplar should say ``srcs=1024``, not dump the batch.
    """
    parts: List[str] = []
    for key in sorted(kwargs):
        value = kwargs[key]
        if isinstance(value, (list, tuple, set, frozenset, dict)):
            rendered = f"len:{len(value)}"
        elif isinstance(value, float):
            rendered = f"{value:.4g}"
        else:
            rendered = str(value)
        rendered = rendered.replace("\n", " ")
        parts.append(f"{key}={rendered}")
    digest = " ".join(parts)
    if len(digest) > _max_len:
        digest = digest[: _max_len - 1] + "…"
    return digest


def observe(hist, seconds: float, tracer=None, **args) -> None:
    """Record ``seconds`` into ``hist`` with exemplar context attached.

    When the histogram has exemplars enabled
    (:meth:`~repro.obs.hist.LatencyHistogram.enable_exemplars`), the
    current sampled span's ``trace_id`` (from ``tracer``, if given and
    inside an active trace) and an :func:`args_digest` of ``args`` ride
    along; otherwise this is exactly ``hist.record(seconds)``.
    """
    if not getattr(hist, "exemplars_enabled", False):
        hist.record(seconds)
        return
    trace_id = None
    if tracer is not None:
        span = tracer.current()
        if span is not None:
            trace_id = span.trace_id
    hist.record(seconds, trace_id=trace_id, detail=args_digest(**args))
