"""Critical-path analysis over tracer span trees ("where did p999 go").

A slow request's root span bounds its end-to-end duration, but the
*reason* it was slow lives somewhere down the tree — a retry backoff, a
shard RPC, the model forward.  The critical path is the chain of child
spans that actually bounds the root's duration: walking backwards from
the root's end, descend into the latest-ending child, charge the gap
before it to the parent's self-time, and recurse.  The resulting
self-time segments **partition the root duration exactly** (property:
``sum(seg.seconds) == root.duration``), so aggregating them by layer
gives a table whose fractions are well-defined — "of this request's
9.8ms, 62% was retry backoff, 31% shard RPC, 5% compute".

Layers are derived from span names (the PR 4 naming scheme:
``serve.*``, ``client.*``, ``rpc.*``, ``server.*``, ``samtree.*``,
``train.*``); names outside the scheme land in ``other``, and the
acceptance gate asserts named layers carry ≥90% of a traced slow
request.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

__all__ = [
    "CriticalPathReport",
    "CriticalSegment",
    "analyze_critical_paths",
    "critical_path",
    "layer_for",
]

#: Ordered prefix → layer mapping; first match wins (most specific
#: prefixes first).  ``rpc.backoff`` gets its own layer because retry
#: backoff is the classic invisible tail-latency eater.
_LAYER_PREFIXES = (
    ("serve.sample", "sample"),
    ("serve.gather", "gather"),
    ("serve.compute", "compute"),
    ("serve.", "serve"),
    ("train.sample", "sample"),
    ("train.gather", "gather"),
    ("train.compute", "compute"),
    ("train.", "train"),
    ("sampler.", "sample"),
    ("client.", "client"),
    ("rpc.backoff", "backoff"),
    ("rpc.", "rpc"),
    ("server.", "server"),
    ("samtree.", "samtree"),
)


def layer_for(name: str) -> str:
    """Map a span name onto its subsystem layer (``other`` if unknown)."""
    for prefix, layer in _LAYER_PREFIXES:
        if name.startswith(prefix):
            return layer
    return "other"


@dataclass
class CriticalSegment:
    """One self-time interval on the critical path."""

    name: str
    layer: str
    start: float
    end: float
    status: str = "ok"

    @property
    def seconds(self) -> float:
        return self.end - self.start

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "layer": self.layer,
            "start": self.start,
            "end": self.end,
            "seconds": self.seconds,
            "status": self.status,
        }


def critical_path(root) -> List[CriticalSegment]:
    """Self-time segments bounding ``root``'s duration, oldest first.

    Cursor walk from the root's end backwards: children are visited in
    descending end order, clamped to the parent's window; the gap
    between the cursor and a child's (clamped) end is parent self-time;
    the child then owns its clamped window recursively.  Unfinished
    children (``end is None``) are skipped.  Segments always sum to
    exactly ``root.duration``.
    """
    segments: List[CriticalSegment] = []
    if root.end is None:
        return segments

    def visit(span, lo: float, hi: float) -> None:
        cursor = hi
        children = sorted(
            (c for c in span.children if c.end is not None),
            key=lambda c: c.end,
            reverse=True,
        )
        for child in children:
            c_end = min(child.end, cursor)
            c_start = max(child.start, lo)
            if c_end <= c_start:
                continue
            if c_end < cursor:
                segments.append(
                    CriticalSegment(
                        span.name,
                        layer_for(span.name),
                        c_end,
                        cursor,
                        span.status,
                    )
                )
            visit(child, c_start, c_end)
            cursor = c_start
        if cursor > lo:
            segments.append(
                CriticalSegment(
                    span.name, layer_for(span.name), lo, cursor, span.status
                )
            )

    visit(root, root.start, root.end)
    segments.sort(key=lambda s: s.start)
    return segments


@dataclass
class CriticalPathReport:
    """Self-time-by-layer aggregation over one or many traces."""

    traces: int = 0
    total_seconds: float = 0.0
    by_layer: Dict[str, float] = field(default_factory=dict)
    by_name: Dict[str, float] = field(default_factory=dict)
    slowest_trace_id: Optional[int] = None
    slowest_seconds: float = 0.0

    @property
    def named_fraction(self) -> float:
        """Fraction of critical-path time attributed to named layers."""
        if self.total_seconds <= 0:
            return 1.0
        other = self.by_layer.get("other", 0.0)
        return max(0.0, self.total_seconds - other) / self.total_seconds

    def layer_fractions(self) -> Dict[str, float]:
        if self.total_seconds <= 0:
            return {}
        return {
            layer: seconds / self.total_seconds
            for layer, seconds in self.by_layer.items()
        }

    def to_dict(self) -> Dict[str, object]:
        return {
            "traces": self.traces,
            "total_seconds": self.total_seconds,
            "by_layer": dict(sorted(self.by_layer.items())),
            "by_name": dict(sorted(self.by_name.items())),
            "layer_fractions": {
                k: v for k, v in sorted(self.layer_fractions().items())
            },
            "named_fraction": self.named_fraction,
            "slowest_trace_id": self.slowest_trace_id,
            "slowest_seconds": self.slowest_seconds,
        }

    def render(self) -> str:
        """Human table: where the aggregated critical-path time went."""
        lines = [
            f"critical path — {self.traces} trace(s), "
            f"{self.total_seconds * 1e3:.3f}ms total "
            f"(slowest {self.slowest_seconds * 1e3:.3f}ms, "
            f"trace {self.slowest_trace_id})"
        ]
        ranked = sorted(
            self.by_layer.items(), key=lambda kv: kv[1], reverse=True
        )
        for layer, seconds in ranked:
            frac = (
                seconds / self.total_seconds if self.total_seconds else 0.0
            )
            bar = "#" * int(round(frac * 30))
            lines.append(
                f"  {layer:<10} {seconds * 1e3:>10.3f}ms  "
                f"{frac * 100:>6.2f}%  {bar}"
            )
        lines.append(
            f"  named layers cover {self.named_fraction * 100:.2f}% "
            f"of the critical path"
        )
        return "\n".join(lines)


def analyze_critical_paths(
    roots: Iterable, root_name: Optional[str] = None
) -> CriticalPathReport:
    """Aggregate critical-path self-time across finished root spans.

    ``root_name`` filters to one request family (e.g. ``serve.batch``)
    so prewarm or training traces sharing the tracer don't dilute the
    serving attribution.
    """
    report = CriticalPathReport()
    for root in roots:
        if root.end is None:
            continue
        if root_name is not None and root.name != root_name:
            continue
        segments = critical_path(root)
        report.traces += 1
        duration = root.duration
        report.total_seconds += duration
        if duration >= report.slowest_seconds:
            report.slowest_seconds = duration
            report.slowest_trace_id = root.trace_id
        for seg in segments:
            report.by_layer[seg.layer] = (
                report.by_layer.get(seg.layer, 0.0) + seg.seconds
            )
            report.by_name[seg.name] = (
                report.by_name.get(seg.name, 0.0) + seg.seconds
            )
    return report
