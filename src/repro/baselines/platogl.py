"""PlatoGL baseline: block-based key-value topology store (CIKM 2022 [24]).

PlatoGL — the state of the art PlatoD2GL improves on — stores each source
vertex's neighbors in fixed-capacity *blocks* inside a key-value store,
with a per-source **CSTable** over *all* out-neighbors for ITS sampling:

* key  = source vertex ⊕ block metadata (sequence number, type, …) —
  every pair also pays a hash-index entry, which is the memory overhead
  the paper's Table IV quantifies;
* value = a pre-allocated neighbor block holding up to ``block_size``
  IDs (position ``g`` of the source's neighbor sequence lives at slot
  ``g % block_size`` of block ``g // block_size``);
* the per-source head record keeps the degree and the CSTable of strict
  prefix sums over the whole adjacency — the paper's §II-B: "it needs to
  update [the] cumulative sum table (CSTable) for each source vertex …
  the CSTable of s should be re-computed from scratch … taking O(n_L)
  time cost where n_L is the number of elements (i.e., out-neighbors)".

Dynamic behaviour therefore matches the ITS column of Table II exactly:

* a brand-new neighbor appends — ``O(1)``;
* an in-place weight update rewrites every later prefix sum —
  ``O(n_s)``;
* a deletion shifts the neighbor sequence across blocks and rewrites the
  CSTable — ``O(n_s)``;
* a weighted draw is one binary search — ``O(log n_s)``.

Duplicate detection scans the source's blocks (the key encodes block
placement, not membership).
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Tuple

from repro.core.cstable import CSTable
from repro.core.memory import DEFAULT_MEMORY_MODEL, MemoryModel
from repro.core.snapshot import RNGLike, coerce_scalar_rng
from repro.core.types import DEFAULT_ETYPE, GraphStoreAPI
from repro.errors import ConfigurationError, EmptyStructureError
from repro.storage.kvstore import BlockKVStore

__all__ = ["PlatoGLStore", "NeighborBlock"]


class NeighborBlock:
    """One neighbor block: a pre-allocated ID array.

    Blocks are fixed-capacity: the KV value is allocated at full block
    width when the block is created (that is what makes block updates
    in-place in a KV store), so a partially filled block pays for its
    whole capacity — the second ingredient, besides key/index overhead,
    of PlatoGL's Table IV footprint.
    """

    __slots__ = ("ids", "capacity")

    def __init__(self, capacity: int) -> None:
        self.ids: List[int] = []
        self.capacity = capacity

    @property
    def size(self) -> int:
        return len(self.ids)

    def nbytes(self, model: MemoryModel) -> int:
        """Block header + ``capacity`` pre-allocated ID slots."""
        return model.kv_block_header_bytes + self.capacity * model.id_bytes


class _HeadRecord:
    """Per-source head: degree + the source-wide CSTable."""

    __slots__ = ("degree", "num_blocks", "cstable")

    def __init__(self) -> None:
        self.degree = 0
        self.num_blocks = 0
        self.cstable = CSTable()

    def nbytes(self, model: MemoryModel) -> int:
        return model.kv_block_header_bytes + self.cstable.nbytes(
            model.weight_bytes
        )


class PlatoGLStore(GraphStoreAPI):
    """The block-based key-value dynamic store of PlatoGL.

    Parameters
    ----------
    block_size:
        Neighbors per block (PlatoGL's pre-allocated block capacity).
        The paper's comparison runs the baselines at their best
        parameters; 128 balances pre-allocation waste on low-density
        graphs against per-block key/index overhead on dense ones.
    """

    #: KV key layouts: head records and neighbor blocks.
    _HEAD = "head"
    _BLOCK = "block"

    def __init__(
        self,
        block_size: int = 128,
        model: MemoryModel = DEFAULT_MEMORY_MODEL,
    ) -> None:
        if block_size < 1:
            raise ConfigurationError(
                f"block_size must be >= 1, got {block_size}"
            )
        self.block_size = block_size
        self._model = model
        self._kv = BlockKVStore(self._value_nbytes, model)
        self._num_edges = 0
        self._num_sources = 0

    def _value_nbytes(self, value) -> int:
        return value.nbytes(self._model)

    # ------------------------------------------------------------------
    # record access
    # ------------------------------------------------------------------
    def _head(self, src: int, etype: int) -> Optional[_HeadRecord]:
        return self._kv.get((self._HEAD, etype, src))

    def _head_or_create(self, src: int, etype: int) -> _HeadRecord:
        key = (self._HEAD, etype, src)
        head = self._kv.get(key)
        if head is None:
            head = _HeadRecord()
            self._kv.put(key, head)
            self._num_sources += 1
        return head

    def _block(self, src: int, etype: int, seq: int) -> NeighborBlock:
        return self._kv.get((self._BLOCK, etype, src, seq))

    def _locate(
        self, src: int, etype: int, dst: int, num_blocks: int
    ) -> Optional[int]:
        """Scan the source's blocks for ``dst``; returns its global slot."""
        for seq in range(num_blocks):
            block = self._block(src, etype, seq)
            try:
                return seq * self.block_size + block.ids.index(dst)
            except ValueError:
                continue
        return None

    def _id_at(self, src: int, etype: int, slot: int) -> int:
        block = self._block(src, etype, slot // self.block_size)
        return block.ids[slot % self.block_size]

    # ------------------------------------------------------------------
    # dynamic updates
    # ------------------------------------------------------------------
    def add_edge(
        self,
        src: int,
        dst: int,
        weight: float = 1.0,
        etype: int = DEFAULT_ETYPE,
    ) -> bool:
        head = self._head_or_create(src, etype)
        slot = self._locate(src, etype, dst, head.num_blocks)
        if slot is not None:
            head.cstable.update(slot, weight)  # O(n_s): Table II in-place
            return False
        # Append to the last block, opening a new one when full.
        if head.degree == head.num_blocks * self.block_size:
            self._kv.put(
                (self._BLOCK, etype, src, head.num_blocks),
                NeighborBlock(self.block_size),
            )
            head.num_blocks += 1
        block = self._block(src, etype, head.num_blocks - 1)
        block.ids.append(dst)
        head.cstable.append(weight)  # O(1): Table II "new insertion"
        head.degree += 1
        self._num_edges += 1
        return True

    def update_edge(
        self, src: int, dst: int, weight: float, etype: int = DEFAULT_ETYPE
    ) -> bool:
        head = self._head(src, etype)
        if head is None:
            return False
        slot = self._locate(src, etype, dst, head.num_blocks)
        if slot is None:
            return False
        head.cstable.update(slot, weight)
        return True

    def remove_edge(
        self, src: int, dst: int, etype: int = DEFAULT_ETYPE
    ) -> bool:
        head = self._head(src, etype)
        if head is None:
            return False
        slot = self._locate(src, etype, dst, head.num_blocks)
        if slot is None:
            return False
        # Shift the neighbor sequence back by one across blocks (blocks
        # keep positional order) and rewrite the CSTable: O(n_s).
        bs = self.block_size
        seq = slot // bs
        block = self._block(src, etype, seq)
        del block.ids[slot % bs]
        for later in range(seq + 1, head.num_blocks):
            nxt = self._block(src, etype, later)
            if nxt.ids:
                block.ids.append(nxt.ids.pop(0))
            block = nxt
        head.cstable.delete(slot)
        head.degree -= 1
        self._num_edges -= 1
        if head.num_blocks and not self._block(
            src, etype, head.num_blocks - 1
        ).ids:
            self._kv.delete((self._BLOCK, etype, src, head.num_blocks - 1))
            head.num_blocks -= 1
        if head.degree == 0:
            self._kv.delete((self._HEAD, etype, src))
            self._num_sources -= 1
        return True

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def degree(self, src: int, etype: int = DEFAULT_ETYPE) -> int:
        head = self._head(src, etype)
        return head.degree if head is not None else 0

    def edge_weight(
        self, src: int, dst: int, etype: int = DEFAULT_ETYPE
    ) -> Optional[float]:
        head = self._head(src, etype)
        if head is None:
            return None
        slot = self._locate(src, etype, dst, head.num_blocks)
        if slot is None:
            return None
        return head.cstable.weight(slot)

    def neighbors(
        self, src: int, etype: int = DEFAULT_ETYPE
    ) -> List[Tuple[int, float]]:
        head = self._head(src, etype)
        if head is None:
            return []
        weights = head.cstable.to_weights()
        out: List[Tuple[int, float]] = []
        base = 0
        for seq in range(head.num_blocks):
            block = self._block(src, etype, seq)
            out.extend(zip(block.ids, weights[base : base + block.size]))
            base += block.size
        return out

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def num_sources(self) -> int:
        return self._num_sources

    def sources(self, etype: int = DEFAULT_ETYPE) -> Iterator[int]:
        for key in self._kv:
            if key[0] == self._HEAD and key[1] == etype:
                yield key[2]

    # ------------------------------------------------------------------
    # ITS sampling (binary search on the per-source CSTable)
    # ------------------------------------------------------------------
    def sample_neighbors(
        self,
        src: int,
        k: int,
        rng: RNGLike = None,
        etype: int = DEFAULT_ETYPE,
    ) -> List[int]:
        head = self._head(src, etype)
        if head is None or head.degree == 0:
            return []
        total = head.cstable.total()
        if total <= 0.0:
            raise EmptyStructureError(
                f"source {src} has zero total weight; cannot ITS-sample"
            )
        rng = coerce_scalar_rng(rng) or random
        out: List[int] = []
        for _ in range(k):
            slot = head.cstable.search(rng.random() * total)
            out.append(self._id_at(src, etype, slot))
        return out

    def sample_neighbors_uniform(
        self,
        src: int,
        k: int,
        rng: RNGLike = None,
        etype: int = DEFAULT_ETYPE,
    ) -> List[int]:
        """Uniform draw over the neighbor sequence (slot = randrange)."""
        head = self._head(src, etype)
        if head is None or head.degree == 0:
            return []
        rng = coerce_scalar_rng(rng) or random
        return [
            self._id_at(src, etype, rng.randrange(head.degree))
            for _ in range(k)
        ]

    # The batched forms intentionally stay the generic per-source loop of
    # :class:`GraphStoreAPI` — PlatoGL has no read-optimized cache; the
    # scalar/batched gap *is* the comparison the batched-sampling
    # benchmark measures against the samtree store's snapshot path.

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def nbytes(self, model: MemoryModel = DEFAULT_MEMORY_MODEL) -> int:
        if model is not self._model:
            # Re-account under a caller-supplied model.
            store = BlockKVStore(lambda v: v.nbytes(model), model)
            store._data = self._kv._data  # share payloads, reprice them
            return store.nbytes()
        return self._kv.nbytes()
