"""Static-system baseline: the Euler / Plato / DistDGL / ByteGNN regime.

The paper excludes the static deep graph learning systems from its
dynamic comparisons because "the graph needs to be re-partitioned and
re-deployed from scratch in graph servers when an edge is
inserted/deleted" (§I).  This store makes that cost measurable: the
graph lives in immutable CSR arrays (the layout those systems serve
queries from), mutations accumulate in a small delta buffer, and *any*
read or sample after a mutation first pays a **full rebuild** of the
CSR — the re-deploy the paper refuses to do online.

It exists for the ablation bench that quantifies why a dynamic store is
non-negotiable, and as the fourth point on the systems spectrum:

====================  ==========================================
PlatoD2GL             in-place O(log) updates
PlatoGL               in-place O(n_s) CSTable maintenance
AliGraph              per-vertex O(n_s) alias rebuilds
StaticCSRStore        whole-graph O(E) rebuild per update batch
====================  ==========================================
"""

from __future__ import annotations

import bisect
import random
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.memory import DEFAULT_MEMORY_MODEL, MemoryModel
from repro.core.snapshot import RNGLike, coerce_scalar_rng
from repro.core.types import DEFAULT_ETYPE, GraphStoreAPI

__all__ = ["StaticCSRStore"]


class _RelationCSR:
    """Immutable CSR + prefix-sum sampling arrays for one relation."""

    __slots__ = ("src_ids", "indptr", "indices", "weights", "cumweights")

    def __init__(self, adjacency: Dict[int, Dict[int, float]]) -> None:
        # Vectorized build: gather the edge columns once, derive indptr
        # from a degree cumsum, and dst-sort each row with a single
        # stable lexsort (row-major, dst ascending) — no per-edge Python
        # list appends, so the rebuild cost this baseline exists to
        # measure is the arrays' cost, not the interpreter's.
        self.src_ids: List[int] = sorted(adjacency)
        num_rows = len(self.src_ids)
        counts = np.fromiter(
            (len(adjacency[s]) for s in self.src_ids),
            dtype=np.int64,
            count=num_rows,
        )
        total = int(counts.sum())
        dst = np.fromiter(
            (d for s in self.src_ids for d in adjacency[s]),
            dtype=np.int64,
            count=total,
        )
        w = np.fromiter(
            (wt for s in self.src_ids for wt in adjacency[s].values()),
            dtype=np.float64,
            count=total,
        )
        indptr = np.zeros(num_rows + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        row_of = np.repeat(np.arange(num_rows, dtype=np.int64), counts)
        order = np.lexsort((dst, row_of))
        self.indptr = indptr
        self.indices = dst[order]
        self.weights = w[order]
        # Per-source cumulative weights for ITS sampling.
        self.cumweights = np.cumsum(self.weights)

    def row(self, src: int) -> Optional[Tuple[int, int]]:
        i = bisect.bisect_left(self.src_ids, src)
        if i == len(self.src_ids) or self.src_ids[i] != src:
            return None
        return int(self.indptr[i]), int(self.indptr[i + 1])

    def nbytes(self, model: MemoryModel) -> int:
        return (
            len(self.src_ids) * model.id_bytes
            + self.indptr.size * 8
            + self.indices.size * model.id_bytes
            + self.weights.size * model.weight_bytes
            + self.cumweights.size * model.weight_bytes
        )


class StaticCSRStore(GraphStoreAPI):
    """A static store with rebuild-on-read-after-write semantics."""

    def __init__(self) -> None:
        # Mutable staging adjacency (the "offline" copy).
        self._staging: Dict[int, Dict[int, Dict[int, float]]] = {}
        self._csr: Dict[int, _RelationCSR] = {}
        self._dirty = False
        self._num_edges = 0
        self.rebuild_count = 0

    # ------------------------------------------------------------------
    # mutation (cheap staging, deferred rebuild)
    # ------------------------------------------------------------------
    def add_edge(
        self,
        src: int,
        dst: int,
        weight: float = 1.0,
        etype: int = DEFAULT_ETYPE,
    ) -> bool:
        adjacency = self._staging.setdefault(etype, {})
        row = adjacency.setdefault(src, {})
        is_new = dst not in row
        row[dst] = float(weight)
        if is_new:
            self._num_edges += 1
        self._dirty = True
        return is_new

    def update_edge(
        self, src: int, dst: int, weight: float, etype: int = DEFAULT_ETYPE
    ) -> bool:
        row = self._staging.get(etype, {}).get(src)
        if row is None or dst not in row:
            return False
        row[dst] = float(weight)
        self._dirty = True
        return True

    def remove_edge(
        self, src: int, dst: int, etype: int = DEFAULT_ETYPE
    ) -> bool:
        adjacency = self._staging.get(etype, {})
        row = adjacency.get(src)
        if row is None or dst not in row:
            return False
        del row[dst]
        if not row:
            del adjacency[src]
        self._num_edges -= 1
        self._dirty = True
        return True

    # ------------------------------------------------------------------
    # the static regime: reads pay the re-deploy
    # ------------------------------------------------------------------
    def _ensure_built(self) -> None:
        if not self._dirty:
            return
        self._csr = {
            etype: _RelationCSR(adjacency)
            for etype, adjacency in self._staging.items()
            if adjacency
        }
        self._dirty = False
        self.rebuild_count += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def degree(self, src: int, etype: int = DEFAULT_ETYPE) -> int:
        self._ensure_built()
        rel = self._csr.get(etype)
        if rel is None:
            return 0
        row = rel.row(src)
        return row[1] - row[0] if row else 0

    def edge_weight(
        self, src: int, dst: int, etype: int = DEFAULT_ETYPE
    ) -> Optional[float]:
        self._ensure_built()
        rel = self._csr.get(etype)
        if rel is None:
            return None
        row = rel.row(src)
        if row is None:
            return None
        lo, hi = row
        i = lo + int(np.searchsorted(rel.indices[lo:hi], dst))
        if i < hi and rel.indices[i] == dst:
            return float(rel.weights[i])
        return None

    def neighbors(
        self, src: int, etype: int = DEFAULT_ETYPE
    ) -> List[Tuple[int, float]]:
        self._ensure_built()
        rel = self._csr.get(etype)
        if rel is None:
            return []
        row = rel.row(src)
        if row is None:
            return []
        lo, hi = row
        return [
            (int(d), float(w))
            for d, w in zip(rel.indices[lo:hi], rel.weights[lo:hi])
        ]

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def num_sources(self) -> int:
        return sum(len(adj) for adj in self._staging.values())

    def sources(self, etype: int = DEFAULT_ETYPE) -> Iterator[int]:
        return iter(sorted(self._staging.get(etype, {})))

    # ------------------------------------------------------------------
    # sampling (fast once built — the static systems' strong suit)
    # ------------------------------------------------------------------
    def sample_neighbors(
        self,
        src: int,
        k: int,
        rng: RNGLike = None,
        etype: int = DEFAULT_ETYPE,
    ) -> List[int]:
        self._ensure_built()
        rel = self._csr.get(etype)
        if rel is None:
            return []
        row = rel.row(src)
        if row is None or row[0] == row[1]:
            return []
        lo, hi = row
        base = rel.cumweights[lo - 1] if lo > 0 else 0.0
        total = rel.cumweights[hi - 1] - base
        rng = coerce_scalar_rng(rng) or random
        if total <= 0:
            return [int(rel.indices[lo + rng.randrange(hi - lo)]) for _ in range(k)]
        draws = base + np.array([rng.random() * total for _ in range(k)])
        slots = np.searchsorted(rel.cumweights[lo:hi], draws, side="right")
        slots = np.minimum(slots, hi - lo - 1)
        return [int(rel.indices[lo + s]) for s in slots]

    def sample_neighbors_uniform(
        self,
        src: int,
        k: int,
        rng: RNGLike = None,
        etype: int = DEFAULT_ETYPE,
    ) -> List[int]:
        """Uniform draw off the CSR row (no weight lookup needed)."""
        self._ensure_built()
        rel = self._csr.get(etype)
        if rel is None:
            return []
        row = rel.row(src)
        if row is None or row[0] == row[1]:
            return []
        lo, hi = row
        rng = coerce_scalar_rng(rng) or random
        return [int(rel.indices[lo + rng.randrange(hi - lo)]) for _ in range(k)]

    # Batched sampling uses the generic :class:`GraphStoreAPI` loop — the
    # static regime's cost lives in `_ensure_built`, which the first call
    # of a batch pays once; per-row draws are already array-backed.

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def nbytes(self, model: MemoryModel = DEFAULT_MEMORY_MODEL) -> int:
        self._ensure_built()
        # CSR image + the staging copy (the "offline" adjacency the
        # rebuild reads from — static deployments keep both).
        total = 0
        for rel in self._csr.values():
            total += rel.nbytes(model)
        for adjacency in self._staging.values():
            for row in adjacency.values():
                total += len(row) * (model.id_bytes + model.weight_bytes)
            total += len(adjacency) * model.pointer_bytes
        return total
