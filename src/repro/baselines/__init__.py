"""Baseline systems the paper compares against, reimplemented faithfully:
PlatoGL (block-based key-value store + CSTable/ITS) and AliGraph
(hash-by-source static storage + alias sampling).
"""

from repro.baselines.aligraph import AliasTable, AliGraphStore
from repro.baselines.platogl import NeighborBlock, PlatoGLStore
from repro.baselines.static_csr import StaticCSRStore

__all__ = [
    "AliasTable",
    "AliGraphStore",
    "NeighborBlock",
    "PlatoGLStore",
    "StaticCSRStore",
]
