"""AliGraph baseline: hash-by-source static storage with alias sampling.

AliGraph [38] is the integrated GNN platform the paper compares against.
Its relevant traits (paper §I, §VIII, Table IV):

* graph storage is *static* — the deployment the paper benchmarks uses
  the ``hash-by-source`` partitioning "so that it can be used for
  dynamic graphs", meaning an update touches one source's adjacency and
  forces that adjacency's sampling structures to be rebuilt;
* weighted sampling uses the **alias method** [34][25], which answers a
  draw in ``O(1)`` but requires an ``O(n_s)`` table rebuild after *any*
  weight change, insertion, or deletion — this is the expensive dynamic
  behaviour Figure 8/9 exhibit;
* it "duplicates the graph topology for supporting fast sampling", so
  its per-edge memory is roughly (IDs + weights) × duplication + the
  alias table — the reason it is the memory worst case in Table IV and
  goes out of memory on the WeChat graph.

The alias table here is a real Vose construction, not a stub: sampling
draws are genuinely ``O(1)`` and the rebuild is genuinely ``O(n_s)``.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.memory import DEFAULT_MEMORY_MODEL, MemoryModel
from repro.core.snapshot import RNGLike, coerce_scalar_rng
from repro.core.types import DEFAULT_ETYPE, GraphStoreAPI
from repro.errors import EmptyStructureError

__all__ = ["AliasTable", "AliGraphStore"]


class AliasTable:
    """Vose's alias method: O(n) build, O(1) weighted draw."""

    __slots__ = ("_prob", "_alias", "_n")

    def __init__(self, weights: List[float]) -> None:
        n = len(weights)
        self._n = n
        self._prob = [0.0] * n
        self._alias = [0] * n
        if n == 0:
            return
        total = sum(weights)
        if total <= 0.0:
            # Degenerate uniform table.
            self._prob = [1.0] * n
            self._alias = list(range(n))
            return
        scaled = [w * n / total for w in weights]
        small = [i for i, s in enumerate(scaled) if s < 1.0]
        large = [i for i, s in enumerate(scaled) if s >= 1.0]
        while small and large:
            s = small.pop()
            l = large.pop()
            self._prob[s] = scaled[s]
            self._alias[s] = l
            scaled[l] = scaled[l] - (1.0 - scaled[s])
            if scaled[l] < 1.0:
                small.append(l)
            else:
                large.append(l)
        for i in large:
            self._prob[i] = 1.0
            self._alias[i] = i
        for i in small:  # numerical leftovers
            self._prob[i] = 1.0
            self._alias[i] = i

    def __len__(self) -> int:
        return self._n

    def sample(self, rng: Optional[random.Random] = None) -> int:
        """One O(1) draw."""
        if self._n == 0:
            raise EmptyStructureError("cannot sample from an empty alias table")
        rng = rng or random
        i = rng.randrange(self._n)
        if rng.random() < self._prob[i]:
            return i
        return self._alias[i]

    def nbytes(self, model: MemoryModel) -> int:
        """One probability + one alias index per element."""
        return self._n * model.alias_entry_bytes


class _Adjacency:
    """One source's adjacency: parallel arrays + its alias table."""

    __slots__ = ("ids", "weights", "alias", "index")

    def __init__(self) -> None:
        self.ids: List[int] = []
        self.weights: List[float] = []
        self.index: Dict[int, int] = {}
        self.alias = AliasTable([])

    def rebuild(self) -> None:
        """O(n_s) alias-table reconstruction after any mutation."""
        self.alias = AliasTable(self.weights)


class AliGraphStore(GraphStoreAPI):
    """Hash-by-source AliGraph storage with alias-method sampling.

    Every mutation of a source's adjacency rebuilds that source's alias
    table from scratch — the O(n_s) dynamic cost the paper's Figures 8
    and 9 penalise.
    """

    def __init__(self, model: MemoryModel = DEFAULT_MEMORY_MODEL) -> None:
        self._model = model
        self._adj: Dict[Tuple[int, int], _Adjacency] = {}
        self._num_edges = 0

    def _get(self, src: int, etype: int) -> Optional[_Adjacency]:
        return self._adj.get((etype, src))

    # ------------------------------------------------------------------
    # dynamic updates (each triggers a full alias rebuild)
    # ------------------------------------------------------------------
    def add_edge(
        self,
        src: int,
        dst: int,
        weight: float = 1.0,
        etype: int = DEFAULT_ETYPE,
    ) -> bool:
        adj = self._adj.setdefault((etype, src), _Adjacency())
        slot = adj.index.get(dst)
        if slot is not None:
            adj.weights[slot] = float(weight)
            adj.rebuild()
            return False
        adj.index[dst] = len(adj.ids)
        adj.ids.append(dst)
        adj.weights.append(float(weight))
        adj.rebuild()
        self._num_edges += 1
        return True

    def update_edge(
        self, src: int, dst: int, weight: float, etype: int = DEFAULT_ETYPE
    ) -> bool:
        adj = self._get(src, etype)
        if adj is None:
            return False
        slot = adj.index.get(dst)
        if slot is None:
            return False
        adj.weights[slot] = float(weight)
        adj.rebuild()
        return True

    def remove_edge(
        self, src: int, dst: int, etype: int = DEFAULT_ETYPE
    ) -> bool:
        adj = self._get(src, etype)
        if adj is None:
            return False
        slot = adj.index.pop(dst, None)
        if slot is None:
            return False
        last = len(adj.ids) - 1
        if slot != last:
            adj.ids[slot] = adj.ids[last]
            adj.weights[slot] = adj.weights[last]
            adj.index[adj.ids[slot]] = slot
        adj.ids.pop()
        adj.weights.pop()
        self._num_edges -= 1
        if adj.ids:
            adj.rebuild()
        else:
            del self._adj[(etype, src)]
        return True

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def degree(self, src: int, etype: int = DEFAULT_ETYPE) -> int:
        adj = self._get(src, etype)
        return len(adj.ids) if adj is not None else 0

    def edge_weight(
        self, src: int, dst: int, etype: int = DEFAULT_ETYPE
    ) -> Optional[float]:
        adj = self._get(src, etype)
        if adj is None:
            return None
        slot = adj.index.get(dst)
        if slot is None:
            return None
        return adj.weights[slot]

    def neighbors(
        self, src: int, etype: int = DEFAULT_ETYPE
    ) -> List[Tuple[int, float]]:
        adj = self._get(src, etype)
        if adj is None:
            return []
        return list(zip(adj.ids, adj.weights))

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def num_sources(self) -> int:
        return len(self._adj)

    def sources(self, etype: int = DEFAULT_ETYPE) -> Iterator[int]:
        for key_etype, src in self._adj:
            if key_etype == etype:
                yield src

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def sample_neighbors(
        self,
        src: int,
        k: int,
        rng: RNGLike = None,
        etype: int = DEFAULT_ETYPE,
    ) -> List[int]:
        adj = self._get(src, etype)
        if adj is None or not adj.ids:
            return []
        rng = coerce_scalar_rng(rng)
        return [adj.ids[adj.alias.sample(rng)] for _ in range(k)]

    def sample_neighbors_uniform(
        self,
        src: int,
        k: int,
        rng: RNGLike = None,
        etype: int = DEFAULT_ETYPE,
    ) -> List[int]:
        """Uniform draw straight off the adjacency array."""
        adj = self._get(src, etype)
        if adj is None or not adj.ids:
            return []
        rng = coerce_scalar_rng(rng) or random
        n = len(adj.ids)
        return [adj.ids[rng.randrange(n)] for _ in range(k)]

    # Batched sampling stays the generic :class:`GraphStoreAPI` loop:
    # AliGraph's alias tables answer one O(1) draw at a time and have no
    # snapshot/caching tier to vectorize over.

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def nbytes(self, model: MemoryModel = DEFAULT_MEMORY_MODEL) -> int:
        """Duplicated topology + alias tables + per-vertex headers."""
        total = 0
        dup = model.aligraph_duplication_factor
        for adj in self._adj.values():
            n = len(adj.ids)
            topo = n * (model.id_bytes + model.weight_bytes)
            total += dup * topo
            total += adj.alias.nbytes(model)
            # The dst->slot membership index (one entry per edge).
            total += n * (model.id_bytes + 4)
            total += model.aligraph_vertex_header_bytes
        return total

    def peak_nbytes(self, model: MemoryModel = DEFAULT_MEMORY_MODEL) -> int:
        """Build-time peak footprint (steady state × load-peak factor).

        AliGraph's loading pipeline holds the raw edge lists while the
        CSR/alias structures are assembled; budget checks against this
        value reproduce the paper's WeChat "o.o.m" entries.
        """
        return int(self.nbytes(model) * model.aligraph_build_peak_factor)
