"""Exception hierarchy for the PlatoD2GL reproduction.

All library errors derive from :class:`ReproError` so that callers can
catch everything raised by this package with a single ``except`` clause
while still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class EmptyStructureError(ReproError, IndexError):
    """An operation that needs at least one element hit an empty structure.

    Raised, for example, when sampling from an empty FSTable or samtree.
    """


class IndexOutOfRangeError(ReproError, IndexError):
    """An index argument fell outside the valid range of a structure."""


class InvalidWeightError(ReproError, ValueError):
    """An edge weight was rejected (negative, NaN, or infinite)."""


class VertexNotFoundError(ReproError, KeyError):
    """A vertex (or edge endpoint) is not present in the store."""


class EdgeNotFoundError(ReproError, KeyError):
    """A requested edge does not exist in the store."""


class StoreOutOfMemoryError(ReproError, MemoryError):
    """The modeled memory footprint exceeded the configured budget.

    Used by benchmark drivers to reproduce the paper's "o.o.m" entries
    (e.g. AliGraph on the WeChat dataset in Table IV / Figure 8).
    """


class InvariantViolationError(ReproError, AssertionError):
    """A structural invariant check failed (used by ``check_invariants``)."""


class HashMapFullError(ReproError, RuntimeError):
    """The cuckoo hashmap could not place a key even after resizing."""


class PartitionError(ReproError, ValueError):
    """A graph partitioner received an invalid configuration or key."""


class ShapeError(ReproError, ValueError):
    """A GNN tensor operation received arrays of incompatible shapes."""


class ConfigurationError(ReproError, ValueError):
    """A component was constructed with invalid parameters."""


class RPCError(ReproError, ConnectionError):
    """Base class for simulated RPC failures in the distributed tier.

    Carries structured origin context — which shard and endpoint failed,
    on which retry attempt, at what simulated time — so raised errors
    and flight-recorder events name their source instead of a bare
    message.  All fields are optional: raisers that know them populate
    them (the fault injector knows shard/endpoint; ``RetryPolicy.run``
    adds attempt/timestamp to whatever it re-raises).
    """

    def __init__(
        self,
        message: str = "",
        shard=None,
        endpoint: "str | None" = None,
        attempt: "int | None" = None,
        timestamp: "float | None" = None,
    ) -> None:
        super().__init__(message)
        self.shard = shard
        self.endpoint = endpoint
        self.attempt = attempt
        self.timestamp = timestamp

    def context(self) -> dict:
        """The populated context fields as a flat dict (for logs/events)."""
        out = {}
        for key in ("shard", "endpoint", "attempt", "timestamp"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out


class TransientRPCError(RPCError):
    """A request failed transiently (dropped packet, brief overload).

    Safe to retry: the server did **not** observe the request.  Raised by
    the fault injector before the endpoint body runs, so a transient
    failure never leaves partial state behind.
    """


class ShardUnavailableError(RPCError):
    """A shard (or every replica of it) is down.

    Retrying against the same replica will not help — callers fail over
    to another replica, degrade gracefully, or surface the outage.
    """


class RetryExhaustedError(RPCError):
    """A retried request failed on every allowed attempt."""


class DeadlineExceededError(RPCError, TimeoutError):
    """A request's simulated-time deadline elapsed before it succeeded."""


class WALCorruptionError(ReproError, ValueError):
    """A write-ahead log record failed its integrity check mid-file.

    A *torn tail* (truncated final record after a crash) is expected and
    tolerated by replay; corruption before the tail is not.
    """
