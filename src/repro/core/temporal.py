"""Sliding-window temporal graph: the paper's ``{G^(t) | t ∈ [1, T]}``.

Paper §II-A models the production workload as a *series* of graphs — at
timestamp ``t`` the model trains against ``G^(t)``, which "receives
updates" as user interest drifts.  In the WeChat deployment, stale
interactions age out: an edge older than the retention window must stop
influencing sampling, otherwise the model keeps recommending last
month's live rooms (§I's concept-drift argument [9]).

:class:`TemporalGraphStore` wraps any :class:`GraphStoreAPI` with
ingestion timestamps and a retention window:

* ``observe(t, src, dst, weight)`` ingests an interaction at time ``t``
  (re-observing an edge refreshes its timestamp and, by default,
  *accumulates* its weight — interaction counting);
* ``advance(t)`` moves the clock and evicts every edge whose last
  observation fell out of ``[t - window, t]`` — a stream of the
  deletions the FSTable makes cheap (Table II's point);
* all :class:`GraphStoreAPI` reads/sampling delegate to the live window.

Eviction uses a time-bucketed calendar queue, so ``advance`` costs
O(expired edges), not O(live edges).
"""

from __future__ import annotations

import random
from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.memory import DEFAULT_MEMORY_MODEL, MemoryModel
from repro.core.samtree import SamtreeConfig
from repro.core.topology import DynamicGraphStore
from repro.core.types import DEFAULT_ETYPE, GraphStoreAPI
from repro.errors import ConfigurationError

__all__ = ["TemporalGraphStore"]

_EdgeKey = Tuple[int, int, int]  # (etype, src, dst)


class TemporalGraphStore(GraphStoreAPI):
    """A retention-windowed view over a dynamic topology store.

    Parameters
    ----------
    window:
        Retention span: an edge last observed at time ``t0`` is evicted
        once the clock passes ``t0 + window``.
    store:
        Underlying topology store (defaults to a fresh PlatoD2GL store).
    accumulate:
        When True (default), re-observing an edge adds to its weight
        (interaction counting); when False the new weight replaces the
        old one.
    """

    def __init__(
        self,
        window: int,
        store: Optional[GraphStoreAPI] = None,
        config: Optional[SamtreeConfig] = None,
        accumulate: bool = True,
    ) -> None:
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        self.window = int(window)
        self.store: GraphStoreAPI = (
            store if store is not None else DynamicGraphStore(config)
        )
        self.accumulate = accumulate
        self._now = 0
        #: edge -> last observation time.
        self._last_seen: Dict[_EdgeKey, int] = {}
        #: time bucket -> {edge} scheduled for expiry check at that time.
        self._calendar: "OrderedDict[int, set]" = OrderedDict()
        self._evicted = 0

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current timestamp ``t``."""
        return self._now

    @property
    def num_evicted(self) -> int:
        """Edges aged out since construction."""
        return self._evicted

    def observe(
        self,
        t: int,
        src: int,
        dst: int,
        weight: float = 1.0,
        etype: int = DEFAULT_ETYPE,
    ) -> bool:
        """Ingest an interaction at time ``t`` (monotone non-decreasing).

        Returns True when the edge is new to the current window.
        Advances the clock to ``t`` first, so expired edges never absorb
        the new observation.
        """
        if t < self._now:
            raise ConfigurationError(
                f"timestamps must be non-decreasing: {t} < now {self._now}"
            )
        self.advance(t)
        key = (etype, src, dst)
        is_new = key not in self._last_seen
        if is_new or not self.accumulate:
            self.store.add_edge(src, dst, weight, etype)
        else:
            accumulate = getattr(self.store, "accumulate_edge", None)
            if accumulate is not None:
                accumulate(src, dst, weight, etype)
            else:
                old = self.store.edge_weight(src, dst, etype) or 0.0
                self.store.add_edge(src, dst, old + weight, etype)
        self._last_seen[key] = t
        self._calendar.setdefault(t + self.window, set()).add(key)
        return is_new

    def advance(self, t: int) -> int:
        """Move the clock to ``t``; returns the number of evicted edges.

        Scans only calendar buckets whose deadline has passed.  An edge
        re-observed since a bucket was scheduled is skipped there (its
        live deadline is later).
        """
        if t < self._now:
            raise ConfigurationError(
                f"cannot move the clock backwards: {t} < {self._now}"
            )
        self._now = t
        evicted = 0
        while self._calendar:
            deadline = next(iter(self._calendar))
            if deadline > t:
                break
            for key in self._calendar.popitem(last=False)[1]:
                last = self._last_seen.get(key)
                if last is None or last + self.window > t:
                    continue  # refreshed or already gone
                etype, src, dst = key
                if self.store.remove_edge(src, dst, etype):
                    evicted += 1
                del self._last_seen[key]
        self._evicted += evicted
        return evicted

    def last_seen(
        self, src: int, dst: int, etype: int = DEFAULT_ETYPE
    ) -> Optional[int]:
        """Last observation time of an edge in the current window."""
        return self._last_seen.get((etype, src, dst))

    # ------------------------------------------------------------------
    # GraphStoreAPI delegation (reads see the live window)
    # ------------------------------------------------------------------
    def add_edge(
        self,
        src: int,
        dst: int,
        weight: float = 1.0,
        etype: int = DEFAULT_ETYPE,
    ) -> bool:
        """Ingest at the current clock (convenience for store-shaped use)."""
        return self.observe(self._now, src, dst, weight, etype)

    def update_edge(
        self, src: int, dst: int, weight: float, etype: int = DEFAULT_ETYPE
    ) -> bool:
        if (etype, src, dst) not in self._last_seen:
            return False
        self.store.update_edge(src, dst, weight, etype)
        self._last_seen[(etype, src, dst)] = self._now
        self._calendar.setdefault(self._now + self.window, set()).add(
            (etype, src, dst)
        )
        return True

    def remove_edge(self, src: int, dst: int, etype: int = DEFAULT_ETYPE) -> bool:
        key = (etype, src, dst)
        if key not in self._last_seen:
            return False
        del self._last_seen[key]
        return self.store.remove_edge(src, dst, etype)

    def degree(self, src: int, etype: int = DEFAULT_ETYPE) -> int:
        return self.store.degree(src, etype)

    def edge_weight(
        self, src: int, dst: int, etype: int = DEFAULT_ETYPE
    ) -> Optional[float]:
        return self.store.edge_weight(src, dst, etype)

    def neighbors(
        self, src: int, etype: int = DEFAULT_ETYPE
    ) -> List[Tuple[int, float]]:
        return self.store.neighbors(src, etype)

    @property
    def num_edges(self) -> int:
        return self.store.num_edges

    @property
    def num_sources(self) -> int:
        return self.store.num_sources

    def sources(self, etype: int = DEFAULT_ETYPE) -> Iterator[int]:
        return self.store.sources(etype)

    def sample_neighbors(
        self,
        src: int,
        k: int,
        rng: Optional[random.Random] = None,
        etype: int = DEFAULT_ETYPE,
    ) -> List[int]:
        return self.store.sample_neighbors(src, k, rng, etype)

    def sample_neighbors_uniform(self, src, k, rng=None, etype=DEFAULT_ETYPE):
        return self.store.sample_neighbors_uniform(src, k, rng, etype)

    def sample_neighbors_many(self, srcs, k, rng=None, etype=DEFAULT_ETYPE):
        """Forward the batched read path to the wrapped store (snapshot
        coherence is by tree version, so window evictions invalidate)."""
        return self.store.sample_neighbors_many(srcs, k, rng, etype)

    def sample_neighbors_uniform_many(
        self, srcs, k, rng=None, etype=DEFAULT_ETYPE
    ):
        return self.store.sample_neighbors_uniform_many(srcs, k, rng, etype)

    def nbytes(self, model: MemoryModel = DEFAULT_MEMORY_MODEL) -> int:
        """Underlying store + timestamp map + calendar entries."""
        meta = len(self._last_seen) * (3 * model.id_bytes + 8)
        calendar = sum(len(b) for b in self._calendar.values()) * (
            3 * model.id_bytes
        )
        return self.store.nbytes(model) + meta + calendar

    def check_invariants(self) -> None:
        """Window metadata and the underlying store must agree."""
        check = getattr(self.store, "check_invariants", None)
        if check is not None:
            check()
        from repro.errors import InvariantViolationError

        if len(self._last_seen) != self.store.num_edges:
            raise InvariantViolationError(
                f"window tracks {len(self._last_seen)} edges but store "
                f"holds {self.store.num_edges}"
            )
        for (etype, src, dst), t in self._last_seen.items():
            if t + self.window <= self._now:
                raise InvariantViolationError(
                    f"edge ({src}->{dst}, etype {etype}) expired at "
                    f"{t + self.window} but clock is {self._now}"
                )
