"""PlatoD2GL's dynamic graph storage layer (paper §IV-B, Figure 3).

The store keeps one :class:`~repro.core.samtree.Samtree` per source
vertex, indexed by a :class:`~repro.storage.cuckoo.CuckooHashMap` whose
value is the paper's ``<|N_u|, T_u>`` tuple (degree is read off the tree,
so the record holds the tree and the directory still accounts the degree
field's bytes).  Heterogeneous graphs key the directory by
``(etype, src)`` — one samtree per (relation, source) pair, the layout a
relation-partitioned deployment uses.

Vertices with no out-edges occupy no storage (paper Example 1), and a
vertex whose last neighbor is deleted is dropped from the directory.
"""

from __future__ import annotations

import random
import threading
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.ingest import (
    OP_DELETE,
    OP_INSERT,
    OP_UPDATE,
    EdgeBatch,
    IngestStats,
    fold_run,
)
from repro.core.frozen import FrozenShard, FrozenStats
from repro.core.memory import DEFAULT_MEMORY_MODEL, MemoryModel
from repro.core.samtree import OpStats, Samtree, SamtreeConfig
from repro.core.snapshot import (
    RNGLike,
    SnapshotCache,
    coerce_generator,
    coerce_scalar_rng,
    resolve_rngs,
)
from repro.core.types import DEFAULT_ETYPE, GraphStoreAPI
from repro.errors import ConfigurationError
from repro.storage.cuckoo import CuckooHashMap

__all__ = [
    "DynamicGraphStore",
    "REBUILD_MIN_OPS",
    "REBUILD_DEGREE_RATIO",
]

#: Sentinel distinguishing "not passed" from "explicitly disabled".
_DEFAULT_CACHE = object()

#: Rebuild-vs-incremental heuristic (paper Fig. 8-9 axis): a per-tree
#: group takes the O(n) bottom-up rebuild only when it is *both* big in
#: absolute terms and big relative to the tree it targets.  Small
#: touch-ups on large trees route through the PALM batch path
#: (``apply_source_batch``), which costs O(g log n) instead of O(n).
REBUILD_MIN_OPS = 16
REBUILD_DEGREE_RATIO = 4

_CODE_TO_KIND = {OP_INSERT: "insert", OP_UPDATE: "update", OP_DELETE: "delete"}


class DynamicGraphStore(GraphStoreAPI):
    """The samtree-backed dynamic topology store of PlatoD2GL.

    Parameters
    ----------
    config:
        Samtree parameters (capacity ``c``, slackness ``α``, CP-IDs
        compression); shared by every per-vertex tree.
    snapshot_cache:
        The read-path cache serving vectorized frontier sampling
        (:mod:`repro.core.snapshot`).  Defaults to a fresh
        :class:`SnapshotCache` with the standard budget; pass ``None``
        to force every draw down the exact ITS/FTS descent.

    Examples
    --------
    >>> store = DynamicGraphStore()
    >>> store.add_edge(1, 2, 0.1)
    True
    >>> store.add_edge(1, 3, 0.4)
    True
    >>> store.degree(1)
    2
    """

    def __init__(
        self,
        config: Optional[SamtreeConfig] = None,
        snapshot_cache=_DEFAULT_CACHE,
    ) -> None:
        self.config = config or SamtreeConfig()
        self.stats = OpStats()
        #: Cumulative columnar-ingest ledger: every
        #: :meth:`apply_edge_batch` merges its per-call
        #: :class:`IngestStats` in here, so registry views
        #: (``repro_ingest_*``; DESIGN.md §11) see lifetime totals.
        self.ingest_stats = IngestStats()
        self._directory = CuckooHashMap(initial_buckets=64)
        self._num_edges = 0
        # `_num_edges += d` is a non-atomic read-modify-write; PALM
        # threads mutating disjoint trees still share this counter.
        self._count_lock = threading.Lock()
        self.snapshot_cache: Optional[SnapshotCache] = (
            SnapshotCache() if snapshot_cache is _DEFAULT_CACHE
            else snapshot_cache
        )
        # -- frozen read path (repro.core.frozen) ----------------------
        #: Compiled CSC images per etype; coherent via `_mutation_epoch`.
        self._frozen: Dict[int, FrozenShard] = {}
        #: Store-wide mutation epoch: bumped conservatively by *every*
        #: mutation entry point (spurious bumps only cost a recompile;
        #: a missed bump would be a stale read).
        self._mutation_epoch = 0
        self.frozen_stats = FrozenStats()
        #: Epochs of drift a frozen shard may serve through (0 = any
        #: post-compile mutation forces recompile-or-fallback).
        self.frozen_staleness_budget = 0
        #: When True, a stale shard recompiles on demand at read time
        #: instead of falling back to the live samtree path.
        self.frozen_auto_refreeze = False

    # ------------------------------------------------------------------
    # tree lookup
    # ------------------------------------------------------------------
    def _tree(self, src: int, etype: int) -> Optional[Samtree]:
        return self._directory.get((etype, src))

    def _tree_or_create(self, src: int, etype: int) -> Samtree:
        return self._directory.get_or_create(
            (etype, src), lambda: Samtree(self.config, stats=self.stats)
        )

    def tree(self, src: int, etype: int = DEFAULT_ETYPE) -> Optional[Samtree]:
        """Expose the samtree of ``src`` (used by tests and the PALM
        executor, which groups a batch per tree)."""
        return self._tree(src, etype)

    # ------------------------------------------------------------------
    # dynamic updates
    # ------------------------------------------------------------------
    def _bump_epoch(self) -> None:
        """Advance the mutation epoch (frozen-shard coherence).

        Called at every mutation entry point *before* the write, even
        when the write turns out to be a no-op — over-invalidation is
        safe, a stale frozen read is not.  Racy increments under PALM
        threads may coalesce, but any mutation still moves the epoch
        past every prior compile stamp, which is all coherence needs.
        """
        self._mutation_epoch += 1

    def add_edge(
        self,
        src: int,
        dst: int,
        weight: float = 1.0,
        etype: int = DEFAULT_ETYPE,
    ) -> bool:
        self._bump_epoch()
        tree = self._tree_or_create(src, etype)
        is_new = tree.insert(dst, weight)
        if is_new:
            with self._count_lock:
                self._num_edges += 1
        return is_new

    def accumulate_edge(
        self,
        src: int,
        dst: int,
        delta: float,
        etype: int = DEFAULT_ETYPE,
    ) -> bool:
        """Insert or *add onto* an edge weight (interaction counting)."""
        self._bump_epoch()
        tree = self._tree_or_create(src, etype)
        is_new = tree.add_weight(dst, delta)
        if is_new:
            with self._count_lock:
                self._num_edges += 1
        return is_new

    def update_edge(
        self, src: int, dst: int, weight: float, etype: int = DEFAULT_ETYPE
    ) -> bool:
        tree = self._tree(src, etype)
        if tree is None or dst not in tree:
            return False
        self._bump_epoch()
        tree.insert(dst, weight)
        return True

    def remove_edge(self, src: int, dst: int, etype: int = DEFAULT_ETYPE) -> bool:
        tree = self._tree(src, etype)
        if tree is None:
            return False
        self._bump_epoch()
        removed = tree.delete(dst)
        if removed:
            with self._count_lock:
                self._num_edges -= 1
            if not tree:
                self._directory.delete((etype, src))
                if self.snapshot_cache is not None:
                    # The tree object is gone from the directory; a later
                    # re-creation of this source must never be served its
                    # predecessor's snapshot via the peek fast path.
                    self.snapshot_cache.invalidate((etype, src))
        return removed

    def apply_source_batch(
        self, src: int, etype: int, ops
    ) -> List[bool]:
        """Apply a batch of ``(kind, dst, weight)`` triples to one source.

        Used by the PALM executor's per-tree groups: the samtree applies
        the whole batch with one descent per op and bottom-up repair
        rounds (:mod:`repro.core.tree_batch`), and this wrapper keeps the
        directory and the edge counter consistent.
        """
        self._bump_epoch()
        has_insert = any(kind == "insert" for kind, _, _ in ops)
        if has_insert:
            tree = self._tree_or_create(src, etype)
        else:
            tree = self._tree(src, etype)
            if tree is None:
                return [False] * len(ops)
        before = tree.degree
        outcomes = tree.apply_batch(ops)
        with self._count_lock:
            self._num_edges += tree.degree - before
        if not tree:
            self._directory.delete((etype, src))
            if self.snapshot_cache is not None:
                self.snapshot_cache.invalidate((etype, src))
        return outcomes

    # ------------------------------------------------------------------
    # bulk ingestion (the columnar write path)
    # ------------------------------------------------------------------
    def bulk_load(
        self, src, dst=None, weight=None, etype=None
    ) -> IngestStats:
        """Insert-only columnar bulk load (the graph-build shape).

        Accepts either an insert-only :class:`EdgeBatch` or raw columns
        (``src``/``dst`` arrays plus optional ``weight``/``etype``, each
        broadcastable from a scalar).  Equivalent to an ``add_edge`` loop
        with last-wins upsert semantics, but each target samtree is built
        or rebuilt bottom-up in O(n) instead of edge by edge.
        """
        if isinstance(src, EdgeBatch):
            batch = src
            if not batch.is_insert_only:
                raise ConfigurationError(
                    "bulk_load takes insert-only batches; use "
                    "apply_edge_batch for mixed-op batches"
                )
        else:
            batch = EdgeBatch.inserts(src, dst, weight, etype)
        return self.apply_edge_batch(batch)

    def apply_edge_batch(
        self, batch, dst=None, weight=None, etype=None, op=None
    ) -> IngestStats:
        """Apply a columnar batch of dynamic updates (paper Table II).

        One ``lexsort`` groups the rows per target samtree, duplicate
        ``(etype, src, dst)`` keys fold to their net effect
        (:func:`~repro.core.ingest.fold_run` — equivalent to sequential
        application), and each tree then takes either the O(n) bottom-up
        rebuild or the PALM incremental path depending on how large the
        group is relative to the tree's degree.  Final store state is
        identical to applying the same operations one by one through
        :meth:`add_edge`/:meth:`update_edge`/:meth:`remove_edge`.
        """
        if not isinstance(batch, EdgeBatch):
            batch = EdgeBatch(batch, dst, weight, etype, op)
        stats = IngestStats(ops=len(batch))
        if len(batch) == 0:
            self.ingest_stats.merge_from(stats)
            return stats
        self._bump_epoch()
        for et, src, group in batch.sorted_by_tree().iter_tree_groups():
            self._apply_tree_group(et, src, group, stats)
        self.ingest_stats.merge_from(stats)
        return stats

    @staticmethod
    def _fold_group(group: EdgeBatch):
        """Net ``(dsts, codes, weights)`` of one per-tree group.

        The group is dst-sorted with submission order preserved inside
        each equal-dst run (stable lexsort), so folding each run yields
        exactly the state sequential application would leave.  Returns
        ``(dst_array, code_list_or_None, weight_array)`` — ``None``
        codes mean *all inserts*, the bulk-load shape, folded with one
        vectorized last-wins keep-mask instead of per-run Python work.
        """
        n = len(group)
        dsts = group.dst
        codes = group.op
        ws = group.weight
        if not codes.any():  # all OP_INSERT (code 0): vectorized dedupe
            if n > 1:
                keep = np.empty(n, dtype=bool)
                np.not_equal(dsts[1:], dsts[:-1], out=keep[:-1])
                keep[-1] = True
                if not bool(keep.all()):
                    dsts = dsts[keep]
                    ws = ws[keep]
            return dsts, None, ws
        net_dst: List[int] = []
        net_code: List[int] = []
        net_w: List[float] = []
        if n == 1:
            return dsts, [int(codes[0])], ws
        change = np.empty(n, dtype=bool)
        change[0] = True
        np.not_equal(dsts[1:], dsts[:-1], out=change[1:])
        starts = np.flatnonzero(change)
        ends = np.append(starts[1:], n)
        for a, b in zip(starts.tolist(), ends.tolist()):
            if b - a == 1:
                net_dst.append(int(dsts[a]))
                net_code.append(int(codes[a]))
                net_w.append(float(ws[a]))
                continue
            net = fold_run(codes[a:b].tolist(), ws[a:b].tolist())
            if net is None:
                continue
            net_dst.append(int(dsts[a]))
            net_code.append(net[0])
            net_w.append(net[1])
        return (
            np.asarray(net_dst, dtype=np.int64),
            net_code,
            np.asarray(net_w, dtype=np.float64),
        )

    def _apply_tree_group(
        self, etype: int, src: int, group: EdgeBatch, stats: IngestStats
    ) -> None:
        net_dst, net_code, net_w = self._fold_group(group)
        m = int(net_dst.size)
        if m == 0:
            return
        insert_only = net_code is None
        tree = self._tree(src, etype)
        if tree is None:
            # Updates and deletes against a missing tree are no-ops;
            # net inserts bulk-build the tree bottom-up in one pass.
            if insert_only:
                ins_dst, ins_w = net_dst, net_w
            else:
                mask = np.asarray(net_code, dtype=np.uint8) == OP_INSERT
                if not bool(mask.any()):
                    return
                ins_dst, ins_w = net_dst[mask], net_w[mask]
            tree = self._tree_or_create(src, etype)
            tree._bulk_load_arrays(ins_dst, ins_w, assume_sorted_unique=True)
            stats.trees_created += 1
            stats.inserted += tree.degree
            with self._count_lock:
                self._num_edges += tree.degree
            return
        degree = tree.degree
        if m >= REBUILD_MIN_OPS and m * REBUILD_DEGREE_RATIO >= degree:
            # Big relative batch: merge into a dict and rebuild bottom-up
            # *in place* — outstanding snapshot-cache entries observe the
            # version bump instead of pointing at a dead tree object.
            merged = tree.to_dict()
            if insert_only:
                before = len(merged)
                merged.update(zip(net_dst.tolist(), net_w.tolist()))
                ins = len(merged) - before
                rem = 0
            else:
                ins = rem = 0
                for d, c, w in zip(
                    net_dst.tolist(), net_code, net_w.tolist()
                ):
                    if c == OP_INSERT:
                        if d not in merged:
                            ins += 1
                        merged[d] = w
                    elif c == OP_UPDATE:
                        if d in merged:
                            merged[d] = w
                    else:  # OP_DELETE
                        if merged.pop(d, None) is not None:
                            rem += 1
            ids = sorted(merged)
            tree._bulk_load_arrays(
                ids, [merged[i] for i in ids], assume_sorted_unique=True
            )
            stats.trees_rebuilt += 1
            stats.inserted += ins
            stats.removed += rem
            with self._count_lock:
                self._num_edges += ins - rem
            if not tree:
                self._directory.delete((etype, src))
                if self.snapshot_cache is not None:
                    self.snapshot_cache.invalidate((etype, src))
        else:
            # Small touch-up: one descent per op + bottom-up repair
            # rounds (PALM).  apply_source_batch maintains the counter,
            # the directory, and the cache invalidation.
            if insert_only:
                triples = [
                    ("insert", d, w)
                    for d, w in zip(net_dst.tolist(), net_w.tolist())
                ]
            else:
                triples = [
                    (_CODE_TO_KIND[c], d, w)
                    for d, c, w in zip(
                        net_dst.tolist(), net_code, net_w.tolist()
                    )
                ]
            outcomes = self.apply_source_batch(src, etype, triples)
            for (kind, _, _), ok in zip(triples, outcomes):
                if ok:
                    if kind == "insert":
                        stats.inserted += 1
                    elif kind == "delete":
                        stats.removed += 1
            stats.trees_incremental += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def degree(self, src: int, etype: int = DEFAULT_ETYPE) -> int:
        tree = self._tree(src, etype)
        return tree.degree if tree is not None else 0

    def edge_weight(
        self, src: int, dst: int, etype: int = DEFAULT_ETYPE
    ) -> Optional[float]:
        tree = self._tree(src, etype)
        if tree is None:
            return None
        return tree.get_weight(dst)

    def neighbors(
        self, src: int, etype: int = DEFAULT_ETYPE
    ) -> List[Tuple[int, float]]:
        tree = self._tree(src, etype)
        if tree is None:
            return []
        return list(tree.items())

    def total_weight(self, src: int, etype: int = DEFAULT_ETYPE) -> float:
        """Sum of all edge weights out of ``src`` (``w_s``)."""
        tree = self._tree(src, etype)
        return tree.total_weight if tree is not None else 0.0

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def num_sources(self) -> int:
        return len(self._directory)

    def sources(self, etype: int = DEFAULT_ETYPE) -> Iterator[int]:
        for key_etype, src in self._directory.keys():
            if key_etype == etype:
                yield src

    def etypes(self) -> List[int]:
        """Distinct relation types present in the store."""
        return sorted({etype for etype, _ in self._directory.keys()})

    def iter_trees(self) -> Iterator[Tuple[Tuple[int, int], Samtree]]:
        """Iterate ``((etype, src), samtree)`` pairs (doctor's walk)."""
        for key, tree in self._directory.items():
            yield key, tree

    @property
    def directory(self) -> CuckooHashMap:
        """The cuckoo directory (read-only structural introspection)."""
        return self._directory

    # ------------------------------------------------------------------
    # frozen read path
    # ------------------------------------------------------------------
    @property
    def mutation_epoch(self) -> int:
        """Store-wide mutation epoch (frozen-shard coherence stamp)."""
        return self._mutation_epoch

    @property
    def frozen_shards(self) -> List[FrozenShard]:
        """Currently compiled frozen shards (doctor/introspection)."""
        return list(self._frozen.values())

    def freeze(self, etype: Optional[int] = None) -> List[FrozenShard]:
        """Compile the frozen CSC image(s) for the hot read path.

        ``etype=None`` freezes every relation present (an empty store
        freezes the default relation to an empty shard).  Returns the
        compiled shards; subsequent batched reads of a frozen relation
        dispatch to the vectorized kernels until the store mutates past
        ``frozen_staleness_budget`` epochs.
        """
        if etype is not None:
            targets = [etype]
        else:
            targets = self.etypes() or [DEFAULT_ETYPE]
        shards: List[FrozenShard] = []
        for et in targets:
            shard = FrozenShard.compile(self, et, self._mutation_epoch)
            self._frozen[et] = shard
            self.frozen_stats.compiles += 1
            self.frozen_stats.compiled_rows += shard.num_rows
            self.frozen_stats.compiled_edges += shard.num_edges
            shards.append(shard)
        return shards

    def thaw(self, etype: Optional[int] = None) -> int:
        """Drop compiled shard(s); returns how many were dropped."""
        if etype is not None:
            dropped = 1 if self._frozen.pop(etype, None) is not None else 0
        else:
            dropped = len(self._frozen)
            self._frozen.clear()
        self.frozen_stats.thaws += dropped
        return dropped

    def _frozen_for(self, etype: int) -> Optional[FrozenShard]:
        """The servable frozen shard of ``etype``, or ``None``.

        Staleness is epoch drift since compile; a stale shard either
        recompiles on demand (``frozen_auto_refreeze``) or is refused,
        sending the read down the live samtree path — either way no
        read is ever answered beyond the staleness budget.
        """
        shard = self._frozen.get(etype)
        if shard is None:
            return None
        if (
            self._mutation_epoch - shard.epoch
            <= self.frozen_staleness_budget
        ):
            return shard
        self.frozen_stats.stale_misses += 1
        if self.frozen_auto_refreeze:
            self.frozen_stats.refreezes += 1
            return self.freeze(etype)[0]
        return None

    def _frozen_sample_many(
        self,
        shard: FrozenShard,
        srcs: Sequence[int],
        k: int,
        rng: RNGLike,
        uniform: bool,
    ) -> List[Sequence[int]]:
        gen = coerce_generator(rng)
        rows = shard.sample_rows(srcs, k, gen, uniform=uniform)
        stats = self.frozen_stats
        stats.batches += 1
        stats.vertices += len(rows)
        served = sum(1 for row in rows if len(row))
        stats.draws += served * k
        stats.missing_vertices += len(rows) - served
        return rows

    def sample_fanouts(
        self,
        seeds: Sequence[int],
        fanouts: Sequence[int],
        rng: RNGLike = None,
        etype: int = DEFAULT_ETYPE,
    ) -> Optional[List[np.ndarray]]:
        """Multi-hop frontier expansion on the frozen image.

        Returns the per-hop levels (seeds first, self-loop padding for
        sources without adjacency — the :mod:`repro.gnn.samplers`
        convention), or ``None`` when the relation is not frozen or the
        shard is stale — the caller falls back to the per-hop live
        path.  This is the duck-typed fast path
        :func:`repro.gnn.samplers.sample_blocks` probes for.
        """
        shard = self._frozen_for(etype)
        if shard is None:
            return None
        gen = coerce_generator(rng)
        levels = shard.sample_fanouts(seeds, fanouts, gen)
        stats = self.frozen_stats
        stats.batches += 1
        stats.hops += len(fanouts)
        stats.vertices += sum(
            int(level.size) for level in levels[:-1]
        )
        stats.draws += sum(int(level.size) for level in levels[1:])
        return levels

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def sample_neighbors(
        self,
        src: int,
        k: int,
        rng: RNGLike = None,
        etype: int = DEFAULT_ETYPE,
    ) -> List[int]:
        tree = self._tree(src, etype)
        if tree is None or not tree:
            return []
        return tree.sample_many(k, coerce_scalar_rng(rng))

    def sample_neighbors_uniform(
        self,
        src: int,
        k: int,
        rng: RNGLike = None,
        etype: int = DEFAULT_ETYPE,
    ) -> List[int]:
        """Unweighted variant (each neighbor equally likely)."""
        tree = self._tree(src, etype)
        if tree is None or not tree:
            return []
        rng = coerce_scalar_rng(rng)
        return [tree.sample_uniform(rng) for _ in range(k)]

    def _group_positions(
        self, srcs: Sequence[int]
    ) -> "Dict[int, List[int]]":
        """Input positions of each *distinct* source.

        The batched read path resolves each source's tree exactly once
        per batch (directory lookup + degree check + snapshot probe),
        instead of once per occurrence per operation — GNN frontiers
        repeat hot vertices heavily.
        """
        positions: Dict[int, List[int]] = {}
        for i, src in enumerate(srcs):
            positions.setdefault(int(src), []).append(i)
        return positions

    def sample_neighbors_many(
        self,
        srcs: Sequence[int],
        k: int,
        rng: RNGLike = None,
        etype: int = DEFAULT_ETYPE,
    ) -> List[Sequence[int]]:
        """Vectorized frontier sampling (the tentpole read path).

        Every distinct source resolves its samtree once; hot trees are
        served from a flat :class:`~repro.core.snapshot.TreeSnapshot`
        with one ``Generator.random`` block + one ``searchsorted`` for
        *all* of that source's draws in the batch, and cold or
        just-mutated trees fall back to the exact ITS/FTS descent —
        distributionally identical by construction.

        When the relation has a fresh frozen shard (:meth:`freeze`),
        the whole frontier is answered by one columnar CSC kernel
        instead — same distribution, no per-distinct-source loop.
        """
        if self._frozen:
            shard = self._frozen_for(etype)
            if shard is not None:
                return self._frozen_sample_many(
                    shard, srcs, k, rng, uniform=False
                )
        srcs = list(srcs)
        scalar_rng, gen = resolve_rngs(rng)
        cache = self.snapshot_cache
        out: List[Sequence[int]] = [()] * len(srcs)
        # One uniform block for the whole frontier: every snapshot-served
        # source slices its rows out of it (one Generator.random call per
        # batch instead of one per distinct source).
        uniforms = gen.random((len(srcs), k)) if cache is not None else None
        for src, positions in self._group_positions(srcs).items():
            key = (etype, src)
            # Fresh hit: coherence is checked against the snapshot's own
            # tree reference — no directory lookup on the hot path.
            snapshot = cache.peek(key) if cache is not None else None
            if snapshot is None:
                tree = self._tree(src, etype)
                if tree is None or not tree:
                    for i in positions:
                        out[i] = []
                    continue
                snapshot = cache.get(key, tree) if cache is not None else None
            if snapshot is not None:
                if len(positions) == 1:
                    # Basic indexing: a view, no row-gather copy.
                    i = positions[0]
                    out[i] = snapshot.sample_from_uniforms(uniforms[i])
                else:
                    rows = snapshot.sample_from_uniforms(uniforms[positions])
                    for i, row in zip(positions, rows):
                        out[i] = row
            else:
                for i in positions:
                    out[i] = tree.sample_many(k, scalar_rng)
        return out

    def sample_neighbors_uniform_many(
        self,
        srcs: Sequence[int],
        k: int,
        rng: RNGLike = None,
        etype: int = DEFAULT_ETYPE,
    ) -> List[Sequence[int]]:
        """Batched uniform sampling through the same snapshot read path
        (or the frozen CSC kernel when the relation is frozen)."""
        if self._frozen:
            shard = self._frozen_for(etype)
            if shard is not None:
                return self._frozen_sample_many(
                    shard, srcs, k, rng, uniform=True
                )
        srcs = list(srcs)
        scalar_rng, gen = resolve_rngs(rng)
        cache = self.snapshot_cache
        out: List[Sequence[int]] = [()] * len(srcs)
        uniforms = gen.random((len(srcs), k)) if cache is not None else None
        for src, positions in self._group_positions(srcs).items():
            key = (etype, src)
            snapshot = cache.peek(key) if cache is not None else None
            if snapshot is None:
                tree = self._tree(src, etype)
                if tree is None or not tree:
                    for i in positions:
                        out[i] = []
                    continue
                snapshot = cache.get(key, tree) if cache is not None else None
            if snapshot is not None:
                if len(positions) == 1:
                    i = positions[0]
                    out[i] = snapshot.sample_uniform_from_uniforms(uniforms[i])
                else:
                    rows = snapshot.sample_uniform_from_uniforms(
                        uniforms[positions]
                    )
                    for i, row in zip(positions, rows):
                        out[i] = row
            else:
                for i in positions:
                    out[i] = [tree.sample_uniform(scalar_rng) for _ in range(k)]
        return out

    def sample_vertices(
        self,
        k: int,
        rng: RNGLike = None,
        etype: int = DEFAULT_ETYPE,
    ) -> List[int]:
        """Node sampling (paper §III): ``k`` source vertices, degree-
        weighted with replacement — the seed generator for training."""
        pool: List[int] = []
        weights: List[float] = []
        for key_etype, src in self._directory.keys():
            if key_etype == etype:
                pool.append(src)
                weights.append(float(self.degree(src, etype)))
        if not pool:
            return []
        rng = coerce_scalar_rng(rng) or random
        return rng.choices(pool, weights=weights, k=k)

    # ------------------------------------------------------------------
    # accounting & validation
    # ------------------------------------------------------------------
    def nbytes(self, model: MemoryModel = DEFAULT_MEMORY_MODEL) -> int:
        """Total modeled bytes of the store.

        Exactly ``sum(self.nbytes_breakdown(model).values())`` — the
        samtree doctor pins this equality as an invariant.  Includes the
        per-tree snapshot-cache overhead (cached flat read images are
        real resident memory the read path pays for; earlier versions
        under-reported by omitting them).
        """
        return sum(self.nbytes_breakdown(model).values())

    def nbytes_breakdown(
        self, model: MemoryModel = DEFAULT_MEMORY_MODEL
    ) -> Dict[str, int]:
        """Per-component modeled bytes (the doctor's memory schema).

        Components: the four samtree node components aggregated over
        every tree (``leaf_nodes`` / ``fstables`` / ``internal_nodes`` /
        ``cstables``), the cuckoo ``directory``, the
        ``snapshot_cache`` (cached entries accounted under the cache's
        own :class:`MemoryModel` at build time — see
        :mod:`repro.core.memory` for the assumptions), and the
        ``frozen`` CSC images compiled by :meth:`freeze`.
        """
        parts = {
            "leaf_nodes": 0,
            "fstables": 0,
            "internal_nodes": 0,
            "cstables": 0,
        }
        for _, tree in self._directory.items():
            for component, nbytes in tree.nbytes_breakdown(model).items():
                parts[component] += nbytes
        parts["directory"] = self._directory.nbytes(model)
        parts["snapshot_cache"] = (
            self.snapshot_cache.nbytes
            if self.snapshot_cache is not None
            else 0
        )
        parts["frozen"] = sum(
            shard.nbytes(model) for shard in self._frozen.values()
        )
        return parts

    def check_invariants(self) -> None:
        """Validate every samtree and the global edge counter."""
        edges = 0
        for _, tree in self._directory.items():
            tree.check_invariants()
            edges += tree.degree
        if edges != self._num_edges:
            from repro.errors import InvariantViolationError

            raise InvariantViolationError(
                f"edge counter {self._num_edges} != tree total {edges}"
            )
