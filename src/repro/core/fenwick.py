"""FSTable: the Fenwick-tree-based sum table of PlatoD2GL (paper §V-A).

The FSTable is the sampling index attached to every *leaf* node of a
samtree.  For a leaf holding the weight array ``A = [w_0, ..., w_{n-1}]``
(indices are 0-based as in the paper), the table stores

    F[i] = sum(A[g(i) + 1 : i + 1])      with  g(i) = i - LSB(i + 1)

where ``LSB(x)`` is the value of the lowest set bit of ``x``.  The paper
calls these *soft prefix sums*: each entry covers a power-of-two aligned
range ending at its own index, which is exactly the classic Fenwick (binary
indexed tree) layout shifted to 0-based indices.

Compared with the flat cumulative-sum table (CSTable) used by PlatoGL,
every dynamic operation is logarithmic (paper Table II):

==================  =========  ==========
operation           CSTable    FSTable
==================  =========  ==========
append (insert)     O(1)       O(log n)
in-place update     O(n)       O(log n)
delete              O(n)       O(log n)
weighted sample     O(log n)   O(log n)
==================  =========  ==========

Sampling uses the paper's FTS method (Algorithm 5): a *range-narrow*
binary search over the padded range ``[0, 2^m - 1]`` that exploits the
sub-tree-sum property ``F[2^k - 1] == prefix_sum(2^k - 1)`` (Theorem 4),
subtracting covered mass when descending to the right half.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.errors import (
    EmptyStructureError,
    IndexOutOfRangeError,
    InvalidWeightError,
)

__all__ = ["FSTable", "lsb"]


def lsb(x: int) -> int:
    """Return the value of the lowest set bit of ``x`` (``LSB`` in the paper).

    ``lsb(6) == 2`` because ``6 == 0b110``.  ``x`` must be positive.
    """
    if x <= 0:
        raise IndexOutOfRangeError(f"lsb() requires a positive integer, got {x}")
    return x & -x


_INF = float("inf")


def _validate_weight(weight: float) -> float:
    weight = float(weight)
    # weight != weight catches NaN without a math-module call.
    if weight < 0.0 or weight != weight or weight == _INF:
        raise InvalidWeightError(
            f"edge weights must be finite and non-negative, got {weight!r}"
        )
    return weight


class FSTable:
    """Fenwick-tree sum table over a leaf's (unordered) weight array.

    The table only stores the Fenwick entries; raw weights are *recovered*
    from the tree when needed (``weight(i)``), matching the paper's claim
    that the index takes the same memory as storing the weights themselves.

    Parameters
    ----------
    weights:
        Optional initial weights.  Building from ``n`` weights costs
        ``O(n)`` using the child-accumulation construction.
    """

    __slots__ = ("_tree",)

    def __init__(self, weights: Optional[Iterable[float]] = None) -> None:
        self._tree: List[float] = []
        if weights is not None:
            self._build(list(weights))

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self, weights: Sequence[float]) -> None:
        """O(n) bulk construction: start from raw weights then push each
        entry into its parent, the standard linear Fenwick build.

        Every element is visited exactly once and charged one addition
        into its unique parent ``i + LSB(i + 1)`` — linear in ``n``, in
        contrast to the ``O(n log n)`` insert-loop (`append` per
        element).  ``to_weights`` is the exact inverse pass.
        """
        tree = [_validate_weight(w) for w in weights]
        n = len(tree)
        for i in range(n):
            parent = i | (i + 1)  # == i + lsb(i + 1)
            if parent < n:
                tree[parent] += tree[i]
        self._tree = tree

    @classmethod
    def from_weights(cls, weights: Iterable[float]) -> "FSTable":
        """Build an FSTable from an iterable of raw weights in ``O(n)``."""
        return cls(weights)

    @classmethod
    def from_array(cls, weights) -> "FSTable":
        """Vectorized O(n) construction from a numpy weight array.

        Runs the same child-propagation build as :meth:`_build` but one
        Fenwick *level* at a time — all elements whose entry covers a
        range of ``step`` elements push into their parents in one
        vectorized add — so the Python-level work is ``O(log n)`` array
        ops instead of ``O(n)`` scalar iterations.  This is the leaf
        constructor of the bulk ingestion tier
        (:meth:`repro.core.samtree.Samtree.bulk_build`).
        """
        import numpy as np

        arr = np.asarray(weights, dtype=np.float64)
        if arr.ndim != 1:
            raise InvalidWeightError(
                f"weights must be one-dimensional, got shape {arr.shape}"
            )
        n = int(arr.size)
        table = cls()
        if n == 0:
            return table
        if not bool(np.isfinite(arr).all()) or bool((arr < 0.0).any()):
            bad = arr[~(np.isfinite(arr) & (arr >= 0.0))][0]
            raise InvalidWeightError(
                f"edge weights must be finite and non-negative, got {bad!r}"
            )
        tree = arr.copy()
        step = 1
        while step < n:
            # Indices i with LSB(i + 1) == step and parent i + step < n.
            idx = np.arange(step - 1, n - step, step << 1)
            if idx.size:
                tree[idx + step] += tree[idx]
            step <<= 1
        table._tree = tree.tolist()
        return table

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tree)

    def __bool__(self) -> bool:
        return bool(self._tree)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FSTable(n={len(self._tree)}, total={self.total():.6g})"

    def __iter__(self) -> Iterator[float]:
        """Iterate over *raw* weights (not Fenwick entries) in ``O(n)``."""
        return iter(self.to_weights())

    def entry(self, i: int) -> float:
        """Return the raw Fenwick entry ``F[i]`` (mostly for tests/debug)."""
        self._check_index(i)
        return self._tree[i]

    def _check_index(self, i: int) -> None:
        if not 0 <= i < len(self._tree):
            raise IndexOutOfRangeError(
                f"index {i} out of range for FSTable of {len(self._tree)} elements"
            )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def prefix_sum(self, i: int) -> float:
        """Return ``w_0 + ... + w_i`` in ``O(log n)``."""
        self._check_index(i)
        total = 0.0
        j = i
        while j >= 0:
            total += self._tree[j]
            j = (j & (j + 1)) - 1  # strip the range covered by F[j]
        return total

    def total(self) -> float:
        """Sum of all weights — the paper's ``getAllSum`` (Algorithm 5).

        Walks ``i <- i - LSB(i)`` from ``n`` down to ``0`` in ``O(log n)``.
        """
        tree = self._tree
        s = 0.0
        i = len(tree)
        while i > 0:
            s += tree[i - 1]
            i -= i & -i
        return s

    def weight(self, i: int) -> float:
        """Recover the raw weight ``w_i`` in ``O(log n)``.

        ``F[i]`` covers ``[g(i)+1, i]``; subtracting the entries of the
        children of ``i`` (``x = i - 2^k`` with ``LSB(x+1) == 2^k``)
        leaves exactly ``w_i``.
        """
        self._check_index(i)
        tree = self._tree
        value = tree[i]
        span = (i + 1) & -(i + 1)
        step = 1
        while step < span:
            value -= tree[i - step]
            step <<= 1
        # Every write path validates weights >= 0, so a negative here is
        # pure float cancellation noise; clamp so reconstructed weights
        # can be fed back into a fresh table (e.g. leaf splits).
        return value if value > 0.0 else 0.0

    def to_weights(self) -> List[float]:
        """Return the raw weight array in ``O(n)`` (reverse construction)."""
        weights = list(self._tree)
        n = len(weights)
        # Undo the bulk build: iterate top-down removing child contributions.
        for i in range(n - 1, -1, -1):
            parent = i | (i + 1)
            if parent < n:
                weights[parent] -= weights[i]
        # Cancellation can leave -epsilon in place of a stored 0.0 (the
        # subtraction order differs from the accumulation order); the
        # table's invariant is weights >= 0, so clamp the noise.
        return [w if w > 0.0 else 0.0 for w in weights]

    def to_weight_array(self):
        """Vectorized ``O(n)`` inverse of :meth:`from_array`.

        Runs the same level-wise child propagation as the vectorized
        build, in reverse order with subtraction, so the Python-level
        work is ``O(log n)`` array ops.  Cancellation noise is clamped
        to the ``weights >= 0`` invariant exactly as :meth:`to_weights`
        does.  This is the leaf *reader* of the flattening paths
        (:class:`repro.core.snapshot.TreeSnapshot` and the frozen-shard
        compiler).
        """
        import numpy as np

        tree = np.asarray(self._tree, dtype=np.float64).copy()
        n = int(tree.size)
        if n == 0:
            return tree
        step = 1
        while step < n:
            step <<= 1
        step >>= 1
        while step:
            idx = np.arange(step - 1, n - step, step << 1)
            if idx.size:
                tree[idx + step] -= tree[idx]
            step >>= 1
        np.maximum(tree, 0.0, out=tree)
        return tree

    # ------------------------------------------------------------------
    # dynamic updates (paper Algorithms 3 and 4)
    # ------------------------------------------------------------------
    def add(self, i: int, delta: float) -> None:
        """Add ``delta`` to ``w_i`` — Algorithm 3 (in-place update).

        Updates every Fenwick entry whose range covers ``i`` by walking
        ``i <- i + LSB(i + 1)``; ``O(log n)``.
        """
        self._check_index(i)
        n = len(self._tree)
        if delta != delta or delta == _INF or delta == -_INF:
            raise InvalidWeightError(f"delta must be finite, got {delta!r}")
        tree = self._tree
        j = i
        while j < n:
            tree[j] += delta
            j |= j + 1  # == j + lsb(j + 1)

    def update(self, i: int, new_weight: float) -> float:
        """Set ``w_i`` to ``new_weight``; returns the previous weight."""
        new_weight = _validate_weight(new_weight)
        self._check_index(i)
        tree = self._tree
        # Recover w_i inline (children subtraction), then push the delta.
        old = tree[i]
        span = (i + 1) & -(i + 1)
        step = 1
        while step < span:
            old -= tree[i - step]
            step <<= 1
        delta = new_weight - old
        if delta:
            n = len(tree)
            j = i
            while j < n:
                tree[j] += delta
                j |= j + 1
        return old

    def append(self, weight: float) -> int:
        """Append a new weight at index ``n`` — Algorithm 4 (new insertion).

        The new entry ``F[n]`` must cover ``[g(n)+1, n]``; its value is the
        new weight plus the entries of its children, found by enumerating
        the trailing-zero count ``k`` of candidate child indices.  Returns
        the index of the appended element.  ``O(log n)``.
        """
        weight = _validate_weight(weight)
        tree = self._tree
        i = len(tree)
        s = weight
        step = 1
        limit = i + 1
        while step < limit:
            x1 = i - step + 1  # candidate child index + 1
            if x1 > 0 and x1 & -x1 == step:
                s += tree[x1 - 1]
            step <<= 1
        tree.append(s)
        return i

    def delete(self, i: int) -> float:
        """Delete the element at ``i`` by swap-with-last (paper §V-A.2).

        Mirrors the leaf-node semantics: the element at ``i`` is replaced
        by the last element, then the table shrinks by one.  The caller
        must apply the *same swap* to the leaf's ID list.  Returns the
        deleted weight.  ``O(log n)``.
        """
        self._check_index(i)
        n = len(self._tree)
        last = n - 1
        if i == last:
            # F entries with index < last never cover index `last`
            # (every range [g(j)+1, j] ends at j), so truncation is exact.
            deleted = self.weight(last)
            self._tree.pop()
            return deleted
        deleted = self.weight(i)
        moved = self.weight(last)
        self._tree.pop()
        self.add(i, moved - deleted)
        return deleted

    def extend(self, weights: Iterable[float]) -> None:
        """Append many weights (each in ``O(log n)``)."""
        for w in weights:
            self.append(w)

    def clear(self) -> None:
        """Remove all elements."""
        self._tree.clear()

    # ------------------------------------------------------------------
    # FTS sampling (paper Algorithm 5)
    # ------------------------------------------------------------------
    def sample_with(self, r: float) -> int:
        """Deterministic FTS: return the index ``p`` selected by mass ``r``.

        ``r`` must lie in ``[0, total())``.  Equivalent to the ITS rule of
        finding the smallest ``i`` with ``prefix_sum(i) > r`` but computed
        directly on the soft prefix sums via range narrowing.
        """
        n = len(self._tree)
        if n == 0:
            raise EmptyStructureError("cannot sample from an empty FSTable")
        if r < 0:
            raise InvalidWeightError(f"sampling mass must be non-negative, got {r}")
        # Pad the search range to the next power of two (paper line 3).
        tree = self._tree
        m = 1
        while m < n:
            m <<= 1
        left, right = 0, m - 1
        remaining = r
        while left < right:
            mid = (left + right) >> 1
            if mid >= n:
                right = mid
                continue
            value = tree[mid]
            if value > remaining:
                right = mid
            else:
                remaining -= value
                left = mid + 1
        if left >= n:
            # Only reachable when r >= total() (caller passed too much mass);
            # clamp to the last valid element for robustness.
            left = n - 1
        return left

    def sample(self, rng: Optional[random.Random] = None) -> int:
        """Draw one index with probability proportional to its weight."""
        total = self.total()
        if total <= 0.0:
            if not self._tree:
                raise EmptyStructureError("cannot sample from an empty FSTable")
            # All-zero weights degenerate to uniform sampling.
            rand = rng.random() if rng is not None else random.random()
            return int(rand * len(self._tree)) % len(self._tree)
        rand = rng.random() if rng is not None else random.random()
        return self.sample_with(rand * total)

    def sample_many(
        self, k: int, rng: Optional[random.Random] = None
    ) -> List[int]:
        """Draw ``k`` indices with replacement (``O(k log n)``)."""
        if k < 0:
            raise IndexOutOfRangeError(f"sample count must be >= 0, got {k}")
        return [self.sample(rng) for _ in range(k)]

    # ------------------------------------------------------------------
    # memory accounting
    # ------------------------------------------------------------------
    def nbytes(self, weight_bytes: int = 4) -> int:
        """Bytes a C implementation would use: one weight-sized slot per
        element (the FSTable replaces — not supplements — the raw weights).
        """
        return weight_bytes * len(self._tree)
