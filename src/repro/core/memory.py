"""Analytic memory model (substitution for C-level ``sizeof`` accounting).

The paper's memory numbers (Table IV) are structural: bytes per edge of a
samtree versus PlatoGL's key-value blocks versus AliGraph's duplicated
topology.  A pure-Python reimplementation cannot measure those layouts —
``sys.getsizeof`` would report CPython object headers, not the C structs
the paper deploys — so every store in this package *accounts* its bytes
under one shared layout model:

* vertex IDs are 8 bytes (64-bit, as the CP-IDs compressor assumes);
* edge weights / prefix sums are 4-byte floats;
* pointers are 8 bytes;
* hash-table directories pay per-slot overhead at their real load factor;
* PlatoGL keys carry the extra block metadata the paper describes (the
  source ID *plus* "various information ... for uniquely mapping to a
  specific block") and each key-value pair pays a hash-index entry.

The constants live in a :class:`MemoryModel` so tests and benchmarks can
vary them; defaults are chosen from the published layouts and calibrated
against the ratios in Table IV (PlatoD2GL ≈ 20–34 % of PlatoGL).

Model assumptions (what the accounting does and does not cover)
---------------------------------------------------------------

* **Structural bytes only.**  The model counts the bytes the paper's C
  layout would allocate — node headers, ID lists, Fenwick/CSTable
  arrays, directory slots — *not* CPython object overhead, allocator
  slack, or interpreter state.  Two stores holding the same adjacency
  under the same layout report the same bytes regardless of Python
  version.
* **Pre-allocated tables pay for empty slots.**  The cuckoo directory
  charges every slot at its configured load factor
  (:meth:`MemoryModel.directory_bytes`), matching a deployment where
  the table is sized ahead of the keys.
* **Snapshot-cache entries are part of the store's footprint.**  The
  read path (:mod:`repro.core.snapshot`) keeps flat per-tree images —
  one ``id_bytes`` ID plus one ``weight_bytes`` cumulative-weight entry
  per cached edge.  ``DynamicGraphStore.nbytes`` includes them (they
  are resident memory the read path pays for); each entry is accounted
  under the **cache's own** model at build time, so passing a different
  model to ``nbytes`` rescales the tree/directory components but not
  already-cached entries.
* **No feature bytes.**  Vertex attributes are accounted separately by
  :class:`~repro.storage.attributes.AttributeStore`; topology/attribute
  totals are only combined at the server level
  (``GraphServer.nbytes``).
* **Per-tree breakdowns are exact partitions.**  ``Samtree.nbytes`` and
  ``DynamicGraphStore.nbytes`` are defined as the sum of their
  ``nbytes_breakdown`` components, so the samtree doctor's
  Σ(components) == ``nbytes()`` invariant holds by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MemoryModel", "DEFAULT_MEMORY_MODEL", "humanize_bytes"]


@dataclass(frozen=True)
class MemoryModel:
    """Byte-size constants shared by every store's accounting."""

    #: Width of a vertex ID.
    id_bytes: int = 8
    #: Width of an edge weight / prefix-sum entry.
    weight_bytes: int = 4
    #: Width of a pointer (child links, value pointers).
    pointer_bytes: int = 8
    #: Per-node fixed header of a samtree node (size, capacity, flags).
    tree_node_header_bytes: int = 16
    #: Per-vertex record in the cuckoo directory: key + degree + tree ptr.
    directory_entry_bytes: int = 8 + 8 + 8
    #: Cuckoo tables run at ~80 % load; slots are paid whether used or not.
    cuckoo_load_factor: float = 0.8
    #: PlatoGL composite key: source ID + block sequence + edge type +
    #: block metadata ("various information except the unique identifier").
    kv_key_bytes: int = 8 + 8 + 4 + 12
    #: Per key-value pair index overhead in a general KV store
    #: (hash bucket entry, key pointer, value pointer, allocator header).
    kv_index_entry_bytes: int = 48
    #: Fixed header of a PlatoGL neighbor block (count, capacity, sums).
    kv_block_header_bytes: int = 24
    #: AliGraph stores in- and out-topology ("duplicate the graph
    #: topology for supporting fast sampling").
    aligraph_duplication_factor: int = 2
    #: Alias-method sampling table: one float prob + one int alias per edge.
    alias_entry_bytes: int = 4 + 8
    #: Per-vertex runtime overhead in AliGraph: in/out index pointers,
    #: several hash-index entries (vertex lookup, type routing, partition
    #: map), and the per-vertex sampler header.  Dominates at low density.
    aligraph_vertex_header_bytes: int = 256
    #: AliGraph's loading pipeline (GraphFlat-style) materialises raw edge
    #: lists alongside the CSR + alias structures it builds, so its build
    #: peak exceeds the steady-state footprint — the mechanism behind the
    #: paper's "o.o.m" entries at WeChat scale.
    aligraph_build_peak_factor: float = 2.5

    def directory_bytes(self, num_entries: int) -> int:
        """Bytes of a cuckoo directory holding ``num_entries`` records."""
        if num_entries == 0:
            return 0
        slots = int(num_entries / self.cuckoo_load_factor) + 1
        return slots * self.directory_entry_bytes


#: The model every store uses unless told otherwise.
DEFAULT_MEMORY_MODEL = MemoryModel()

_UNITS = ["B", "KB", "MB", "GB", "TB", "PB"]


def humanize_bytes(num_bytes: float) -> str:
    """Render a byte count the way the paper's tables do (e.g. ``0.81GB``)."""
    size = float(num_bytes)
    for unit in _UNITS:
        if size < 1024.0 or unit == _UNITS[-1]:
            if unit == "B":
                return f"{int(size)}B"
            return f"{size:.2f}{unit}"
        size /= 1024.0
    raise AssertionError("unreachable")
