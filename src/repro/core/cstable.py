"""CSTable: the cumulative-sum table + ITS sampling (paper §II-B).

The CSTable is the classic Inverse Transform Sampling (ITS) index used by
PlatoGL [24] and by the *internal* nodes of a PlatoD2GL samtree.  Entry
``C[i]`` is the strict prefix sum ``w_0 + ... + w_i`` (Equation 2), so a
weighted draw is a binary search for the smallest ``i`` with ``C[i] > R``.

Its costs are the reference point of the paper's Table II:

* appending a new last element is ``O(1)``;
* an in-place update or a deletion rewrites every later entry, ``O(n)``;
* a weighted sample is a binary search, ``O(log n)``.

Inside the samtree the table is small (one entry per child, at most the
node capacity), so the ``O(n)`` maintenance is bounded by the fan-out;
inside PlatoGL it grows with the block size, which is exactly the
inefficiency PlatoD2GL's FSTable removes.
"""

from __future__ import annotations

import bisect
import math
import random
from typing import Iterable, Iterator, List, Optional

from repro.errors import (
    EmptyStructureError,
    IndexOutOfRangeError,
    InvalidWeightError,
)

__all__ = ["CSTable"]


def _validate_weight(weight: float) -> float:
    weight = float(weight)
    if math.isnan(weight) or math.isinf(weight) or weight < 0.0:
        raise InvalidWeightError(
            f"edge weights must be finite and non-negative, got {weight!r}"
        )
    return weight


class CSTable:
    """Strict prefix-sum table with ITS weighted sampling.

    Stores ``C[i] = sum(weights[:i + 1])``.  The memory cost matches the
    raw weight array (one float per element), as the paper notes.
    """

    __slots__ = ("_sums",)

    def __init__(self, weights: Optional[Iterable[float]] = None) -> None:
        self._sums: List[float] = []
        if weights is not None:
            running = 0.0
            for w in weights:
                running += _validate_weight(w)
                self._sums.append(running)

    @classmethod
    def from_weights(cls, weights: Iterable[float]) -> "CSTable":
        """Build from raw weights in ``O(n)``."""
        return cls(weights)

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._sums)

    def __bool__(self) -> bool:
        return bool(self._sums)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CSTable(n={len(self._sums)}, total={self.total():.6g})"

    def __iter__(self) -> Iterator[float]:
        """Iterate over *raw* weights."""
        return iter(self.to_weights())

    def _check_index(self, i: int) -> None:
        if not 0 <= i < len(self._sums):
            raise IndexOutOfRangeError(
                f"index {i} out of range for CSTable of {len(self._sums)} elements"
            )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def prefix_sum(self, i: int) -> float:
        """Return ``w_0 + ... + w_i`` in ``O(1)``."""
        self._check_index(i)
        return self._sums[i]

    def total(self) -> float:
        """Sum of all weights (``0.0`` when empty)."""
        return self._sums[-1] if self._sums else 0.0

    def weight(self, i: int) -> float:
        """Recover the raw weight ``w_i`` in ``O(1)``."""
        self._check_index(i)
        if i == 0:
            return self._sums[0]
        return self._sums[i] - self._sums[i - 1]

    def to_weights(self) -> List[float]:
        """Return the raw weight array in ``O(n)``."""
        weights: List[float] = []
        prev = 0.0
        for s in self._sums:
            weights.append(s - prev)
            prev = s
        return weights

    # ------------------------------------------------------------------
    # dynamic updates — the costs PlatoD2GL's FSTable improves on
    # ------------------------------------------------------------------
    def append(self, weight: float) -> int:
        """Append a new last element in ``O(1)``; returns its index."""
        weight = _validate_weight(weight)
        self._sums.append(self.total() + weight)
        return len(self._sums) - 1

    def extend(self, weights: Iterable[float]) -> None:
        """Append many weights."""
        for w in weights:
            self.append(w)

    def update(self, i: int, new_weight: float) -> float:
        """Set ``w_i`` — rewrites all later prefix sums, ``O(n - i)``.

        Returns the previous weight.
        """
        new_weight = _validate_weight(new_weight)
        old = self.weight(i)
        delta = new_weight - old
        if delta:
            for j in range(i, len(self._sums)):
                self._sums[j] += delta
        return old

    def add(self, i: int, delta: float) -> None:
        """Add ``delta`` to ``w_i`` (``O(n - i)``)."""
        if math.isnan(delta) or math.isinf(delta):
            raise InvalidWeightError(f"delta must be finite, got {delta!r}")
        self._check_index(i)
        for j in range(i, len(self._sums)):
            self._sums[j] += delta

    def delete(self, i: int) -> float:
        """Remove the element at ``i``, shifting later entries: ``O(n - i)``.

        Returns the deleted weight.  (Unlike the FSTable, the CSTable keeps
        positional order, so deletion is a shift, not a swap.)
        """
        removed = self.weight(i)
        for j in range(i + 1, len(self._sums)):
            self._sums[j - 1] = self._sums[j] - removed
        self._sums.pop()
        return removed

    def insert(self, i: int, weight: float) -> None:
        """Insert a weight *before* index ``i`` (``O(n - i)``)."""
        weight = _validate_weight(weight)
        if not 0 <= i <= len(self._sums):
            raise IndexOutOfRangeError(
                f"insert position {i} out of range for CSTable of "
                f"{len(self._sums)} elements"
            )
        prev = self._sums[i - 1] if i > 0 else 0.0
        self._sums.insert(i, prev + weight)
        for j in range(i + 1, len(self._sums)):
            self._sums[j] += weight

    def clear(self) -> None:
        """Remove all elements."""
        self._sums.clear()

    # ------------------------------------------------------------------
    # ITS sampling
    # ------------------------------------------------------------------
    def search(self, r: float) -> int:
        """Return the smallest ``i`` with ``C[i] > r`` (ITS rule).

        ``r`` must lie in ``[0, total())``; out-of-range masses are clamped
        to the last element for robustness against floating-point drift.
        """
        if not self._sums:
            raise EmptyStructureError("cannot search an empty CSTable")
        if r < 0:
            raise InvalidWeightError(f"sampling mass must be non-negative, got {r}")
        i = bisect.bisect_right(self._sums, r)
        if i >= len(self._sums):
            i = len(self._sums) - 1
        return i

    def sample(self, rng: Optional[random.Random] = None) -> int:
        """Draw one index with probability proportional to its weight."""
        total = self.total()
        if total <= 0.0:
            if not self._sums:
                raise EmptyStructureError("cannot sample from an empty CSTable")
            rand = rng.random() if rng is not None else random.random()
            return int(rand * len(self._sums)) % len(self._sums)
        rand = rng.random() if rng is not None else random.random()
        return self.search(rand * total)

    def sample_many(self, k: int, rng: Optional[random.Random] = None) -> List[int]:
        """Draw ``k`` indices with replacement."""
        if k < 0:
            raise IndexOutOfRangeError(f"sample count must be >= 0, got {k}")
        return [self.sample(rng) for _ in range(k)]

    # ------------------------------------------------------------------
    # memory accounting
    # ------------------------------------------------------------------
    def nbytes(self, weight_bytes: int = 4) -> int:
        """Bytes a C implementation would use (one float per element)."""
        return weight_bytes * len(self._sums)
