"""Neighbor-sampling strategies over a samtree (paper §V-C and beyond).

The paper's complete neighbor sampling — one mass drawn in ``[0, w_s)``,
narrowed by ITS at internal nodes and FTS at the leaf — lives on
:meth:`repro.core.samtree.Samtree.sample`.  This module packages the
*policies* GNN workloads layer on top of that primitive:

* :class:`WeightedWithReplacement` — the paper's default (independent
  draws, probability ``w_u / w_s`` each);
* :class:`WeightedWithoutReplacement` — distinct neighbors, successive
  draws re-weighted by removal (A-ES style via rejection against a
  shrinking mass);
* :class:`UniformWithReplacement` — unweighted random sampling (§II-B's
  other basic operation), via the samtree's per-child counts;
* :class:`TopKByWeight` — deterministic heaviest-``k`` neighbors, the
  policy production recommenders use for "strongest interactions".

Every strategy returns *at most* ``k`` IDs and never pads; padding
conventions belong to the operator layer (:mod:`repro.gnn.samplers`).
"""

from __future__ import annotations

import abc
import heapq
import random
from typing import List, Optional

from repro.core.samtree import Samtree
from repro.core.snapshot import RNGLike, coerce_scalar_rng
from repro.errors import ConfigurationError

__all__ = [
    "SamplingStrategy",
    "WeightedWithReplacement",
    "WeightedWithoutReplacement",
    "UniformWithReplacement",
    "TopKByWeight",
    "make_strategy",
]


class SamplingStrategy(abc.ABC):
    """A neighbor-selection policy over one samtree."""

    name: str = "abstract"

    @abc.abstractmethod
    def sample(
        self,
        tree: Samtree,
        k: int,
        rng: RNGLike = None,
    ) -> List[int]:
        """Select up to ``k`` neighbor IDs from ``tree``."""

    @staticmethod
    def _check_k(k: int) -> None:
        if k < 0:
            raise ConfigurationError(f"sample count must be >= 0, got {k}")


class WeightedWithReplacement(SamplingStrategy):
    """Independent weighted draws — the paper's neighbor sampling."""

    name = "weighted"

    def sample(
        self,
        tree: Samtree,
        k: int,
        rng: RNGLike = None,
    ) -> List[int]:
        self._check_k(k)
        if not tree or k == 0:
            return []
        return tree.sample_many(k, coerce_scalar_rng(rng))


class WeightedWithoutReplacement(SamplingStrategy):
    """Distinct weighted neighbors.

    Repeatedly draws from the live tree and rejects repeats.  Rejection
    against the *full* mass stays efficient while ``k`` is well below
    the neighborhood size; once the draw budget is spent (``max_rounds``
    × requested), the remaining slots fall back to a deterministic
    heaviest-first fill so the result is always ``min(k, degree)`` IDs.
    """

    name = "weighted_distinct"

    def __init__(self, max_rounds: int = 8) -> None:
        if max_rounds < 1:
            raise ConfigurationError(
                f"max_rounds must be >= 1, got {max_rounds}"
            )
        self.max_rounds = max_rounds

    def sample(
        self,
        tree: Samtree,
        k: int,
        rng: RNGLike = None,
    ) -> List[int]:
        self._check_k(k)
        if not tree or k == 0:
            return []
        rng = coerce_scalar_rng(rng)
        want = min(k, tree.degree)
        if want == tree.degree:
            return list(tree.neighbors())
        chosen: List[int] = []
        seen = set()
        budget = self.max_rounds * want
        while len(chosen) < want and budget > 0:
            budget -= 1
            vid = tree.sample(rng)
            if vid not in seen:
                seen.add(vid)
                chosen.append(vid)
        if len(chosen) < want:
            # Deterministic completion: heaviest unseen neighbors.
            rest = heapq.nlargest(
                want - len(chosen),
                ((w, vid) for vid, w in tree.items() if vid not in seen),
            )
            chosen.extend(vid for _, vid in rest)
        return chosen


class UniformWithReplacement(SamplingStrategy):
    """Unweighted random sampling: each neighbor with probability 1/n_s."""

    name = "uniform"

    def sample(
        self,
        tree: Samtree,
        k: int,
        rng: RNGLike = None,
    ) -> List[int]:
        self._check_k(k)
        if not tree or k == 0:
            return []
        rng = coerce_scalar_rng(rng)
        return [tree.sample_uniform(rng) for _ in range(k)]


class TopKByWeight(SamplingStrategy):
    """The ``k`` heaviest neighbors, deterministically (ties by ID)."""

    name = "topk"

    def sample(
        self,
        tree: Samtree,
        k: int,
        rng: RNGLike = None,
    ) -> List[int]:
        self._check_k(k)
        if not tree or k == 0:
            return []
        top = heapq.nlargest(k, ((w, -vid) for vid, w in tree.items()))
        return [-neg_vid for _, neg_vid in top]


_STRATEGIES = {
    cls.name: cls
    for cls in (
        WeightedWithReplacement,
        WeightedWithoutReplacement,
        UniformWithReplacement,
        TopKByWeight,
    )
}


def make_strategy(name: str, **kwargs) -> SamplingStrategy:
    """Instantiate a strategy by name (``weighted``, ``weighted_distinct``,
    ``uniform``, ``topk``)."""
    cls = _STRATEGIES.get(name)
    if cls is None:
        raise ConfigurationError(
            f"unknown sampling strategy {name!r}; known: {sorted(_STRATEGIES)}"
        )
    return cls(**kwargs)
