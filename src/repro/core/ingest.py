"""Columnar edge batches: the wire/stream format of the bulk ingestion tier.

PR 1 made the *read* path batched and columnar (flat snapshots, one RPC
per shard); this module is the symmetric half for the *write* path.  An
:class:`EdgeBatch` carries a batch of dynamic-update operations as five
parallel numpy arrays — ``src``/``dst`` (int64), ``weight`` (float64),
``etype`` (int16) and ``op`` (uint8) — instead of one Python object per
operation.  Everything downstream operates on the arrays directly:

* the store groups a batch per target samtree with one ``np.lexsort``
  (no per-op dict churn) and resolves duplicate ``(etype, src, dst)``
  keys *last-wins* with sequential-application semantics;
* the distributed client slices one sub-batch per owning shard and
  accounts the :class:`~repro.distributed.rpc.NetworkModel` payload from
  the array bytes, not from per-op object framing;
* :class:`~repro.datasets.stream.EdgeStream` and the dataset loaders
  emit these batches end to end, so a bulk load never materialises
  millions of :class:`~repro.core.types.EdgeOp` records.

Op codes are small ints (:data:`OP_INSERT` upsert, :data:`OP_UPDATE`
in-place only, :data:`OP_DELETE`), mirroring the three dynamic-update
kinds of the paper's Table II.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.types import DEFAULT_ETYPE, EdgeOp, OpKind
from repro.errors import ConfigurationError, InvalidWeightError

__all__ = [
    "OP_INSERT",
    "OP_UPDATE",
    "OP_DELETE",
    "OP_KIND_CODES",
    "EdgeBatch",
    "IngestStats",
    "fold_run",
]

#: Operation codes of the ``op`` column (upsert / in-place / delete).
OP_INSERT = 0
OP_UPDATE = 1
OP_DELETE = 2

#: ``OpKind`` <-> op-code mapping (both directions).
OP_KIND_CODES = {
    OpKind.INSERT: OP_INSERT,
    OpKind.UPDATE: OP_UPDATE,
    OpKind.DELETE: OP_DELETE,
}
_CODE_KINDS = {v: k for k, v in OP_KIND_CODES.items()}

#: Modeled wire bytes per column entry: 8 (src) + 8 (dst) + 4 (weight,
#: f32 on the wire) + 2 (etype) + 1 (op code); plus one fixed header per
#: message.  Compare the per-op object framing of the scalar path
#: (``repro.distributed.client._OP_BYTES``): the columnar frame carries
#: the etype and op kind explicitly yet still amortises to almost the
#: same bytes per row — the win is one message per shard per batch.
_ROW_BYTES = 8 + 8 + 4 + 2 + 1
_HEADER_BYTES = 16


class IngestStats:
    """Outcome counters of one bulk mutation (store- or shard-level)."""

    __slots__ = (
        "ops", "inserted", "removed", "trees_rebuilt", "trees_incremental",
        "trees_created",
    )

    def __init__(
        self,
        ops: int = 0,
        inserted: int = 0,
        removed: int = 0,
        trees_rebuilt: int = 0,
        trees_incremental: int = 0,
        trees_created: int = 0,
    ) -> None:
        self.ops = ops
        #: Net new edges added by the batch.
        self.inserted = inserted
        #: Net edges removed by the batch.
        self.removed = removed
        #: Trees that took the O(n) bottom-up rebuild path.
        self.trees_rebuilt = trees_rebuilt
        #: Trees that took the incremental PALM/`apply_source_batch` path.
        self.trees_incremental = trees_incremental
        #: Trees created fresh by the batch (bulk-built).
        self.trees_created = trees_created

    @property
    def net_edges(self) -> int:
        return self.inserted - self.removed

    def merge_from(self, other: "IngestStats") -> None:
        self.ops += other.ops
        self.inserted += other.inserted
        self.removed += other.removed
        self.trees_rebuilt += other.trees_rebuilt
        self.trees_incremental += other.trees_incremental
        self.trees_created += other.trees_created

    def reset(self) -> None:
        """Zero every counter in place (registered views stay bound)."""
        for slot in self.__slots__:
            setattr(self, slot, 0)

    def to_dict(self) -> dict:
        return {s: getattr(self, s) for s in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        fields = ", ".join(f"{s}={getattr(self, s)}" for s in self.__slots__)
        return f"IngestStats({fields})"


class EdgeBatch:
    """A columnar batch of edge operations (five parallel arrays).

    All columns are validated/coerced on construction; ``weight``,
    ``etype`` and ``op`` broadcast from scalars (the all-inserts,
    homogeneous bulk-load case costs no per-row Python work at all).
    """

    __slots__ = ("src", "dst", "weight", "etype", "op")

    def __init__(
        self,
        src,
        dst,
        weight=None,
        etype=None,
        op=None,
    ) -> None:
        self.src = np.asarray(src, dtype=np.int64)
        self.dst = np.asarray(dst, dtype=np.int64)
        if self.src.ndim != 1 or self.src.shape != self.dst.shape:
            raise ConfigurationError(
                f"src/dst must be equal-length 1-D arrays, got "
                f"{self.src.shape} vs {self.dst.shape}"
            )
        n = self.src.size
        self.weight = self._column(
            weight, n, np.float64, 1.0, "weight"
        )
        self.etype = self._column(
            etype, n, np.int16, DEFAULT_ETYPE, "etype"
        )
        self.op = self._column(op, n, np.uint8, OP_INSERT, "op")
        if n:
            if bool((self.src < 0).any()) or bool((self.dst < 0).any()):
                raise InvalidWeightError(
                    "vertex IDs must be non-negative"
                )
            if bool((self.op > OP_DELETE).any()):
                raise ConfigurationError(
                    f"op codes must be in {{0, 1, 2}}, got "
                    f"{int(self.op.max())}"
                )
            non_delete = self.op != OP_DELETE
            w = self.weight[non_delete]
            if not bool(np.isfinite(w).all()) or bool((w < 0.0).any()):
                raise InvalidWeightError(
                    "edge weights must be finite and non-negative"
                )

    @staticmethod
    def _column(value, n: int, dtype, default, name: str) -> np.ndarray:
        if value is None:
            return np.full(n, default, dtype=dtype)
        arr = np.asarray(value, dtype=dtype)
        if arr.ndim == 0:
            return np.full(n, arr[()], dtype=dtype)
        if arr.shape != (n,):
            raise ConfigurationError(
                f"{name} column must have length {n}, got shape {arr.shape}"
            )
        return arr

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def _from_validated(
        cls, src, dst, weight, etype, op
    ) -> "EdgeBatch":
        """Internal: wrap columns already validated by a prior batch.

        Row subsets and permutations of a validated batch cannot violate
        any column invariant, so :meth:`select`/:meth:`sorted_by_tree`
        skip re-validation — the per-group cost on the hot ingest path.
        """
        out = object.__new__(cls)
        out.src = src
        out.dst = dst
        out.weight = weight
        out.etype = etype
        out.op = op
        return out

    @classmethod
    def inserts(cls, src, dst, weight=None, etype=None) -> "EdgeBatch":
        """An all-insert batch (the bulk-load shape)."""
        return cls(src, dst, weight, etype, OP_INSERT)

    @classmethod
    def from_edge_ops(cls, ops: Sequence[EdgeOp]) -> "EdgeBatch":
        """Columnarise a sequence of :class:`EdgeOp` records."""
        n = len(ops)
        src = np.empty(n, dtype=np.int64)
        dst = np.empty(n, dtype=np.int64)
        weight = np.empty(n, dtype=np.float64)
        etype = np.empty(n, dtype=np.int16)
        op = np.empty(n, dtype=np.uint8)
        for i, e in enumerate(ops):
            src[i] = e.src
            dst[i] = e.dst
            weight[i] = e.weight
            etype[i] = e.etype
            op[i] = OP_KIND_CODES[e.kind]
        return cls(src, dst, weight, etype, op)

    # ------------------------------------------------------------------
    # protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.src.size)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"EdgeBatch(n={len(self)}, etypes={np.unique(self.etype).size}, "
            f"inserts={int((self.op == OP_INSERT).sum())})"
        )

    @property
    def is_insert_only(self) -> bool:
        return bool((self.op == OP_INSERT).all()) if len(self) else True

    def select(self, indices) -> "EdgeBatch":
        """Row-subset batch (used by the per-shard routing).

        Skips column re-validation: a subset of valid rows is valid.
        """
        return EdgeBatch._from_validated(
            self.src[indices],
            self.dst[indices],
            self.weight[indices],
            self.etype[indices],
            self.op[indices],
        )

    def to_edge_ops(self) -> List[EdgeOp]:
        """Materialise per-op records (compatibility with scalar stores)."""
        return [
            EdgeOp(
                _CODE_KINDS[int(o)], int(s), int(d), float(w), int(e)
            )
            for s, d, w, e, o in zip(
                self.src, self.dst, self.weight, self.etype, self.op
            )
        ]

    def payload_nbytes(self) -> int:
        """Modeled wire bytes of this batch as one columnar message."""
        return _HEADER_BYTES + _ROW_BYTES * len(self)

    # ------------------------------------------------------------------
    # grouping
    # ------------------------------------------------------------------
    def sorted_by_tree(self) -> "EdgeBatch":
        """Rows lexsorted by ``(etype, src, dst)`` (stable: submission
        order survives inside each equal key, which is what makes the
        last-wins fold below equivalent to sequential application)."""
        order = np.lexsort((self.dst, self.src, self.etype))
        return self.select(order)

    def iter_tree_groups(
        self,
    ) -> Iterator[Tuple[int, int, "EdgeBatch"]]:
        """Yield ``(etype, src, sub_batch)`` per target samtree.

        The batch must already be tree-sorted; each yielded sub-batch is
        a contiguous slice (views, no copies of the underlying buffers).
        """
        n = len(self)
        if n == 0:
            return
        change = np.empty(n, dtype=bool)
        change[0] = True
        np.logical_or(
            self.etype[1:] != self.etype[:-1],
            self.src[1:] != self.src[:-1],
            out=change[1:],
        )
        starts = np.flatnonzero(change)
        ends = np.append(starts[1:], n)
        for a, b in zip(starts.tolist(), ends.tolist()):
            yield int(self.etype[a]), int(self.src[a]), self.select(
                slice(a, b)
            )


def fold_run(
    ops: Sequence[int], weights: Sequence[float]
) -> Optional[Tuple[int, float]]:
    """Fold duplicate operations on one ``(etype, src, dst)`` key.

    Returns the net ``(op_code, weight)`` whose single application leaves
    the store in exactly the state sequential application of the run
    would — or ``None`` when the run nets out to a no-op (e.g. updates
    after a delete).  The rules mirror per-op semantics:

    * an *insert* always wins over everything before it;
    * an *update* refines the pending weight when the edge will exist
      (after an insert, or standalone against a pre-existing edge) and
      is a no-op after a delete;
    * a *delete* cancels everything before it.
    """
    net: Optional[Tuple[int, float]] = None
    for code, w in zip(ops, weights):
        if code == OP_INSERT:
            net = (OP_INSERT, w)
        elif code == OP_DELETE:
            net = (OP_DELETE, 0.0)
        else:  # OP_UPDATE
            if net is None:
                net = (OP_UPDATE, w)
            elif net[0] == OP_DELETE:
                pass  # updating a just-deleted edge is a no-op
            else:
                net = (net[0], w)
    return net
