"""Shared types: edge records, update operations, and the store interface.

Every topology store in this package — PlatoD2GL's samtree store, the
PlatoGL block-KV baseline, and the AliGraph static baseline — implements
:class:`GraphStoreAPI`, so benchmark drivers, the distributed layer, and
the GNN samplers are store-agnostic.
"""

from __future__ import annotations

import abc
import enum
import random
import sys
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.memory import DEFAULT_MEMORY_MODEL, MemoryModel
from repro.core.snapshot import RNGLike, coerce_scalar_rng

__all__ = [
    "DEFAULT_ETYPE",
    "UNAVAILABLE",
    "Edge",
    "OpKind",
    "EdgeOp",
    "GraphStoreAPI",
]

#: Edge type used when the graph is homogeneous.
DEFAULT_ETYPE = 0


class _UnavailableType(tuple):
    """Singleton marker for results from shards with no live replica.

    An empty tuple subclass: falsy, iterates empty (samplers degrade
    gracefully), and identity-testable (``row is UNAVAILABLE``).  Lives
    here rather than in the distributed layer so store-agnostic
    consumers (the GNN samplers, the serving tier) can detect degraded
    rows without importing ``repro.distributed``.
    """

    __slots__ = ()

    def __new__(cls) -> "_UnavailableType":
        return super().__new__(cls, ())

    def __repr__(self) -> str:
        return "<UNAVAILABLE>"


#: Per-source marker returned by degraded reads.
UNAVAILABLE = _UnavailableType()

#: ``slots=True`` (3.10+) removes the per-instance ``__dict__`` from the
#: per-edge record types — millions of them are alive during a stream
#: replay, so the dict header is the dominant overhead.
_SLOTTED = {"slots": True} if sys.version_info >= (3, 10) else {}


@dataclass(frozen=True, **_SLOTTED)
class Edge:
    """A weighted directed edge ``e(src, dst, weight)`` of type ``etype``."""

    src: int
    dst: int
    weight: float = 1.0
    etype: int = DEFAULT_ETYPE


class OpKind(enum.Enum):
    """The three dynamic-update kinds of the paper's Table II."""

    INSERT = "insert"
    UPDATE = "update"
    DELETE = "delete"


@dataclass(frozen=True, **_SLOTTED)
class EdgeOp:
    """One dynamic-update operation against a topology store."""

    kind: OpKind
    src: int
    dst: int
    weight: float = 1.0
    etype: int = DEFAULT_ETYPE

    @classmethod
    def insert(
        cls, src: int, dst: int, weight: float = 1.0, etype: int = DEFAULT_ETYPE
    ) -> "EdgeOp":
        return cls(OpKind.INSERT, src, dst, weight, etype)

    @classmethod
    def update(
        cls, src: int, dst: int, weight: float, etype: int = DEFAULT_ETYPE
    ) -> "EdgeOp":
        return cls(OpKind.UPDATE, src, dst, weight, etype)

    @classmethod
    def delete(cls, src: int, dst: int, etype: int = DEFAULT_ETYPE) -> "EdgeOp":
        return cls(OpKind.DELETE, src, dst, 0.0, etype)


class GraphStoreAPI(abc.ABC):
    """Interface every topology store implements.

    Sources and destinations are 64-bit vertex IDs; ``etype`` selects a
    relation in heterogeneous graphs and defaults to ``0``.
    """

    # -- dynamic updates ------------------------------------------------
    @abc.abstractmethod
    def add_edge(
        self,
        src: int,
        dst: int,
        weight: float = 1.0,
        etype: int = DEFAULT_ETYPE,
    ) -> bool:
        """Insert an edge (or overwrite its weight); True when new."""

    @abc.abstractmethod
    def update_edge(
        self, src: int, dst: int, weight: float, etype: int = DEFAULT_ETYPE
    ) -> bool:
        """In-place weight update; False when the edge does not exist."""

    @abc.abstractmethod
    def remove_edge(
        self, src: int, dst: int, etype: int = DEFAULT_ETYPE
    ) -> bool:
        """Delete an edge; False when it does not exist."""

    def apply(self, op: EdgeOp) -> bool:
        """Apply one :class:`EdgeOp` (dispatch helper)."""
        if op.kind is OpKind.INSERT:
            return self.add_edge(op.src, op.dst, op.weight, op.etype)
        if op.kind is OpKind.UPDATE:
            return self.update_edge(op.src, op.dst, op.weight, op.etype)
        return self.remove_edge(op.src, op.dst, op.etype)

    def add_edges(self, edges: Iterable[Tuple[int, int, float]]) -> int:
        """Bulk-insert ``(src, dst, weight)`` triples; returns #new edges."""
        added = 0
        for src, dst, weight in edges:
            if self.add_edge(src, dst, weight):
                added += 1
        return added

    # -- columnar bulk ingestion ----------------------------------------
    # Generic fallbacks replaying row by row; samtree-backed stores
    # override these with the O(n) bottom-up build
    # (:meth:`repro.core.topology.DynamicGraphStore.apply_edge_batch`).
    # Imports are lazy: :mod:`repro.core.ingest` imports this module.
    def bulk_load(self, src, dst=None, weight=None, etype=None):
        """Insert-only columnar load; returns an ``IngestStats``."""
        from repro.core.ingest import EdgeBatch

        if isinstance(src, EdgeBatch):
            batch = src
            if not batch.is_insert_only:
                from repro.errors import ConfigurationError

                raise ConfigurationError(
                    "bulk_load takes insert-only batches; use "
                    "apply_edge_batch for mixed-op batches"
                )
        else:
            batch = EdgeBatch.inserts(src, dst, weight, etype)
        return self.apply_edge_batch(batch)

    def apply_edge_batch(self, batch, dst=None, weight=None, etype=None,
                         op=None):
        """Apply a columnar update batch; returns an ``IngestStats``.

        The fallback replays the batch op by op through
        :meth:`add_edge`/:meth:`update_edge`/:meth:`remove_edge` — the
        reference semantics every bulk path must reproduce exactly.
        """
        from repro.core.ingest import (
            OP_DELETE,
            OP_INSERT,
            EdgeBatch,
            IngestStats,
        )

        if not isinstance(batch, EdgeBatch):
            batch = EdgeBatch(batch, dst, weight, etype, op)
        stats = IngestStats(ops=len(batch))
        for i in range(len(batch)):
            code = int(batch.op[i])
            s = int(batch.src[i])
            d = int(batch.dst[i])
            e = int(batch.etype[i])
            if code == OP_INSERT:
                if self.add_edge(s, d, float(batch.weight[i]), e):
                    stats.inserted += 1
            elif code == OP_DELETE:
                if self.remove_edge(s, d, e):
                    stats.removed += 1
            else:
                self.update_edge(s, d, float(batch.weight[i]), e)
        return stats

    # -- queries ---------------------------------------------------------
    @abc.abstractmethod
    def degree(self, src: int, etype: int = DEFAULT_ETYPE) -> int:
        """Out-degree of ``src`` (0 when absent)."""

    @abc.abstractmethod
    def edge_weight(
        self, src: int, dst: int, etype: int = DEFAULT_ETYPE
    ) -> Optional[float]:
        """Weight of ``e(src, dst)`` or ``None``."""

    @abc.abstractmethod
    def neighbors(
        self, src: int, etype: int = DEFAULT_ETYPE
    ) -> List[Tuple[int, float]]:
        """All ``(dst, weight)`` pairs of ``src`` (order unspecified)."""

    def has_edge(self, src: int, dst: int, etype: int = DEFAULT_ETYPE) -> bool:
        """Whether ``e(src, dst)`` exists."""
        return self.edge_weight(src, dst, etype) is not None

    @property
    @abc.abstractmethod
    def num_edges(self) -> int:
        """Total stored edges across all relations."""

    @property
    @abc.abstractmethod
    def num_sources(self) -> int:
        """Number of vertices with at least one out-edge."""

    @abc.abstractmethod
    def sources(self, etype: int = DEFAULT_ETYPE) -> Iterator[int]:
        """Iterate over source vertices of a relation."""

    # -- sampling ----------------------------------------------------------
    @abc.abstractmethod
    def sample_neighbors(
        self,
        src: int,
        k: int,
        rng: RNGLike = None,
        etype: int = DEFAULT_ETYPE,
    ) -> List[int]:
        """Draw ``k`` weighted neighbor samples (with replacement).

        Returns an empty list when ``src`` has no out-edges, matching the
        padding convention of the GNN sampler layer.  ``rng`` may be a
        ``random.Random``, a ``numpy.random.Generator``, an ``int`` seed,
        or ``None``.
        """

    def sample_neighbors_uniform(
        self,
        src: int,
        k: int,
        rng: RNGLike = None,
        etype: int = DEFAULT_ETYPE,
    ) -> List[int]:
        """Draw ``k`` *uniform* neighbor samples (with replacement).

        Generic fallback over :meth:`neighbors`; stores with a native
        uniform path (the samtree's count descent) override this.
        """
        ids = [dst for dst, _ in self.neighbors(src, etype)]
        if not ids:
            return []
        rng = coerce_scalar_rng(rng) or random
        n = len(ids)
        return [ids[rng.randrange(n)] for _ in range(k)]

    def sample_neighbors_many(
        self,
        srcs: Sequence[int],
        k: int,
        rng: RNGLike = None,
        etype: int = DEFAULT_ETYPE,
    ) -> List[Sequence[int]]:
        """Batched weighted sampling: one row of ``k`` draws per source.

        This is the read path the operator layer
        (:mod:`repro.gnn.samplers`) calls for whole frontiers.  The
        generic fallback is a per-source loop; stores with a vectorized
        read path (:class:`~repro.core.topology.DynamicGraphStore` via
        its snapshot cache, the distributed client via one RPC per
        shard) override it.  Rows may be lists **or** int64 arrays;
        sources without out-edges yield empty rows.
        """
        rng = coerce_scalar_rng(rng)
        return [self.sample_neighbors(s, k, rng, etype) for s in srcs]

    def sample_neighbors_uniform_many(
        self,
        srcs: Sequence[int],
        k: int,
        rng: RNGLike = None,
        etype: int = DEFAULT_ETYPE,
    ) -> List[Sequence[int]]:
        """Batched uniform sampling (see :meth:`sample_neighbors_many`)."""
        rng = coerce_scalar_rng(rng)
        return [self.sample_neighbors_uniform(s, k, rng, etype) for s in srcs]

    def sample_neighbors_batch(
        self,
        srcs: Iterable[int],
        k: int,
        rng: RNGLike = None,
        etype: int = DEFAULT_ETYPE,
    ) -> List[List[int]]:
        """Compatibility shim over :meth:`sample_neighbors_many` that
        guarantees plain ``List[List[int]]`` rows."""
        rows = self.sample_neighbors_many(list(srcs), k, rng, etype)
        return [[int(v) for v in row] for row in rows]

    # -- accounting -------------------------------------------------------
    @abc.abstractmethod
    def nbytes(self, model: MemoryModel = DEFAULT_MEMORY_MODEL) -> int:
        """Modeled memory footprint in bytes (see ``repro.core.memory``)."""
