"""Observability: latency histograms and an instrumented store wrapper.

A production storage tier lives or dies by its tail latencies; the
paper's evaluation reports means, but the deployed system necessarily
watches distributions.  This module provides:

* :class:`LatencyHistogram` — log₂-bucketed latency recording with
  count/mean/percentile readout, mergeable across threads.  The class
  now lives in :mod:`repro.obs.hist` (the telemetry subsystem of
  DESIGN.md §11) and is re-exported here unchanged for compatibility —
  with exact ``frexp`` bucketing, a public :meth:`bucket_bounds`
  accessor, and an honest overflow bucket (the recorded max, not a
  fabricated bound);
* :class:`StoreMetrics` — one histogram per operation family
  (insert / update / delete / sample / read), registrable into a
  :class:`~repro.obs.registry.MetricsRegistry` via
  :meth:`StoreMetrics.register_into`;
* :class:`InstrumentedStore` — a :class:`GraphStoreAPI` wrapper that
  times every call into the wrapped store.  Drop-in: benchmarks,
  samplers, the PALM executor, and the distributed client all accept it
  unchanged.
"""

from __future__ import annotations

import random
import time
from typing import Dict, Iterator, List, Optional

from repro.core.memory import DEFAULT_MEMORY_MODEL, MemoryModel
from repro.core.types import DEFAULT_ETYPE, GraphStoreAPI
from repro.errors import ConfigurationError
from repro.obs.hist import LatencyHistogram

__all__ = ["LatencyHistogram", "StoreMetrics", "InstrumentedStore"]


class StoreMetrics:
    """One histogram per store operation family."""

    FAMILIES = ("insert", "update", "delete", "sample", "read")

    def __init__(self) -> None:
        self.histograms: Dict[str, LatencyHistogram] = {
            family: LatencyHistogram() for family in self.FAMILIES
        }

    def record(
        self,
        family: str,
        seconds: float,
        trace_id=None,
        detail: str = "",
    ) -> None:
        hist = self.histograms.get(family)
        if hist is None:
            raise ConfigurationError(
                f"unknown op family {family!r}; known: {self.FAMILIES}"
            )
        hist.record(seconds, trace_id=trace_id, detail=detail)

    def enable_exemplars(self) -> "StoreMetrics":
        """Opt every family histogram into slowest-op-per-bucket
        exemplars (DESIGN.md §12); idempotent."""
        for hist in self.histograms.values():
            hist.enable_exemplars()
        return self

    def reset(self) -> None:
        for hist in self.histograms.values():
            hist.reset()

    def register_into(self, registry, **labels) -> None:
        """Register every family histogram into a
        :class:`~repro.obs.registry.MetricsRegistry` as
        ``repro_store_op_latency_seconds{op="<family>"}`` — the same
        live objects, so later :meth:`record` calls show up in the next
        snapshot/export with no copying."""
        for family, hist in self.histograms.items():
            registry.register_histogram(
                "repro_store_op_latency_seconds",
                hist,
                help="Per-operation-family store latency",
                op=family,
                **labels,
            )

    def report(self) -> str:
        """Fixed-width summary of every family (µs units)."""
        lines = [
            f"{'op':<8} {'count':>8} {'mean':>10} {'p50':>10} {'p99':>10}"
        ]
        for family in self.FAMILIES:
            s = self.histograms[family].summary()
            lines.append(
                f"{family:<8} {int(s['count']):>8} "
                f"{s['mean'] * 1e6:>9.2f}u {s['p50'] * 1e6:>9.2f}u "
                f"{s['p99'] * 1e6:>9.2f}u"
            )
        return "\n".join(lines)


class InstrumentedStore(GraphStoreAPI):
    """Times every operation against a wrapped topology store."""

    def __init__(self, store: GraphStoreAPI, tracer=None) -> None:
        self.store = store
        self.metrics = StoreMetrics()
        #: Optional :class:`~repro.obs.trace.Tracer`; when set (and the
        #: family histograms have exemplars enabled), every timed op is
        #: tagged with the currently-active span's trace id so a fat
        #: p99 bucket links back to the request tree that caused it.
        self.tracer = tracer

    def _timed(self, family: str, fn, *args, **kwargs):
        start = time.perf_counter()
        try:
            return fn(*args, **kwargs)
        finally:
            seconds = time.perf_counter() - start
            trace_id = None
            if self.tracer is not None:
                span = self.tracer.current()
                if span is not None:
                    trace_id = span.trace_id
            self.metrics.record(family, seconds, trace_id=trace_id)

    # -- updates ----------------------------------------------------------
    def add_edge(self, src, dst, weight=1.0, etype=DEFAULT_ETYPE):
        return self._timed("insert", self.store.add_edge, src, dst, weight, etype)

    def update_edge(self, src, dst, weight, etype=DEFAULT_ETYPE):
        return self._timed(
            "update", self.store.update_edge, src, dst, weight, etype
        )

    def remove_edge(self, src, dst, etype=DEFAULT_ETYPE):
        return self._timed("delete", self.store.remove_edge, src, dst, etype)

    # -- queries ------------------------------------------------------------
    def degree(self, src, etype=DEFAULT_ETYPE):
        return self._timed("read", self.store.degree, src, etype)

    def edge_weight(self, src, dst, etype=DEFAULT_ETYPE):
        return self._timed("read", self.store.edge_weight, src, dst, etype)

    def neighbors(self, src, etype=DEFAULT_ETYPE):
        return self._timed("read", self.store.neighbors, src, etype)

    @property
    def num_edges(self) -> int:
        return self.store.num_edges

    @property
    def num_sources(self) -> int:
        return self.store.num_sources

    def sources(self, etype: int = DEFAULT_ETYPE) -> Iterator[int]:
        return self.store.sources(etype)

    # -- sampling -------------------------------------------------------------
    def sample_neighbors(
        self,
        src: int,
        k: int,
        rng: Optional[random.Random] = None,
        etype: int = DEFAULT_ETYPE,
    ) -> List[int]:
        return self._timed(
            "sample", self.store.sample_neighbors, src, k, rng, etype
        )

    def sample_neighbors_uniform(self, src, k, rng=None, etype=DEFAULT_ETYPE):
        return self._timed(
            "sample", self.store.sample_neighbors_uniform, src, k, rng, etype
        )

    def sample_neighbors_many(self, srcs, k, rng=None, etype=DEFAULT_ETYPE):
        """Forward the batched read path (one timed observation per batch),
        so the wrapped store's snapshot cache keeps serving it."""
        return self._timed(
            "sample", self.store.sample_neighbors_many, srcs, k, rng, etype
        )

    def sample_neighbors_uniform_many(
        self, srcs, k, rng=None, etype=DEFAULT_ETYPE
    ):
        return self._timed(
            "sample",
            self.store.sample_neighbors_uniform_many,
            srcs,
            k,
            rng,
            etype,
        )

    # -- accounting -----------------------------------------------------------
    def nbytes(self, model: MemoryModel = DEFAULT_MEMORY_MODEL) -> int:
        return self.store.nbytes(model)

    def check_invariants(self) -> None:
        check = getattr(self.store, "check_invariants", None)
        if check is not None:
            check()
