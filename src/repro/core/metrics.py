"""Observability: latency histograms and an instrumented store wrapper.

A production storage tier lives or dies by its tail latencies; the
paper's evaluation reports means, but the deployed system necessarily
watches distributions.  This module provides:

* :class:`LatencyHistogram` — log₂-bucketed latency recording with
  count/mean/percentile readout, mergeable across threads;
* :class:`StoreMetrics` — one histogram per operation family
  (insert / update / delete / sample / read);
* :class:`InstrumentedStore` — a :class:`GraphStoreAPI` wrapper that
  times every call into the wrapped store.  Drop-in: benchmarks,
  samplers, the PALM executor, and the distributed client all accept it
  unchanged.
"""

from __future__ import annotations

import random
import time
from typing import Dict, Iterator, List, Optional

from repro.core.memory import DEFAULT_MEMORY_MODEL, MemoryModel
from repro.core.types import DEFAULT_ETYPE, GraphStoreAPI
from repro.errors import ConfigurationError

__all__ = ["LatencyHistogram", "StoreMetrics", "InstrumentedStore"]

#: Bucket 0 covers < 1 µs; bucket i covers [2^(i-1), 2^i) µs.
_NUM_BUCKETS = 24


class LatencyHistogram:
    """Log₂-bucketed latency histogram (microsecond resolution)."""

    __slots__ = ("_buckets", "_count", "_sum", "_max")

    def __init__(self) -> None:
        self._buckets = [0] * _NUM_BUCKETS
        self._count = 0
        self._sum = 0.0
        self._max = 0.0

    def record(self, seconds: float) -> None:
        """Record one observation."""
        if seconds < 0:
            raise ConfigurationError(f"latency cannot be negative: {seconds}")
        us = seconds * 1e6
        bucket = 0
        value = int(us)
        while value > 0 and bucket < _NUM_BUCKETS - 1:
            value >>= 1
            bucket += 1
        self._buckets[bucket] += 1
        self._count += 1
        self._sum += seconds
        if seconds > self._max:
            self._max = seconds

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        """Mean latency in seconds."""
        return self._sum / self._count if self._count else 0.0

    @property
    def max(self) -> float:
        """Largest recorded latency in seconds."""
        return self._max

    def percentile(self, q: float) -> float:
        """Approximate latency at quantile ``q`` (bucket upper bound,
        seconds).  q in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if self._count == 0:
            return 0.0
        target = q * self._count
        seen = 0
        for i, c in enumerate(self._buckets):
            seen += c
            if seen >= target:
                return (1 << i) * 1e-6
        return self._max

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram into this one."""
        for i in range(_NUM_BUCKETS):
            self._buckets[i] += other._buckets[i]
        self._count += other._count
        self._sum += other._sum
        self._max = max(self._max, other._max)

    def reset(self) -> None:
        self._buckets = [0] * _NUM_BUCKETS
        self._count = 0
        self._sum = 0.0
        self._max = 0.0

    def summary(self) -> Dict[str, float]:
        """count / mean / p50 / p99 / max in one dict (seconds)."""
        return {
            "count": float(self._count),
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p99": self.percentile(0.99),
            "max": self._max,
        }


class StoreMetrics:
    """One histogram per store operation family."""

    FAMILIES = ("insert", "update", "delete", "sample", "read")

    def __init__(self) -> None:
        self.histograms: Dict[str, LatencyHistogram] = {
            family: LatencyHistogram() for family in self.FAMILIES
        }

    def record(self, family: str, seconds: float) -> None:
        hist = self.histograms.get(family)
        if hist is None:
            raise ConfigurationError(
                f"unknown op family {family!r}; known: {self.FAMILIES}"
            )
        hist.record(seconds)

    def reset(self) -> None:
        for hist in self.histograms.values():
            hist.reset()

    def report(self) -> str:
        """Fixed-width summary of every family (µs units)."""
        lines = [
            f"{'op':<8} {'count':>8} {'mean':>10} {'p50':>10} {'p99':>10}"
        ]
        for family in self.FAMILIES:
            s = self.histograms[family].summary()
            lines.append(
                f"{family:<8} {int(s['count']):>8} "
                f"{s['mean'] * 1e6:>9.2f}u {s['p50'] * 1e6:>9.2f}u "
                f"{s['p99'] * 1e6:>9.2f}u"
            )
        return "\n".join(lines)


class InstrumentedStore(GraphStoreAPI):
    """Times every operation against a wrapped topology store."""

    def __init__(self, store: GraphStoreAPI) -> None:
        self.store = store
        self.metrics = StoreMetrics()

    def _timed(self, family: str, fn, *args, **kwargs):
        start = time.perf_counter()
        try:
            return fn(*args, **kwargs)
        finally:
            self.metrics.record(family, time.perf_counter() - start)

    # -- updates ----------------------------------------------------------
    def add_edge(self, src, dst, weight=1.0, etype=DEFAULT_ETYPE):
        return self._timed("insert", self.store.add_edge, src, dst, weight, etype)

    def update_edge(self, src, dst, weight, etype=DEFAULT_ETYPE):
        return self._timed(
            "update", self.store.update_edge, src, dst, weight, etype
        )

    def remove_edge(self, src, dst, etype=DEFAULT_ETYPE):
        return self._timed("delete", self.store.remove_edge, src, dst, etype)

    # -- queries ------------------------------------------------------------
    def degree(self, src, etype=DEFAULT_ETYPE):
        return self._timed("read", self.store.degree, src, etype)

    def edge_weight(self, src, dst, etype=DEFAULT_ETYPE):
        return self._timed("read", self.store.edge_weight, src, dst, etype)

    def neighbors(self, src, etype=DEFAULT_ETYPE):
        return self._timed("read", self.store.neighbors, src, etype)

    @property
    def num_edges(self) -> int:
        return self.store.num_edges

    @property
    def num_sources(self) -> int:
        return self.store.num_sources

    def sources(self, etype: int = DEFAULT_ETYPE) -> Iterator[int]:
        return self.store.sources(etype)

    # -- sampling -------------------------------------------------------------
    def sample_neighbors(
        self,
        src: int,
        k: int,
        rng: Optional[random.Random] = None,
        etype: int = DEFAULT_ETYPE,
    ) -> List[int]:
        return self._timed(
            "sample", self.store.sample_neighbors, src, k, rng, etype
        )

    def sample_neighbors_uniform(self, src, k, rng=None, etype=DEFAULT_ETYPE):
        return self._timed(
            "sample", self.store.sample_neighbors_uniform, src, k, rng, etype
        )

    def sample_neighbors_many(self, srcs, k, rng=None, etype=DEFAULT_ETYPE):
        """Forward the batched read path (one timed observation per batch),
        so the wrapped store's snapshot cache keeps serving it."""
        return self._timed(
            "sample", self.store.sample_neighbors_many, srcs, k, rng, etype
        )

    def sample_neighbors_uniform_many(
        self, srcs, k, rng=None, etype=DEFAULT_ETYPE
    ):
        return self._timed(
            "sample",
            self.store.sample_neighbors_uniform_many,
            srcs,
            k,
            rng,
            etype,
        )

    # -- accounting -----------------------------------------------------------
    def nbytes(self, model: MemoryModel = DEFAULT_MEMORY_MODEL) -> int:
        return self.store.nbytes(model)

    def check_invariants(self) -> None:
        check = getattr(self.store, "check_invariants", None)
        if check is not None:
            check()
