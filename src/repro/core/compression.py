"""CP-IDs: dynamic prefix compression of samtree ID lists (paper §VI-A).

Vertex IDs are 64-bit integers.  IDs that co-habit one samtree node were
routed there by their numeric order, so they overwhelmingly share their
high-order bytes.  Instead of storing ``n`` full 8-byte IDs, a compressed
node stores

    z | prefix | suf(v_0) | suf(v_1) | ... | suf(v_{n-1})        (Eq. 7)

where ``z`` is the shared-prefix length in bytes, ``prefix`` is those
``z`` high bytes, and each suffix is the remaining ``8 - z`` bytes.  The
paper restricts ``z`` to ``{0, 4, 6, 7}`` so the compressor only has to
test three candidate prefixes ("for fast compression").

The structure is *dynamic*: appending an ID whose high bytes disagree
with the current prefix triggers an in-place re-pack at the widest still
valid ``z`` (paper Appendix A).  Deletion uses swap-with-last, mirroring
the leaf/FSTable semantics.

:class:`PlainIDList` is the uncompressed twin used by the "w/o CP"
ablation; both classes satisfy the same interface so the samtree is
agnostic to which one backs its leaves.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import IndexOutOfRangeError, InvalidWeightError

__all__ = [
    "ALLOWED_PREFIX_LENGTHS",
    "ID_BYTES",
    "MAX_ID",
    "CompressedIDList",
    "PlainIDList",
    "make_id_list",
    "make_id_list_from_array",
    "common_prefix_length",
]

#: Width of a vertex ID in bytes (64-bit IDs throughout the system).
ID_BYTES = 8

#: Largest representable vertex ID.
MAX_ID = (1 << (8 * ID_BYTES)) - 1

#: Prefix lengths the paper allows, widest first (``m in {0, 4, 6, 7}``).
ALLOWED_PREFIX_LENGTHS: Tuple[int, ...] = (7, 6, 4, 0)


def _check_id(vertex_id: int) -> int:
    vertex_id = int(vertex_id)
    if not 0 <= vertex_id <= MAX_ID:
        raise InvalidWeightError(
            f"vertex IDs must fit in {8 * ID_BYTES} unsigned bits, got {vertex_id}"
        )
    return vertex_id


def _id_to_bytes(vertex_id: int) -> bytes:
    return vertex_id.to_bytes(ID_BYTES, "big")


def common_prefix_length(a: bytes, b: bytes) -> int:
    """Number of leading bytes shared by two 8-byte big-endian IDs."""
    n = 0
    for x, y in zip(a, b):
        if x != y:
            break
        n += 1
    return n


def _snap_prefix_length(raw: int) -> int:
    """Largest allowed prefix length that does not exceed ``raw``."""
    for z in ALLOWED_PREFIX_LENGTHS:
        if z <= raw:
            return z
    return 0


class CompressedIDList:
    """A CP-IDs list: shared prefix + packed fixed-width suffixes.

    Supports the exact operations a samtree leaf needs — append,
    positional read, in-place overwrite, swap-delete, membership scan —
    each touching only the packed byte buffer.
    """

    __slots__ = ("_z", "_prefix", "_prefix_int", "_suffixes", "_n")

    def __init__(self, ids: Optional[Iterable[int]] = None) -> None:
        self._z: int = ALLOWED_PREFIX_LENGTHS[0]
        self._prefix: bytes = b""
        self._prefix_int: int = 0  # prefix shifted into the high bytes
        self._suffixes = bytearray()
        self._n: int = 0
        if ids is not None:
            id_list = [_check_id(v) for v in ids]
            if id_list:
                self._repack(id_list)

    @classmethod
    def from_array(cls, ids) -> "CompressedIDList":
        """Build from a numpy array in one vectorized pass.

        The bulk ingestion tier packs thousands of leaves per call; this
        constructor views the IDs as big-endian byte rows, finds the
        widest shared prefix with one column-wise comparison against the
        first row, and slices all suffixes out with a single reshape —
        no per-ID Python loop.  The result is byte-identical to
        ``CompressedIDList(list(ids))``.
        """
        import numpy as np

        arr = np.asarray(ids, dtype=np.int64)
        n = int(arr.size)
        out = cls()
        if n == 0:
            return out
        if bool((arr < 0).any()):
            raise InvalidWeightError(
                f"vertex IDs must fit in {8 * ID_BYTES} unsigned bits, "
                f"got {int(arr.min())}"
            )
        be = (
            arr.astype(">u8")
            .view(np.uint8)
            .reshape(n, ID_BYTES)
        )
        eq = (be == be[0]).all(axis=0)
        raw = ID_BYTES
        for j in range(ID_BYTES):
            if not eq[j]:
                raw = j
                break
        z = _snap_prefix_length(min(raw, ID_BYTES - 1))
        width = ID_BYTES - z
        out._z = z
        out._prefix = be[0, :z].tobytes()
        out._prefix_int = int.from_bytes(
            out._prefix + b"\x00" * width, "big"
        )
        out._suffixes = bytearray(
            np.ascontiguousarray(be[:, z:]).tobytes()
        )
        out._n = n
        return out

    # ------------------------------------------------------------------
    # internal helpers
    # ------------------------------------------------------------------
    def _suffix_width(self) -> int:
        return ID_BYTES - self._z

    def _repack(self, ids: Sequence[int]) -> None:
        """Recompute the widest valid prefix and re-encode every ID."""
        encoded = [_id_to_bytes(v) for v in ids]
        first = encoded[0]
        raw = ID_BYTES
        for e in encoded[1:]:
            raw = min(raw, common_prefix_length(first, e))
            if raw == 0:
                break
        z = _snap_prefix_length(min(raw, ID_BYTES - 1))
        width = ID_BYTES - z
        self._z = z
        self._prefix = first[:z]
        self._prefix_int = int.from_bytes(
            self._prefix + b"\x00" * width, "big"
        )
        buf = bytearray(len(encoded) * width)
        for i, e in enumerate(encoded):
            buf[i * width : (i + 1) * width] = e[z:]
        self._suffixes = buf
        self._n = len(encoded)

    def _decode(self, i: int) -> int:
        width = ID_BYTES - self._z
        base = i * width
        return self._prefix_int | int.from_bytes(
            self._suffixes[base : base + width], "big"
        )

    def _check_index(self, i: int) -> None:
        if not 0 <= i < self._n:
            raise IndexOutOfRangeError(
                f"index {i} out of range for ID list of {self._n} elements"
            )

    # ------------------------------------------------------------------
    # read interface
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    def __bool__(self) -> bool:
        return self._n > 0

    def __iter__(self) -> Iterator[int]:
        width = self._suffix_width()
        prefix_int = self._prefix_int
        buf = self._suffixes
        from_bytes = int.from_bytes
        for i in range(self._n):
            yield prefix_int | from_bytes(buf[i * width : (i + 1) * width], "big")

    def __getitem__(self, i: int) -> int:
        self._check_index(i)
        return self._decode(i)

    def __contains__(self, vertex_id: int) -> bool:
        return self.index_of(vertex_id) is not None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CompressedIDList(n={self._n}, z={self._z})"

    @property
    def prefix_length(self) -> int:
        """Current shared-prefix length ``z`` in bytes."""
        return self._z if self._n else ALLOWED_PREFIX_LENGTHS[0]

    def to_list(self) -> List[int]:
        """Decode the full ID list."""
        return list(self)

    def to_array(self):
        """Vectorized decode to an ``int64`` array (inverse of
        :meth:`from_array`).

        Rebuilds the big-endian byte matrix — prefix columns broadcast,
        suffix columns reshaped straight out of the packed buffer — and
        views it back as 64-bit integers, so flattening a leaf costs no
        per-ID Python work (the snapshot/frozen-shard compilers' path).
        """
        import numpy as np

        n = self._n
        if n == 0:
            return np.empty(0, dtype=np.int64)
        width = self._suffix_width()
        be = np.zeros((n, ID_BYTES), dtype=np.uint8)
        be[:, self._z :] = np.frombuffer(
            bytes(self._suffixes), dtype=np.uint8
        ).reshape(n, width)
        if self._z:
            be[:, : self._z] = np.frombuffer(self._prefix, dtype=np.uint8)
        return be.reshape(-1).view(">u8").astype(np.int64)

    def index_of(self, vertex_id: int) -> Optional[int]:
        """Linear membership scan over the packed buffer.

        Leaf ID lists are unordered (samtree constraint 2), so membership
        is a scan; it runs over the byte buffer with ``bytes.find`` on
        suffix-aligned offsets, skipping IDs whose prefix cannot match.
        """
        vertex_id = _check_id(vertex_id)
        if self._n == 0:
            return None
        encoded = _id_to_bytes(vertex_id)
        if encoded[: self._z] != self._prefix:
            return None
        needle = encoded[self._z :]
        width = self._suffix_width()
        buf = self._suffixes
        start = 0
        end = self._n * width
        while True:
            pos = buf.find(needle, start, end)
            if pos < 0:
                return None
            if pos % width == 0:
                return pos // width
            # Unaligned hit: resume from the next suffix boundary.
            start = pos + (width - pos % width)

    # ------------------------------------------------------------------
    # write interface
    # ------------------------------------------------------------------
    def append(self, vertex_id: int) -> None:
        """Append an ID; re-packs at a narrower prefix when needed."""
        vertex_id = _check_id(vertex_id)
        if self._n == 0:
            self._repack([vertex_id])
            return
        encoded = _id_to_bytes(vertex_id)
        if encoded[: self._z] == self._prefix:
            self._suffixes.extend(encoded[self._z :])
            self._n += 1
            return
        ids = self.to_list()
        ids.append(vertex_id)
        self._repack(ids)

    def extend(self, ids: Iterable[int]) -> None:
        """Append many IDs."""
        for v in ids:
            self.append(v)

    def set(self, i: int, vertex_id: int) -> None:
        """Overwrite position ``i`` (re-packs when the prefix breaks)."""
        self._check_index(i)
        vertex_id = _check_id(vertex_id)
        encoded = _id_to_bytes(vertex_id)
        if encoded[: self._z] == self._prefix:
            width = self._suffix_width()
            self._suffixes[i * width : (i + 1) * width] = encoded[self._z :]
            return
        ids = self.to_list()
        ids[i] = vertex_id
        self._repack(ids)

    def swap_delete(self, i: int) -> int:
        """Remove position ``i`` by swap-with-last; returns the removed ID.

        Matches the FSTable delete: position ``i`` afterwards holds what
        used to be the last ID.
        """
        self._check_index(i)
        removed = self._decode(i)
        width = self._suffix_width()
        last = self._n - 1
        if i != last:
            self._suffixes[i * width : (i + 1) * width] = self._suffixes[
                last * width : (last + 1) * width
            ]
        del self._suffixes[last * width :]
        self._n -= 1
        if self._n == 0:
            self._z = ALLOWED_PREFIX_LENGTHS[0]
            self._prefix = b""
            self._prefix_int = 0
        return removed

    def clear(self) -> None:
        """Remove all IDs."""
        self._z = ALLOWED_PREFIX_LENGTHS[0]
        self._prefix = b""
        self._prefix_int = 0
        self._suffixes = bytearray()
        self._n = 0

    # ------------------------------------------------------------------
    # memory accounting
    # ------------------------------------------------------------------
    def nbytes(self) -> int:
        """Modeled bytes: ``1 (z) + z (prefix) + n * (8 - z)`` (Eq. 7)."""
        if self._n == 0:
            return 1
        return 1 + self._z + self._n * self._suffix_width()


class PlainIDList:
    """Uncompressed ID list with the same interface (the "w/o CP" twin)."""

    __slots__ = ("_ids",)

    def __init__(self, ids: Optional[Iterable[int]] = None) -> None:
        self._ids: List[int] = [_check_id(v) for v in ids] if ids else []

    @classmethod
    def from_array(cls, ids) -> "PlainIDList":
        """Vectorized construction (validation in one numpy pass)."""
        import numpy as np

        arr = np.asarray(ids, dtype=np.int64)
        out = cls()
        if arr.size and bool((arr < 0).any()):
            raise InvalidWeightError(
                f"vertex IDs must fit in {8 * ID_BYTES} unsigned bits, "
                f"got {int(arr.min())}"
            )
        out._ids = arr.tolist()
        return out

    def __len__(self) -> int:
        return len(self._ids)

    def __bool__(self) -> bool:
        return bool(self._ids)

    def __iter__(self) -> Iterator[int]:
        return iter(self._ids)

    def __getitem__(self, i: int) -> int:
        if not 0 <= i < len(self._ids):
            raise IndexOutOfRangeError(
                f"index {i} out of range for ID list of {len(self._ids)} elements"
            )
        return self._ids[i]

    def __contains__(self, vertex_id: int) -> bool:
        return vertex_id in self._ids

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PlainIDList(n={len(self._ids)})"

    @property
    def prefix_length(self) -> int:
        """Always 0 — no compression."""
        return 0

    def to_list(self) -> List[int]:
        return list(self._ids)

    def to_array(self):
        """Decode to an ``int64`` array (interface parity with CP-IDs)."""
        import numpy as np

        return np.asarray(self._ids, dtype=np.int64)

    def index_of(self, vertex_id: int) -> Optional[int]:
        try:
            return self._ids.index(vertex_id)
        except ValueError:
            return None

    def append(self, vertex_id: int) -> None:
        self._ids.append(_check_id(vertex_id))

    def extend(self, ids: Iterable[int]) -> None:
        for v in ids:
            self.append(v)

    def set(self, i: int, vertex_id: int) -> None:
        if not 0 <= i < len(self._ids):
            raise IndexOutOfRangeError(
                f"index {i} out of range for ID list of {len(self._ids)} elements"
            )
        self._ids[i] = _check_id(vertex_id)

    def swap_delete(self, i: int) -> int:
        if not 0 <= i < len(self._ids):
            raise IndexOutOfRangeError(
                f"index {i} out of range for ID list of {len(self._ids)} elements"
            )
        removed = self._ids[i]
        last = self._ids.pop()
        if i < len(self._ids):
            self._ids[i] = last
        return removed

    def clear(self) -> None:
        self._ids.clear()

    def nbytes(self) -> int:
        """Modeled bytes: one full 8-byte ID per element."""
        return ID_BYTES * len(self._ids)


def make_id_list(
    compress: bool, ids: Optional[Iterable[int]] = None
):
    """Factory: a compressed or plain ID list behind one interface."""
    return CompressedIDList(ids) if compress else PlainIDList(ids)


def make_id_list_from_array(compress: bool, ids):
    """Array-input factory (the bulk builder's vectorized leaf packer)."""
    if compress:
        return CompressedIDList.from_array(ids)
    return PlainIDList.from_array(ids)
