"""Intra-tree batch updates: PALM's bottom-up rounds (paper Appendix B).

The PALM executor guarantees each samtree is touched by one thread; this
module gives that thread the *within-tree* half of the scheme: instead
of walking root→leaf once per operation, a batch against one tree is

1. **grouped by leaf** — every operation descends once, and operations
   landing in the same leaf share the path;
2. **applied leaf-locally** — upserts, in-place updates, and
   swap-deletes mutate the leaf's ID list and FSTable together;
3. **repaired bottom-up in rounds** — each round visits the parents of
   the nodes modified in the previous round, re-splitting oversize
   children (a leaf that absorbed many inserts may need *several*
   splits), merging undersize ones, and rebuilding the parent's CSTable
   and counts from its final child list; the last round fixes the root
   (growing or collapsing the tree).

This amortises the Algorithm-2 path maintenance across the batch: a
parent whose ten children changed is rebuilt once, not ten times.

Operations are ``(kind, vertex_id, weight)`` triples with kind one of
``"insert"`` (upsert), ``"update"`` (only if present), ``"delete"``.
Outcomes mirror :meth:`GraphStoreAPI.apply` semantics per element.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.alpha_split import split_arrays
from repro.core.cstable import CSTable
from repro.core.samtree import Samtree, _InternalNode, _LeafNode, _MIN_KEY
from repro.errors import ConfigurationError

__all__ = ["apply_tree_batch", "TreeOp"]

#: One batched operation against a single tree.
TreeOp = Tuple[str, int, float]

_KINDS = ("insert", "update", "delete")


def apply_tree_batch(tree: Samtree, ops: Sequence[TreeOp]) -> List[bool]:
    """Apply a batch to one samtree with bottom-up repair rounds.

    Returns one outcome per op, in submission order: inserts report
    "was new", updates/deletes report "existed".  Equivalent to applying
    the ops sequentially (property-tested), but with each touched node
    repaired once per round instead of once per op.
    """
    outcomes = [False] * len(ops)
    if not ops:
        return outcomes
    for kind, _, _ in ops:
        if kind not in _KINDS:
            raise ConfigurationError(
                f"unknown tree op kind {kind!r}; expected one of {_KINDS}"
            )
    # One epoch bump per batch: every snapshot of this tree is stale the
    # moment the batch starts mutating leaves (see repro.core.snapshot).
    tree._version += 1

    # ------------------------------------------------------------------
    # Phase 1+2: one descent per op, grouped per leaf.  Leaf contents
    # change in phase 3 but separators do not, so the grouping stays
    # valid for the whole batch.
    # ------------------------------------------------------------------
    leaf_groups: Dict[int, Tuple[_LeafNode, List[int]]] = {}
    parents: Dict[int, Tuple[_InternalNode, None]] = {}
    child_parent: Dict[int, _InternalNode] = {}
    for i, (kind, vid, _) in enumerate(ops):
        node = tree._root
        while not node.is_leaf:
            ci = tree._route(node, vid)
            child = node.children[ci]
            child_parent[id(child)] = node
            node = child
        key = id(node)
        if key not in leaf_groups:
            leaf_groups[key] = (node, [])
        leaf_groups[key][1].append(i)

    # ------------------------------------------------------------------
    # Phase 3: leaf-local application.
    # ------------------------------------------------------------------
    modified: Dict[int, object] = {}
    for key, (leaf, idxs) in leaf_groups.items():
        for i in idxs:
            kind, vid, weight = ops[i]
            pos = leaf.ids.index_of(vid)
            if kind == "delete":
                if pos is None:
                    continue
                leaf.fstable.delete(pos)
                leaf.ids.swap_delete(pos)
                tree._size -= 1
                outcomes[i] = True
            elif kind == "update":
                if pos is None:
                    continue
                leaf.fstable.update(pos, weight)
                outcomes[i] = True
            else:  # insert (upsert)
                if pos is not None:
                    leaf.fstable.update(pos, weight)
                    outcomes[i] = False
                else:
                    leaf.ids.append(vid)
                    leaf.fstable.append(weight)
                    tree._size += 1
                    outcomes[i] = True
            tree.stats.leaf_ops += 1
        modified[key] = leaf

    # ------------------------------------------------------------------
    # Phase 4: bottom-up repair rounds.
    # ------------------------------------------------------------------
    current = modified
    while current:
        # Group this round's modified nodes by parent; root-level nodes
        # (no parent) are handled after the loop.
        by_parent: Dict[int, _InternalNode] = {}
        for key, node in current.items():
            parent = child_parent.get(key)
            if parent is not None:
                by_parent[id(parent)] = parent
        if not by_parent:
            break
        next_round: Dict[int, object] = {}
        for pkey, parent in by_parent.items():
            _repair_children(tree, parent)
            next_round[pkey] = parent
        current = next_round

    _repair_root(tree)
    return outcomes


# ---------------------------------------------------------------------------
# structural repair helpers
# ---------------------------------------------------------------------------
def _node_min_fill(tree: Samtree, node) -> int:
    if node.is_leaf:
        return tree.config.leaf_min_fill
    return tree.config.internal_min_fill


def _split_to_fit(tree: Samtree, node) -> Tuple[List[object], List[int]]:
    """Split ``node`` repeatedly until every part fits the capacity.

    Returns ``(parts, separators)`` with ``len(separators) ==
    len(parts) - 1`` (the minimum key of each non-first part).
    """
    cap = tree.config.capacity
    pending = [node]
    parts: List[object] = []
    seps: List[int] = []
    sep_of: Dict[int, int] = {}
    while pending:
        cur = pending.pop()
        if cur.size <= cap:
            parts.append(cur)
            continue
        if cur.is_leaf:
            ids = cur.ids.to_list()
            weights = cur.fstable.to_weights()
            l_ids, l_w, r_ids, r_w, sep = split_arrays(
                ids, weights, tree.config.alpha
            )
            left = tree._new_leaf(l_ids, l_w)
            right = tree._new_leaf(r_ids, r_w)
            tree.stats.leaf_splits += 1
        else:
            m = cur.size // 2
            weights = cur.cstable.to_weights()
            left = _InternalNode(
                cur.keys[:m], cur.children[:m],
                CSTable(weights[:m]), cur.counts[:m],
            )
            right = _InternalNode(
                cur.keys[m:], cur.children[m:],
                CSTable(weights[m:]), cur.counts[m:],
            )
            sep = cur.keys[m]
            tree.stats.internal_splits += 1
        # Inherit the original node's separator for the left part; the
        # right part's separator is the split pivot.
        if id(cur) in sep_of:
            sep_of[id(left)] = sep_of.pop(id(cur))
        sep_of[id(right)] = sep
        # Left pushed last → popped first → `parts` fills left-to-right.
        pending.append(right)
        pending.append(left)
    for p in parts[1:]:
        seps.append(sep_of[id(p)])
    return parts, seps


def _lower_bound(node) -> int:
    """An exact lower bound on a subtree's content.

    ``keys[0]`` of an internal node is *decorative*: routing clamps to
    child 0, so the leftmost child may legitimately hold IDs below it.
    The true bound is the minimum of the leftmost leaf.
    """
    while not node.is_leaf:
        node = node.children[0]
    return min(node.ids) if len(node.ids) else _MIN_KEY


def _content_of(node):
    """Flatten a node into mergeable content."""
    if node.is_leaf:
        return node.ids.to_list(), node.fstable.to_weights()
    return (
        list(node.keys),
        list(node.children),
        node.cstable.to_weights(),
        list(node.counts),
    )


def _merge_pair(
    tree: Samtree, left, right
) -> Tuple[List[object], List[int]]:
    """Merge two siblings, re-splitting if the result overflows.

    Returns ``(parts, separators)`` like :func:`_split_to_fit` — the
    separators are exact split pivots, never derived from decorative
    ``keys[0]`` values.
    """
    tree.stats.merges += 1
    tree.stats.internal_ops += 1
    if left.is_leaf:
        l_ids, l_w = _content_of(left)
        r_ids, r_w = _content_of(right)
        merged = tree._new_leaf(l_ids + r_ids, l_w + r_w)
    else:
        l_keys, l_children, l_w, l_counts = _content_of(left)
        r_keys, r_children, r_w, r_counts = _content_of(right)
        # r_keys[0] lands at an interior position of the merged key list,
        # where it must be an exact content bound (a node's own keys[0]
        # is allowed to be decorative only at position 0).
        r_keys[0] = min(r_keys[0], _lower_bound(right))
        merged = _InternalNode(
            l_keys + r_keys,
            l_children + r_children,
            CSTable(l_w + r_w),
            l_counts + r_counts,
        )
    if merged.size > tree.config.capacity:
        return _split_to_fit(tree, merged)
    return [merged], []


def _repair_children(tree: Samtree, parent: _InternalNode) -> None:
    """Re-split oversize children, merge undersize ones, and rebuild the
    parent's separator/CSTable/count arrays from the final child list."""
    cap = tree.config.capacity
    children: List[object] = []
    keys: List[int] = []
    for j, child in enumerate(parent.children):
        if child.size > cap:
            parts, seps = _split_to_fit(tree, child)
            first_key = parent.keys[j]
            if j == 0:
                # Position 0's key is decorative (routing clamps there)
                # and may exceed the child's true minimum; the split
                # pivots that follow are exact, so the inherited key
                # must be lowered to a real bound to keep the list sorted.
                first_key = min(first_key, _lower_bound(parts[0]))
            children.append(parts[0])
            keys.append(first_key)
            for part, sep in zip(parts[1:], seps):
                children.append(part)
                keys.append(sep)
            tree.stats.internal_ops += 1
        else:
            children.append(child)
            keys.append(parent.keys[j])

    # Merge pass: drop emptied subtrees outright (a batch of deletes can
    # empty every leaf under an internal node), merge undersize children
    # with a neighbor (re-splitting when the merge overflows).
    i = 0
    while i < len(children):
        child = children[i]
        if Samtree._count_of(child) == 0 and len(children) > 1:
            del children[i]
            del keys[i]
            continue
        if child.size < _node_min_fill(tree, child) and len(children) > 1:
            j = i - 1 if i > 0 else i + 1
            lo, hi = (j, i) if j < i else (i, j)
            parts, seps = _merge_pair(tree, children[lo], children[hi])
            # keys[lo] is a valid bound for lo > 0 (routing enforces it);
            # at position 0 it is decorative and must not exceed content.
            lo_key = keys[lo]
            if lo == 0:
                lo_key = min(lo_key, _lower_bound(parts[0]))
            del children[lo : hi + 1]
            del keys[lo : hi + 1]
            children[lo:lo] = parts
            keys[lo:lo] = [lo_key] + seps
            i = max(lo, 0)
            continue
        i += 1

    parent.children = children
    parent.keys = keys
    parent.cstable = CSTable(
        [Samtree._weight_of(c) for c in children]
    )
    parent.counts = [Samtree._count_of(c) for c in children]


def _repair_root(tree: Samtree) -> None:
    """Grow or collapse the root after a batch."""
    cap = tree.config.capacity
    root = tree._root
    while root.size > cap:
        parts, seps = _split_to_fit(tree, root)
        keys = [_MIN_KEY] + seps
        root = _InternalNode(
            keys,
            parts,
            CSTable([Samtree._weight_of(p) for p in parts]),
            [Samtree._count_of(p) for p in parts],
        )
        tree.stats.internal_ops += 1
    while not root.is_leaf and root.size == 1:
        root = root.children[0]
    tree._root = root
