"""Read path: flat per-tree snapshots + a bounded snapshot cache.

The paper's hot path is *complete neighbor sampling* (§V-C): every GNN
mini-batch issues thousands of weighted draws, each of which the samtree
answers with a root→leaf descent (ITS at internal nodes, FTS at the
leaf).  The descent is the right structure for a *mutating* tree — every
maintenance operation stays ``O(log n)`` — but a training frontier reads
the same hot vertices over and over between mutations, and in a Python
substrate the per-draw descent is dominated by interpreter dispatch, not
by algorithmic cost.

This module adds the read-optimized half of the store, the same lever
block-level caching systems (GNNFlow) and holistic sampling/IO
optimizers (FAST) pull over a dynamic store:

* :class:`TreeSnapshot` — a *flat* image of one samtree: a contiguous
  ``neighbor_ids`` int64 array plus the inclusive cumulative-weight
  array over the same leaf order.  A batched draw is one vectorized
  ``Generator.random(size=...)`` + one ``np.searchsorted`` — inverse
  transform sampling over exactly the weights the tree holds, so the
  sampled distribution is *identical* to the exact ITS/FTS descent
  (property- and chi-square-tested).

* :class:`SnapshotCache` — a bounded LRU over snapshots, keyed by
  ``(etype, src)`` and sized in *modeled bytes* via the shared
  :class:`~repro.core.memory.MemoryModel` (one ID + one cumulative
  weight per edge).  Coherence is by *version*: every samtree carries a
  monotonically increasing epoch counter bumped by every mutation path
  (single-edge upsert/delete and the PALM tree-batch), and a cached
  snapshot is served only while its build version still matches the
  live tree.

* a **write-hot fallback** policy: a tree whose snapshot was just
  invalidated is *not* eagerly rebuilt — the read falls back to the
  exact per-draw descent until the tree's version is observed unchanged
  across two reads.  Trees in a mutate/sample/mutate/sample interleave
  therefore never thrash ``O(n)`` rebuilds, while read-hot trees
  re-enter the cache after one quiet read.

RNG plumbing: the batched read APIs accept an explicit seed — an
``int``, a ``random.Random``, or a ``numpy.random.Generator`` — and
:func:`resolve_rngs` derives a (scalar rng, vector generator) pair from
it deterministically, so scalar fallbacks and vectorized draws are both
reproducible end-to-end from one seed.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from typing import Dict, Hashable, List, Optional, Tuple, Union

import numpy as np

from repro.core.memory import DEFAULT_MEMORY_MODEL, MemoryModel
from repro.errors import ConfigurationError, EmptyStructureError

__all__ = [
    "AdmissionFilter",
    "TreeSnapshot",
    "SnapshotCache",
    "SnapshotCacheStats",
    "RNGLike",
    "coerce_scalar_rng",
    "coerce_generator",
    "flatten_tree",
    "resolve_rngs",
]

#: Anything the sampling APIs accept as a randomness source.
RNGLike = Union[None, int, random.Random, np.random.Generator]

#: Default cache budget: 64 MiB of modeled snapshot bytes.
DEFAULT_CAPACITY_BYTES = 64 << 20

#: Trees below this degree are cheaper to sample exactly than to
#: snapshot + vectorize; they always take the exact descent path.
DEFAULT_MIN_DEGREE = 2

#: Bound on the write-hot probation side table.
_PROBATION_CAP = 1 << 16

#: Admission filter: halve all frequency counts every this many
#: recorded accesses (TinyLFU's "reset" — keeps the estimate recent).
_ADMISSION_SAMPLE_PERIOD = 1 << 17

#: Bound on the admission frequency table (ages early if exceeded).
_ADMISSION_TABLE_CAP = 1 << 16


# ---------------------------------------------------------------------------
# RNG plumbing
# ---------------------------------------------------------------------------
def coerce_scalar_rng(rng: RNGLike) -> Optional[random.Random]:
    """Normalise a seed-like input to a ``random.Random`` (or ``None``).

    Integers seed a fresh ``Random``; a NumPy generator is reduced to a
    ``Random`` seeded from one 63-bit draw (deterministic given the
    generator's state).
    """
    if rng is None or isinstance(rng, random.Random):
        return rng
    if isinstance(rng, (int, np.integer)):
        return random.Random(int(rng))
    if isinstance(rng, np.random.Generator):
        return random.Random(int(rng.integers(0, 2**63)))
    raise ConfigurationError(
        f"rng must be None, an int seed, random.Random, or "
        f"numpy.random.Generator; got {type(rng).__name__}"
    )


def coerce_generator(rng: RNGLike) -> np.random.Generator:
    """Normalise a seed-like input to a ``numpy.random.Generator``."""
    if isinstance(rng, np.random.Generator):
        return rng
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    if isinstance(rng, random.Random):
        return np.random.default_rng(rng.getrandbits(64))
    raise ConfigurationError(
        f"rng must be None, an int seed, random.Random, or "
        f"numpy.random.Generator; got {type(rng).__name__}"
    )


def resolve_rngs(
    rng: RNGLike,
) -> Tuple[Optional[random.Random], np.random.Generator]:
    """Derive a ``(scalar_rng, vector_generator)`` pair from one seed.

    The batched read path draws from the generator (vectorized); the
    exact-descent fallback draws from the scalar rng.  Both are
    deterministic functions of the input, so one seed reproduces a whole
    mixed batched/exact run.
    """
    if isinstance(rng, (int, np.integer)):
        seed = int(rng)
        return random.Random(seed), np.random.default_rng(seed)
    if isinstance(rng, random.Random):
        return rng, np.random.default_rng(rng.getrandbits(64))
    if isinstance(rng, np.random.Generator):
        return random.Random(int(rng.integers(0, 2**63))), rng
    if rng is None:
        return None, np.random.default_rng()
    raise ConfigurationError(
        f"rng must be None, an int seed, random.Random, or "
        f"numpy.random.Generator; got {type(rng).__name__}"
    )


# ---------------------------------------------------------------------------
# flat snapshots
# ---------------------------------------------------------------------------
def flatten_tree(tree) -> Tuple[np.ndarray, np.ndarray]:
    """Flatten one samtree's leaves into ``(ids, weights)`` arrays.

    Preallocates both ``tree.degree``-sized arrays and fills them one
    leaf slice at a time from the leaves' vectorized decoders
    (``CompressedIDList.to_array`` / ``FSTable.to_weight_array``), so
    the only Python-level loop is over *leaves*, not edges.  Shared by
    :meth:`TreeSnapshot.from_tree` and the frozen-shard compiler
    (:mod:`repro.core.frozen`).
    """
    n = tree.degree
    ids = np.empty(n, dtype=np.int64)
    weights = np.empty(n, dtype=np.float64)
    pos = 0
    for leaf in tree._leaves():
        m = len(leaf.ids)
        ids[pos : pos + m] = leaf.ids.to_array()
        weights[pos : pos + m] = leaf.fstable.to_weight_array()
        pos += m
    return ids, weights


class TreeSnapshot:
    """A contiguous read-only image of one samtree's adjacency.

    ``neighbor_ids[i]`` is a neighbor and ``cum_weights[i]`` the
    inclusive prefix sum of the weights in the same (leaf) order, so a
    weighted draw of mass ``r ∈ [0, total)`` maps to the smallest ``i``
    with ``cum_weights[i] > r`` — ``np.searchsorted(..., side="right")``
    — which is inverse transform sampling over exactly the tree's
    weights.  Zero-weight edges are never selected (their cumulative
    entry never strictly exceeds any mass), matching the descent path.
    """

    __slots__ = (
        "neighbor_ids", "cum_weights", "version", "total_weight", "tree",
    )

    def __init__(
        self,
        neighbor_ids: np.ndarray,
        cum_weights: np.ndarray,
        version: int,
        tree=None,
    ) -> None:
        self.neighbor_ids = neighbor_ids
        self.cum_weights = cum_weights
        self.version = version
        self.total_weight = float(cum_weights[-1]) if cum_weights.size else 0.0
        #: The samtree this snapshot images (enables the cache's lock-free
        #: coherence check without a directory lookup); ``None`` when
        #: built from raw arrays.
        self.tree = tree

    @classmethod
    def from_tree(cls, tree, version: Optional[int] = None) -> "TreeSnapshot":
        """Flatten a samtree into parallel ``(ids, cumulative weights)``
        arrays (one preallocated numpy fill per leaf, no per-edge
        Python list building)."""
        neighbor_ids, weights = flatten_tree(tree)
        cum = np.cumsum(weights)
        if version is None:
            version = tree.version
        return cls(neighbor_ids, cum, version, tree=tree)

    @classmethod
    def from_arrays(
        cls, ids, weights, version: int = 0
    ) -> "TreeSnapshot":
        """Build directly from parallel id/weight arrays (tests, baselines)."""
        neighbor_ids = np.asarray(ids, dtype=np.int64)
        cum = np.cumsum(np.asarray(weights, dtype=np.float64))
        return cls(neighbor_ids, cum, version)

    # -- introspection ----------------------------------------------------
    @property
    def degree(self) -> int:
        return int(self.neighbor_ids.size)

    def __len__(self) -> int:
        return self.degree

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TreeSnapshot(n={self.degree}, total={self.total_weight:.6g}, "
            f"version={self.version})"
        )

    def nbytes(self, model: MemoryModel = DEFAULT_MEMORY_MODEL) -> int:
        """Modeled bytes: one ID + one cumulative-weight entry per edge."""
        return self.degree * (model.id_bytes + model.weight_bytes)

    # -- vectorized draws -------------------------------------------------
    def sample(self, k: int, gen: np.random.Generator) -> np.ndarray:
        """``k`` weighted draws with replacement (shape ``(k,)``)."""
        return self.sample_matrix(1, k, gen).reshape(-1)

    def sample_matrix(
        self, rows: int, k: int, gen: np.random.Generator
    ) -> np.ndarray:
        """``rows × k`` weighted draws with replacement.

        One vectorized uniform block + one ``searchsorted`` for the whole
        matrix — the batched equivalent of ``rows * k`` root→leaf
        descents.
        """
        if k < 0 or rows < 0:
            raise ConfigurationError(
                f"sample shape must be non-negative, got ({rows}, {k})"
            )
        return self.sample_from_uniforms(gen.random((rows, k)))

    def sample_from_uniforms(self, uniforms: np.ndarray) -> np.ndarray:
        """Weighted draws from pre-generated uniforms in ``[0, 1)``.

        The batched store read path generates *one* uniform block for a
        whole frontier and hands each snapshot its slice — hundreds of
        per-source ``Generator.random`` calls collapse into one.  Inverse
        transform sampling: each uniform scales to a mass in
        ``[0, total)`` and maps to the smallest index whose cumulative
        weight strictly exceeds it.
        """
        ids = self.neighbor_ids
        n = ids.size
        if n == 0:
            raise EmptyStructureError("cannot sample from an empty snapshot")
        total = self.total_weight
        if total <= 0.0:
            # Degenerate all-zero weights: fall back to uniform.
            idx = (uniforms * n).astype(np.int64)
        else:
            idx = self.cum_weights.searchsorted(uniforms * total, side="right")
            # Guard against float round-up at the top of the mass range.
            np.minimum(idx, n - 1, out=idx)
        return ids[idx]

    def sample_uniform_matrix(
        self, rows: int, k: int, gen: np.random.Generator
    ) -> np.ndarray:
        """``rows × k`` *uniform* draws with replacement."""
        if k < 0 or rows < 0:
            raise ConfigurationError(
                f"sample shape must be non-negative, got ({rows}, {k})"
            )
        n = self.degree
        if n == 0:
            raise EmptyStructureError("cannot sample from an empty snapshot")
        return self.neighbor_ids[gen.integers(0, n, size=(rows, k))]

    def sample_uniform_from_uniforms(self, uniforms: np.ndarray) -> np.ndarray:
        """Uniform draws from pre-generated uniforms in ``[0, 1)``."""
        ids = self.neighbor_ids
        n = ids.size
        if n == 0:
            raise EmptyStructureError("cannot sample from an empty snapshot")
        return ids[(uniforms * n).astype(np.int64)]


# ---------------------------------------------------------------------------
# the bounded cache
# ---------------------------------------------------------------------------
class SnapshotCacheStats:
    """Counters describing cache effectiveness (exported by benchmarks)."""

    __slots__ = ("hits", "misses", "builds", "invalidations", "evictions",
                 "exact_fallbacks", "admission_rejects", "admission_ages")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.builds = 0
        self.invalidations = 0
        self.evictions = 0
        self.exact_fallbacks = 0
        self.admission_rejects = 0
        self.admission_ages = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "builds": self.builds,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "exact_fallbacks": self.exact_fallbacks,
            "admission_rejects": self.admission_rejects,
            "admission_ages": self.admission_ages,
            "hit_rate": self.hit_rate,
        }


class AdmissionFilter:
    """TinyLFU-style frequency filter guarding cache admission.

    Keeps an exact, exponentially-aged access-frequency table (the
    bounded-memory variant of TinyLFU's count-min sketch — exact counts
    in a dict, halved every ``sample_period`` accesses with zero entries
    pruned, so the table tracks *recent* popularity in bounded space).

    The cache records every access — hit or miss — and consults the
    filter at eviction time: a candidate may only displace the LRU
    victim when its recent frequency is **at least** the victim's.
    One-hit-wonder scans (frequency 1) therefore recycle each other's
    slots but can never displace a warmer entry, while equal-frequency
    keys preserve plain LRU order, which keeps the policy a strict
    refinement of the PR-1 cache.
    """

    __slots__ = ("sample_period", "table_cap", "on_age", "_counts",
                 "_accesses")

    def __init__(
        self,
        sample_period: int = _ADMISSION_SAMPLE_PERIOD,
        table_cap: int = _ADMISSION_TABLE_CAP,
        on_age=None,
    ) -> None:
        if sample_period < 1:
            raise ConfigurationError(
                f"sample_period must be >= 1, got {sample_period}"
            )
        if table_cap < 1:
            raise ConfigurationError(
                f"table_cap must be >= 1, got {table_cap}"
            )
        self.sample_period = sample_period
        self.table_cap = table_cap
        #: Optional zero-arg callback fired on every aging pass (the
        #: cache counts them in its stats).
        self.on_age = on_age
        self._counts: Dict[Hashable, int] = {}
        self._accesses = 0

    def __len__(self) -> int:
        return len(self._counts)

    def record(self, key: Hashable) -> None:
        """Count one access of ``key``; ages the table periodically.

        Returns nothing — the hot path wants one dict upsert, not a
        conditional on the caller side.
        """
        counts = self._counts
        counts[key] = counts.get(key, 0) + 1
        self._accesses += 1
        if (
            self._accesses >= self.sample_period
            or len(counts) > self.table_cap
        ):
            self.age()

    def estimate(self, key: Hashable) -> int:
        """Recent access frequency of ``key`` (0 when never seen)."""
        return self._counts.get(key, 0)

    def admits(self, candidate: Hashable, victim: Hashable) -> bool:
        """Whether ``candidate`` may evict ``victim``."""
        return self._counts.get(candidate, 0) >= self._counts.get(victim, 0)

    def age(self) -> None:
        """Halve every count and prune zeros (the TinyLFU reset)."""
        self._accesses = 0
        self._counts = {
            key: half
            for key, count in self._counts.items()
            if (half := count >> 1) > 0
        }
        if self.on_age is not None:
            self.on_age()

    def clear(self) -> None:
        self._counts.clear()
        self._accesses = 0


class SnapshotCache:
    """LRU cache of :class:`TreeSnapshot` images, bounded in modeled bytes.

    Parameters
    ----------
    capacity_bytes:
        Budget for all cached entries, accounted with ``model`` (one ID
        + one cumulative weight per edge).  Least-recently-used entries
        are evicted when a build would exceed it.
    model:
        The shared :class:`MemoryModel` used for entry accounting.
    min_degree:
        Trees below this degree never enter the cache — a handful of
        scalar descents beats an array build for them.
    admission:
        Frequency-aware admission (default on): every access is counted
        in a TinyLFU-style :class:`AdmissionFilter`, and at eviction
        time a newly built snapshot may only displace the LRU victim
        when its recent access frequency is at least the victim's.
        One-hit-wonder scans therefore stop evicting hot entries while
        equal-frequency keys keep exact LRU behaviour.  Pass ``False``
        for the PR-1 pure-LRU policy, or an :class:`AdmissionFilter`
        instance to control the aging parameters.

    Coherence policy (see module docstring): a cached entry is valid
    while ``entry.version == tree.version``.  On a version mismatch the
    entry is dropped and the tree is put on *probation*: reads take the
    exact path until the version is seen unchanged twice, which stops
    ``O(n)`` rebuild thrash on write-hot trees.
    """

    __slots__ = (
        "capacity_bytes",
        "model",
        "min_degree",
        "stats",
        "admission",
        "_entries",
        "_probation",
        "_bytes",
    )

    def __init__(
        self,
        capacity_bytes: int = DEFAULT_CAPACITY_BYTES,
        model: MemoryModel = DEFAULT_MEMORY_MODEL,
        min_degree: int = DEFAULT_MIN_DEGREE,
        admission: Union[bool, "AdmissionFilter"] = True,
    ) -> None:
        if capacity_bytes < 0:
            raise ConfigurationError(
                f"capacity_bytes must be >= 0, got {capacity_bytes}"
            )
        if min_degree < 0:
            raise ConfigurationError(
                f"min_degree must be >= 0, got {min_degree}"
            )
        self.capacity_bytes = capacity_bytes
        self.model = model
        self.min_degree = min_degree
        self.stats = SnapshotCacheStats()
        if admission is True:
            admission = AdmissionFilter()
        elif admission is False:
            admission = None
        self.admission: Optional[AdmissionFilter] = admission
        if self.admission is not None:
            self.admission.on_age = self._note_age
        self._entries: "OrderedDict[Hashable, TreeSnapshot]" = OrderedDict()
        self._probation: Dict[Hashable, int] = {}
        self._bytes = 0

    def _note_age(self) -> None:
        self.stats.admission_ages += 1

    # -- introspection ----------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    @property
    def nbytes(self) -> int:
        """Modeled bytes currently cached."""
        return self._bytes

    def keys(self):
        """Cached keys, least- to most-recently used."""
        return list(self._entries.keys())

    # -- core protocol ----------------------------------------------------
    def peek(self, key: Hashable) -> Optional[TreeSnapshot]:
        """Fast-path hit check *without* a directory lookup.

        A cached entry remembers the samtree it imaged, so a fresh hit
        can verify coherence against ``entry.tree.version`` directly —
        the hot frontier loop skips the store's cuckoo lookup entirely.
        Misses and stale entries return ``None`` and must go through
        :meth:`get` with the live tree (the store invalidates entries
        whose tree leaves its directory, so a recreated source can never
        be served a predecessor's snapshot).
        """
        entry = self._entries.get(key)
        if (
            entry is not None
            and entry.tree is not None
            and entry.tree.version == entry.version
        ):
            self.stats.hits += 1
            if self.admission is not None:
                self.admission.record(key)
            self._entries.move_to_end(key)
            return entry
        return None

    def get(self, key: Hashable, tree) -> Optional[TreeSnapshot]:
        """Return a snapshot for ``tree`` or ``None`` (use the exact path).

        ``tree`` must expose ``version``, ``degree``, and ``_leaves()``
        (a :class:`~repro.core.samtree.Samtree` does).
        """
        version = tree.version
        if self.admission is not None:
            self.admission.record(key)
        entry = self._entries.get(key)
        if entry is not None:
            if entry.version == version:
                self.stats.hits += 1
                self._entries.move_to_end(key)
                return entry
            # Stale: drop it and put the tree on probation.
            self.stats.invalidations += 1
            self._drop(key)
        self.stats.misses += 1
        if tree.degree < self.min_degree:
            self.stats.exact_fallbacks += 1
            return None
        last_seen = self._probation.get(key)
        if last_seen is not None and last_seen != version:
            # Write-hot: mutated again since the last read.  Stay on the
            # exact path; remember the new version for the next read.
            if len(self._probation) > _PROBATION_CAP:
                self._probation.clear()  # worst case: one early rebuild
            self._probation[key] = version
            self.stats.exact_fallbacks += 1
            return None
        return self._build(key, tree, version)

    def invalidate(self, key: Hashable) -> bool:
        """Explicitly drop one entry (returns whether it existed)."""
        if key in self._entries:
            self.stats.invalidations += 1
            self._drop(key)
            return True
        self._probation.pop(key, None)
        return False

    def clear(self) -> None:
        """Drop every entry (counters are kept; use ``stats.reset()``)."""
        self._entries.clear()
        self._probation.clear()
        if self.admission is not None:
            self.admission.clear()
        self._bytes = 0

    # -- internals --------------------------------------------------------
    def _drop(self, key: Hashable) -> None:
        entry = self._entries.pop(key)
        self._bytes -= entry.nbytes(self.model)
        self._probation[key] = entry.version  # stale marker, any value

    def _build(self, key: Hashable, tree, version: int) -> Optional[TreeSnapshot]:
        snapshot = TreeSnapshot.from_tree(tree, version)
        self.stats.builds += 1
        self._probation.pop(key, None)
        cost = snapshot.nbytes(self.model)
        if cost > self.capacity_bytes:
            # Larger than the whole budget: serve it, never cache it.
            return snapshot
        while self._bytes + cost > self.capacity_bytes and self._entries:
            victim_key = next(iter(self._entries))
            if self.admission is not None and not self.admission.admits(
                key, victim_key
            ):
                # The LRU victim is recently hotter than the candidate:
                # serve the snapshot but keep the cache contents (the
                # TinyLFU admission decision).
                self.stats.admission_rejects += 1
                return snapshot
            evicted = self._entries.pop(victim_key)
            self._bytes -= evicted.nbytes(self.model)
            self.stats.evictions += 1
        self._entries[key] = snapshot
        self._bytes += cost
        return snapshot
