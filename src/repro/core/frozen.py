"""FrozenShard: flattened CSC sampling kernels for the hot read path.

The snapshot cache (:mod:`repro.core.snapshot`) removed the per-*draw*
descent but kept a per-*distinct-source* Python loop: every frontier
batch still walks a dict of positions, probes the cache, and slices a
uniform block per source.  On a training frontier of ~1k vertices that
loop is the remaining interpreter floor (~320k vertices/s warm,
``BENCH_batched_sampling.json``).

A :class:`FrozenShard` compiles *all* sources of one relation into one
CSC-style columnar image — the layout DGL's ``CSCSamplingGraph`` and the
static serving tier of Euler/Plato use, grown here from live samtrees:

* ``src_ids``        — sorted source vertices (the row directory; a
  frontier lookup is one vectorized ``searchsorted``);
* ``indptr``         — row offsets into the edge arrays;
* ``neighbor_ids``   — all destination IDs, row-major;
* ``cum_weights``    — one *global* inclusive prefix sum over the edge
  weights (per-row mass = ``row_total``, exact per-edge weights
  recoverable by differencing — tests and the doctor read them back);
* ``alias_prob`` / ``alias_idx`` — a per-row **alias table**
  (Walker/Vose) compiled from the same weights.  A weighted draw is
  ``slot = floor(u * deg)``, ``frac = u * deg - slot``, then pick
  ``slot`` if ``frac < alias_prob[slot]`` else ``alias_idx[slot]`` —
  O(1) per draw, the whole frontier × fanout matrix in one uniform
  block and a handful of in-place ufuncs + gathers, zero per-vertex
  Python and zero binary searches.  (A segment-offset ``searchsorted``
  over ``cum_weights`` gives the same distribution but pays ~65ns of
  per-query dispatch inside numpy — the alias kernel is what clears
  the 10× bar over the warm snapshot path.)
* ``epoch``          — the store's mutation epoch stamped at compile
  time.  Coherence piggybacks on the same epoch discipline as the
  snapshot cache: every store mutation path bumps the epoch, and a
  frozen shard is served only while
  ``store_epoch - shard.epoch <= staleness_budget`` (default 0 — any
  post-compile mutation forces recompile-or-fallback, never a stale
  read).

Distribution equivalence: the alias table is an *exact* decomposition
of each row's weight vector (zero-weight edges get cell probability 0
and are never selected; an all-zero or equal-weight row keeps the
identity table, which degrades to exactly the uniform fallback of the
:class:`~repro.core.snapshot.TreeSnapshot` path), so frozen weighted
draws match the ITS/FTS descent distribution — chi-square-pinned in
``tests/test_frozen.py``.

Compilation reuses the bulk-build leaf walk
(:func:`~repro.core.snapshot.flatten_tree` — vectorized CP-ID and
Fenwick decoders per leaf), so freezing an ``E``-edge shard is ``O(E)``
with Python-level work proportional to the number of tree leaves only.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.memory import DEFAULT_MEMORY_MODEL, MemoryModel
from repro.core.snapshot import flatten_tree
from repro.errors import ConfigurationError

__all__ = ["FrozenShard", "FrozenStats"]


def _build_alias(
    weights: np.ndarray, indptr: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-row Walker/Vose alias tables over a CSC weight column.

    Returns ``(alias_prob, alias_idx)`` aligned with the edge arrays:
    cell ``c`` of row ``r`` yields edge ``c`` with probability
    ``alias_prob[c]`` and edge ``alias_idx[c]`` otherwise, making every
    weighted draw O(1).  The identity table (``prob=1``, ``alias=self``)
    is exact for equal-weight rows — including all-zero rows, where it
    reproduces the uniform fallback — so those rows skip construction
    entirely; only genuinely skewed rows pay the O(deg) Vose pairing,
    which keeps compile time a small fraction of the leaf walk.
    """
    edges = int(weights.size)
    alias_prob = np.ones(edges, dtype=np.float64)
    alias_idx = np.arange(edges, dtype=np.int64)
    bounds = indptr.tolist()
    for r in range(len(bounds) - 1):
        lo, hi = bounds[r], bounds[r + 1]
        deg = hi - lo
        if deg <= 1:
            continue
        row = weights[lo:hi]
        if float(row.min()) == float(row.max()):
            continue  # equal weights: identity table is already exact
        total = float(row.sum())
        if total <= 0.0:
            continue
        scaled = (row * (deg / total)).tolist()
        small: List[int] = []
        large: List[int] = []
        for i, q in enumerate(scaled):
            (small if q < 1.0 else large).append(i)
        prob = [1.0] * deg
        alias = list(range(lo, hi))
        while small and large:
            s = small.pop()
            l = large.pop()
            prob[s] = scaled[s]
            alias[s] = lo + l
            scaled[l] -= 1.0 - scaled[s]
            (small if scaled[l] < 1.0 else large).append(l)
        # Leftovers on either list are float residue: their scaled mass
        # is ~1, and prob=1 / alias=self is the exact limit.
        alias_prob[lo:hi] = prob
        alias_idx[lo:hi] = alias
    return alias_prob, alias_idx


class FrozenStats:
    """Counters for the frozen read path (registered as ``repro_frozen_*``)."""

    __slots__ = (
        "compiles",
        "refreezes",
        "thaws",
        "compiled_rows",
        "compiled_edges",
        "batches",
        "vertices",
        "draws",
        "hops",
        "stale_misses",
        "missing_vertices",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.compiles = 0  #: shard compiles (freeze + auto-refreeze)
        self.refreezes = 0  #: compiles triggered by staleness on demand
        self.thaws = 0  #: explicit shard drops
        self.compiled_rows = 0  #: cumulative rows across compiles
        self.compiled_edges = 0  #: cumulative edges across compiles
        self.batches = 0  #: frontier batches served frozen
        self.vertices = 0  #: frontier vertices served frozen
        self.draws = 0  #: neighbor draws produced
        self.hops = 0  #: multi-hop levels expanded
        self.stale_misses = 0  #: reads refused for epoch drift
        self.missing_vertices = 0  #: frontier entries with no frozen row

    def to_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class FrozenShard:
    """One relation's CSC image + vectorized frontier sampling kernels.

    Immutable by construction: the store never mutates a compiled shard,
    it only replaces or drops it (epoch coherence makes partial updates
    unnecessary).  All kernels are total over arbitrary ``int64``
    frontiers — vertices without a row are reported through the validity
    mask, never raised.
    """

    __slots__ = (
        "etype",
        "epoch",
        "src_ids",
        "indptr",
        "neighbor_ids",
        "cum_weights",
        "row_base",
        "row_total",
        "alias_prob",
        "alias_idx",
        "_ws",
    )

    def __init__(
        self,
        etype: int,
        epoch: int,
        src_ids: np.ndarray,
        indptr: np.ndarray,
        neighbor_ids: np.ndarray,
        cum_weights: np.ndarray,
        weights: np.ndarray = None,
    ) -> None:
        self.etype = etype
        self.epoch = epoch
        self.src_ids = src_ids
        self.indptr = indptr
        self.neighbor_ids = neighbor_ids
        self.cum_weights = cum_weights
        padded = np.concatenate(([0.0], cum_weights))
        self.row_base = padded[indptr[:-1]]
        # Float noise in the global prefix sum can leave -epsilon where a
        # row's true mass is 0; clamp so the uniform fallback triggers.
        self.row_total = np.maximum(padded[indptr[1:]] - self.row_base, 0.0)
        if weights is None:
            # Recover the per-edge weights from the global prefix sum
            # (exact up to float cancellation; compile passes them raw).
            weights = np.maximum(np.diff(padded), 0.0)
        self.alias_prob, self.alias_idx = _build_alias(weights, indptr)
        self._ws = None  # lazily-built draw workspace, keyed by shape

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    @classmethod
    def compile(cls, store, etype: int, epoch: int) -> "FrozenShard":
        """One-pass compile of every samtree of ``etype`` in ``store``.

        Rows are source-sorted (the directory is a ``searchsorted``);
        each tree flattens through the bulk-build leaf walk.
        """
        pairs: List[Tuple[int, object]] = [
            (src, tree)
            for (et, src), tree in store.iter_trees()
            if et == etype
        ]
        pairs.sort(key=lambda p: p[0])
        rows = len(pairs)
        src_ids = np.fromiter(
            (src for src, _ in pairs), dtype=np.int64, count=rows
        )
        degrees = np.fromiter(
            (tree.degree for _, tree in pairs), dtype=np.int64, count=rows
        )
        indptr = np.zeros(rows + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        edges = int(indptr[-1])
        neighbor_ids = np.empty(edges, dtype=np.int64)
        weights = np.empty(edges, dtype=np.float64)
        for (_, tree), lo in zip(pairs, indptr[:-1].tolist()):
            ids, ws = flatten_tree(tree)
            neighbor_ids[lo : lo + ids.size] = ids
            weights[lo : lo + ws.size] = ws
        return cls(etype, epoch, src_ids, indptr, neighbor_ids,
                   np.cumsum(weights), weights=weights)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return int(self.src_ids.size)

    @property
    def num_edges(self) -> int:
        return int(self.neighbor_ids.size)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FrozenShard(etype={self.etype}, rows={self.num_rows}, "
            f"edges={self.num_edges}, epoch={self.epoch})"
        )

    def nbytes(self, model: MemoryModel = DEFAULT_MEMORY_MODEL) -> int:
        """Modeled bytes of the columnar image (row directory + offsets
        + edge IDs + the cumulative-weight column + per-row mass + the
        alias table)."""
        rows = self.num_rows
        return (
            rows * model.id_bytes  # src_ids
            + (rows + 1) * 8  # indptr
            + self.num_edges * (model.id_bytes + model.weight_bytes)
            + 2 * rows * model.weight_bytes  # row_base / row_total
            + self.num_edges * (8 + model.weight_bytes)  # alias table
        )

    def lookup_rows(self, srcs: np.ndarray) -> np.ndarray:
        """Vectorized vertex→row directory: ``-1`` marks missing."""
        srcs = np.asarray(srcs, dtype=np.int64)
        n = self.src_ids.size
        if n == 0:
            return np.full(srcs.shape, -1, dtype=np.int64)
        idx = np.searchsorted(self.src_ids, srcs)
        clipped = np.minimum(idx, n - 1)
        found = self.src_ids[clipped] == srcs
        return np.where(found, clipped, -1)

    # ------------------------------------------------------------------
    # single-hop kernels
    # ------------------------------------------------------------------
    def _workspace(self, n: int, k: int):
        """Reusable draw buffers for an ``(n, k)`` frontier block.

        Allocation churn is the dominant cost of the draw at this size
        (a chained kernel allocating nine ~80 KB temporaries runs ~3×
        slower than the same ufuncs in place), so the last block shape's
        buffers are cached on the shard and every kernel step writes
        through ``out=``.
        """
        ws = self._ws
        if ws is None or ws[0] != (n, k):
            shape = (n, k)
            ws = (
                shape,
                np.empty(shape, dtype=np.float64),  # uniforms / fracs
                np.empty(shape, dtype=np.float64),  # gathered cell probs
                np.empty(shape, dtype=np.int64),  # slot -> edge position
                np.empty(shape, dtype=np.int64),  # chosen edge index
                np.empty(shape, dtype=bool),  # keep-slot mask
            )
            self._ws = ws
        return ws[1:]

    def sample_matrix(
        self,
        srcs: Sequence[int],
        k: int,
        gen: np.random.Generator,
        uniform: bool = False,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Weighted (or uniform) fanout draws for a whole frontier.

        Returns ``(matrix, valid)``: an ``(len(srcs), k)`` int64 draw
        matrix plus a boolean row mask.  Rows of vertices with no frozen
        adjacency are left at 0 and flagged invalid — callers decide the
        padding convention (empty row vs. self-loop).  One uniform
        block, then in-place arithmetic and flat gathers against the
        alias table; no per-vertex Python, no binary searches.
        """
        if k < 0:
            raise ConfigurationError(f"fanout must be >= 0, got {k}")
        srcs = np.asarray(srcs, dtype=np.int64)
        n = int(srcs.size)
        if n == 0 or k == 0 or self.num_edges == 0:
            return np.zeros((n, k), dtype=np.int64), np.zeros(n, dtype=bool)
        rows = self.lookup_rows(srcs)
        ok = rows >= 0
        all_ok = bool(ok.all())
        if not all_ok and not bool(ok.any()):
            return np.zeros((n, k), dtype=np.int64), np.zeros(n, dtype=bool)
        r = rows if all_ok else rows[ok]
        lo = self.indptr[r][:, None]
        deg = self.indptr[r + 1][:, None] - lo
        uf, tf, slot, chosen, keep = self._workspace(int(r.size), k)
        gen.random(out=uf)
        np.multiply(uf, deg, out=uf)  # u * deg in [0, deg)
        np.copyto(slot, uf, casting="unsafe")  # trunc == floor (u >= 0)
        if uniform:
            np.minimum(slot, deg - 1, out=slot)  # float round-up guard
            np.add(slot, lo, out=slot)
            chosen = slot
        else:
            np.subtract(uf, slot, out=uf)  # frac, before the clamp
            np.minimum(slot, deg - 1, out=slot)
            np.add(slot, lo, out=slot)  # edge position of the cell
            # Alias decision: keep the cell with prob alias_prob, else
            # take its alias.  Zero-degree rows index garbage here
            # (mode="clip" keeps it in bounds); they are masked invalid
            # below, so the values never escape.
            self.alias_prob.take(slot, mode="clip", out=tf)
            np.less(uf, tf, out=keep)
            self.alias_idx.take(slot, mode="clip", out=chosen)
            np.copyto(chosen, slot, where=keep)
        drawn = self.neighbor_ids.take(chosen, mode="clip")
        row_valid = deg[:, 0] > 0
        if all_ok:
            if not bool(row_valid.all()):
                drawn[~row_valid] = 0
            return drawn, row_valid
        out = np.zeros((n, k), dtype=np.int64)
        valid = np.zeros(n, dtype=bool)
        drawn[~row_valid] = 0
        out[ok] = drawn
        valid[ok] = row_valid
        return out, valid

    def sample_rows(
        self,
        srcs: Sequence[int],
        k: int,
        gen: np.random.Generator,
        uniform: bool = False,
    ) -> List[Sequence[int]]:
        """Store-API-shaped result: one row per input position, ``[]``
        for vertices with no frozen adjacency (the
        ``sample_neighbors_many`` contract)."""
        matrix, valid = self.sample_matrix(srcs, k, gen, uniform=uniform)
        return [
            matrix[i] if valid[i] else [] for i in range(matrix.shape[0])
        ]

    # ------------------------------------------------------------------
    # multi-hop kernel
    # ------------------------------------------------------------------
    def sample_fanouts(
        self,
        seeds: Sequence[int],
        fanouts: Sequence[int],
        gen: np.random.Generator,
        uniform: bool = False,
    ) -> List[np.ndarray]:
        """Multi-hop expansion entirely inside the frozen image.

        ``levels[0]`` are the seeds; each subsequent level is the
        flattened fanout of the previous one.  Vertices without a frozen
        row are padded with themselves (the mini-batch self-loop
        convention of :mod:`repro.gnn.samplers`), so the result plugs
        straight into :class:`~repro.gnn.samplers.MiniBatchBlocks`.
        """
        levels = [np.asarray(list(seeds), dtype=np.int64)]
        for fanout in fanouts:
            if fanout < 1:
                raise ConfigurationError(
                    f"fanout must be >= 1, got {fanout}"
                )
            frontier = levels[-1]
            matrix, valid = self.sample_matrix(
                frontier, fanout, gen, uniform=uniform
            )
            if not bool(valid.all()):
                pad = ~valid
                matrix[pad] = frontier[pad, None]
            levels.append(matrix.reshape(-1))
        return levels
