"""The samtree: PlatoD2GL's non-key-value topology store (paper §IV).

One samtree ``T_s`` per source vertex ``s`` holds all of ``s``'s
out-neighbors.  It is a B-tree-shaped structure (Definition 1: node
capacity ``c``, internal nodes at least half full, all leaves on one
level) specialised for *dynamic weighted neighbor sampling*:

* **leaves** store the neighbor IDs in an *unordered* list (so inserts
  append and deletes swap-with-last) plus an :class:`~repro.core.fenwick.FSTable`
  for ``O(log n_L)`` weight maintenance and FTS sampling;
* **internal nodes** store an *ordered* separator-ID list (one per child,
  ``keys[j] <= min(child j)``) for routing, plus a
  :class:`~repro.core.cstable.CSTable` over the child subtree weight sums
  so a weighted draw descends by ITS, and a per-child vertex count so a
  uniform draw can descend by counts;
* an overflowing leaf is split around an α-approximate median found by
  :func:`~repro.core.alpha_split.alpha_split` (average ``O(n_L)``,
  Theorem 1); internal nodes split at their exact median (they are
  ordered, so that is ``O(n_L)``);
* an underflowing node merges with its nearest sibling (paper §IV-D),
  re-splitting when the merge itself would overflow.

Insertion is Algorithm 2: descend, modify the leaf, then refresh the
CSTables/FSTables bottom-up along the search path; average cost
``O(H * n_L)`` (Theorem 2).  Complete neighbor sampling (paper §V-C)
draws one mass ``R`` in ``[0, w_s)`` and narrows it through ITS at each
internal level and FTS at the leaf.

Operation counters feed the paper's Table V (leaf vs non-leaf update
distribution).
"""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.core.alpha_split import split_arrays
from repro.core.compression import make_id_list, make_id_list_from_array
from repro.core.cstable import CSTable
from repro.core.fenwick import FSTable
from repro.core.memory import DEFAULT_MEMORY_MODEL, MemoryModel
from repro.errors import (
    ConfigurationError,
    EmptyStructureError,
    InvalidWeightError,
    InvariantViolationError,
)

__all__ = ["Samtree", "SamtreeConfig", "OpStats", "BULK_FILL_FRACTION"]

#: Sentinel separator for the leftmost child of a fresh internal node.
_MIN_KEY = 0

#: Target node occupancy of a bottom-up bulk build, as a fraction of the
#: capacity ``c``.  Packing below capacity leaves headroom so the first
#: incremental inserts after a bulk load do not immediately split every
#: leaf; the clamp in :meth:`Samtree.bulk_build` keeps the realised fill
#: inside the paper's ``[c/2 - alpha, c]`` occupancy bounds regardless.
BULK_FILL_FRACTION = 0.75


@dataclass
class OpStats:
    """Structural-update counters (drive the paper's Table V).

    ``split_imbalance_sum`` accumulates, per α-Split of a leaf, the
    realised pivot imbalance ``|left - right| / (left + right)`` — 0.0
    for a perfect median, approaching 1.0 for a degenerate pivot.  The
    paper's Theorem 1 bounds the *expected* position error by α, and
    :attr:`mean_split_imbalance` is the structural-health readout of
    that bound (the samtree doctor reports it; DESIGN.md §12).
    """

    leaf_ops: int = 0
    internal_ops: int = 0
    leaf_splits: int = 0
    internal_splits: int = 0
    merges: int = 0
    split_imbalance_sum: float = 0.0

    @property
    def total_ops(self) -> int:
        return self.leaf_ops + self.internal_ops

    @property
    def leaf_fraction(self) -> float:
        """Fraction of updates that touched only leaf nodes."""
        total = self.total_ops
        return self.leaf_ops / total if total else 0.0

    @property
    def mean_split_imbalance(self) -> float:
        """Mean α-Split pivot imbalance over every leaf split so far."""
        if not self.leaf_splits:
            return 0.0
        return self.split_imbalance_sum / self.leaf_splits

    def merge_from(self, other: "OpStats") -> None:
        """Accumulate another counter set (used by store-level stats)."""
        self.leaf_ops += other.leaf_ops
        self.internal_ops += other.internal_ops
        self.leaf_splits += other.leaf_splits
        self.internal_splits += other.internal_splits
        self.merges += other.merges
        self.split_imbalance_sum += other.split_imbalance_sum

    def reset(self) -> None:
        self.leaf_ops = 0
        self.internal_ops = 0
        self.leaf_splits = 0
        self.internal_splits = 0
        self.merges = 0
        self.split_imbalance_sum = 0.0


@dataclass(frozen=True)
class SamtreeConfig:
    """Construction parameters of a samtree.

    ``capacity`` is the paper's node capacity ``c`` (default ``256``,
    the sweet spot of Figure 11b); ``alpha`` the α-Split slackness
    (default ``0``, the paper's default); ``compress`` toggles CP-IDs
    prefix compression of leaf ID lists (§VI-A).
    """

    capacity: int = 256
    alpha: int = 0
    compress: bool = True

    def __post_init__(self) -> None:
        if self.capacity < 4:
            raise ConfigurationError(
                f"samtree capacity must be >= 4, got {self.capacity}"
            )
        if self.alpha < 0:
            raise ConfigurationError(
                f"alpha slackness must be >= 0, got {self.alpha}"
            )

    @property
    def leaf_min_fill(self) -> int:
        """Minimum leaf occupancy: ``c/2 - alpha`` (paper remark), >= 1."""
        return max(1, -(-self.capacity // 2) - self.alpha)

    @property
    def internal_min_fill(self) -> int:
        """Minimum internal fan-out (>= 2 so routing stays meaningful)."""
        return max(2, -(-self.capacity // 2) - self.alpha)


class _LeafNode:
    """A leaf: unordered neighbor IDs + FSTable (paper constraints 1-2, 4)."""

    __slots__ = ("ids", "fstable")
    is_leaf = True

    def __init__(self, ids, fstable: FSTable) -> None:
        self.ids = ids
        self.fstable = fstable

    @property
    def size(self) -> int:
        return len(self.ids)

    def total_weight(self) -> float:
        return self.fstable.total()


class _InternalNode:
    """An internal node: ordered separators + CSTable + child counts."""

    __slots__ = ("keys", "children", "cstable", "counts")
    is_leaf = False

    def __init__(
        self,
        keys: List[int],
        children: List["_Node"],
        cstable: CSTable,
        counts: List[int],
    ) -> None:
        self.keys = keys
        self.children = children
        self.cstable = cstable
        self.counts = counts

    @property
    def size(self) -> int:
        return len(self.children)

    def total_weight(self) -> float:
        return self.cstable.total()

    def total_count(self) -> int:
        return sum(self.counts)


_Node = Union[_LeafNode, _InternalNode]


_INF = float("inf")


def _check_weight(weight: float) -> float:
    weight = float(weight)
    if weight < 0.0 or weight != weight or weight == _INF:
        raise InvalidWeightError(
            f"edge weights must be finite and non-negative, got {weight!r}"
        )
    return weight


class Samtree:
    """Per-vertex dynamic neighbor store with ``O(log)`` weighted sampling.

    Examples
    --------
    >>> tree = Samtree(SamtreeConfig(capacity=4))
    >>> tree.insert(2, 0.1)
    True
    >>> tree.insert(3, 0.4)
    True
    >>> tree.insert(5, 0.2)
    True
    >>> tree.degree
    3
    >>> round(tree.total_weight, 3)
    0.7
    """

    __slots__ = ("config", "stats", "_root", "_size", "_version")

    def __init__(
        self,
        config: Optional[SamtreeConfig] = None,
        stats: Optional[OpStats] = None,
    ) -> None:
        self.config = config or SamtreeConfig()
        self.stats = stats if stats is not None else OpStats()
        self._root: _Node = self._new_leaf([], [])
        self._size = 0
        self._version = 0

    # ------------------------------------------------------------------
    # node construction helpers
    # ------------------------------------------------------------------
    def _new_leaf(self, ids: List[int], weights: List[float]) -> _LeafNode:
        return _LeafNode(
            make_id_list(self.config.compress, ids), FSTable(weights)
        )

    @staticmethod
    def _weight_of(node: _Node) -> float:
        return node.total_weight()

    @staticmethod
    def _count_of(node: _Node) -> int:
        if node.is_leaf:
            return node.size
        return node.total_count()

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def degree(self) -> int:
        """Number of stored neighbors (``n_s``)."""
        return self._size

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __contains__(self, vertex_id: int) -> bool:
        return self.get_weight(vertex_id) is not None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Samtree(n={self._size}, height={self.height}, "
            f"capacity={self.config.capacity})"
        )

    @property
    def version(self) -> int:
        """Monotonic mutation epoch.

        Bumped by *every* path that changes the stored adjacency or its
        weights — single-edge upserts and deletes (Algorithm 2 and
        §IV-D) and the PALM within-tree batch
        (:func:`repro.core.tree_batch.apply_tree_batch`).  The read
        layer (:mod:`repro.core.snapshot`) compares this counter to
        decide whether a flat snapshot is still coherent.
        """
        return self._version

    @property
    def total_weight(self) -> float:
        """Sum of all stored edge weights (``w_s``)."""
        return self._weight_of(self._root)

    @property
    def height(self) -> int:
        """Number of levels (``H``); a lone leaf has height 1."""
        h = 1
        node = self._root
        while not node.is_leaf:
            h += 1
            node = node.children[0]
        return h

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    @staticmethod
    def _route(node: _InternalNode, vertex_id: int) -> int:
        """Child index for ``vertex_id``: rightmost ``j`` with
        ``keys[j] <= vertex_id`` (clamped to 0 for IDs below the first
        separator, which stays correct because separators may be stale-low
        but never stale-high)."""
        j = bisect_right(node.keys, vertex_id) - 1
        return j if j >= 0 else 0

    def _descend(
        self, vertex_id: int
    ) -> Tuple[_LeafNode, List[Tuple[_InternalNode, int]]]:
        """Return the leaf for ``vertex_id`` and the (node, child-index)
        path from the root down to it (paper Algorithm 2 line 1)."""
        path: List[Tuple[_InternalNode, int]] = []
        node = self._root
        while not node.is_leaf:
            ci = self._route(node, vertex_id)
            path.append((node, ci))
            node = node.children[ci]
        return node, path

    def get_weight(self, vertex_id: int) -> Optional[float]:
        """Weight of the edge to ``vertex_id`` or ``None`` if absent."""
        leaf, _ = self._descend(vertex_id)
        idx = leaf.ids.index_of(vertex_id)
        if idx is None:
            return None
        return leaf.fstable.weight(idx)

    # ------------------------------------------------------------------
    # insertion (paper Algorithm 2)
    # ------------------------------------------------------------------
    def insert(self, vertex_id: int, weight: float = 1.0) -> bool:
        """Insert neighbor ``vertex_id`` or overwrite its weight.

        Returns ``True`` when the neighbor is new, ``False`` when an
        existing weight was updated in place (Algorithm 2 lines 3-6).
        """
        return self._upsert(vertex_id, weight, add=False)

    def add_weight(self, vertex_id: int, delta: float) -> bool:
        """Insert with weight ``delta`` or *accumulate* onto an existing
        edge (the common form for interaction-count graphs)."""
        return self._upsert(vertex_id, delta, add=True)

    def _upsert(self, vertex_id: int, weight: float, add: bool) -> bool:
        weight = _check_weight(weight)
        self._version += 1
        leaf, path = self._descend(vertex_id)
        idx = leaf.ids.index_of(vertex_id)
        overflow: Optional[Tuple[_Node, _Node, int]] = None
        if idx is not None:
            if add:
                leaf.fstable.add(idx, weight)
                delta_w = weight
            else:
                old = leaf.fstable.update(idx, weight)
                delta_w = weight - old
            dcount = 0
            is_new = False
        else:
            leaf.ids.append(vertex_id)
            leaf.fstable.append(weight)
            delta_w = weight
            dcount = 1
            is_new = True
            self._size += 1
            if leaf.size > self.config.capacity:
                overflow = self._split_leaf(leaf)
        self.stats.leaf_ops += 1
        self._propagate_up(path, overflow, delta_w, dcount)
        return is_new

    def _propagate_up(
        self,
        path: List[Tuple[_InternalNode, int]],
        overflow: Optional[Tuple[_Node, _Node, int]],
        delta_w: float,
        dcount: int,
    ) -> None:
        """Refresh CSTables/counts bottom-up (Algorithm 2 line 9) and
        thread any node split up through the ancestors."""
        for parent, ci in reversed(path):
            if overflow is not None:
                left, right, sep = overflow
                parent.children[ci] = left
                parent.children.insert(ci + 1, right)
                parent.keys.insert(ci + 1, sep)
                parent.cstable.update(ci, self._weight_of(left))
                parent.cstable.insert(ci + 1, self._weight_of(right))
                parent.counts[ci] = self._count_of(left)
                parent.counts.insert(ci + 1, self._count_of(right))
                self.stats.internal_ops += 1
                overflow = None
                if parent.size > self.config.capacity:
                    overflow = self._split_internal(parent)
            else:
                if delta_w:
                    parent.cstable.add(ci, delta_w)
                if dcount:
                    parent.counts[ci] += dcount
        if overflow is not None:
            left, right, sep = overflow
            self._root = _InternalNode(
                keys=[_MIN_KEY, sep],
                children=[left, right],
                cstable=CSTable([self._weight_of(left), self._weight_of(right)]),
                counts=[self._count_of(left), self._count_of(right)],
            )
            self.stats.internal_ops += 1

    def _split_leaf(self, leaf: _LeafNode) -> Tuple[_Node, _Node, int]:
        """α-Split an overflowing leaf into two (paper Algorithm 1)."""
        ids = leaf.ids.to_list()
        weights = leaf.fstable.to_weights()
        left_ids, left_w, right_ids, right_w, sep = split_arrays(
            ids, weights, self.config.alpha
        )
        self.stats.leaf_splits += 1
        self._record_split_balance(len(left_ids), len(right_ids))
        return (
            self._new_leaf(left_ids, left_w),
            self._new_leaf(right_ids, right_w),
            sep,
        )

    def _record_split_balance(self, left: int, right: int) -> None:
        """Account one α-Split's realised pivot quality (doctor stats)."""
        total = left + right
        if total:
            self.stats.split_imbalance_sum += abs(left - right) / total

    def _split_internal(
        self, node: _InternalNode
    ) -> Tuple[_Node, _Node, int]:
        """Median split of an ordered internal node (paper §IV-C: O(1) to
        find the median, O(n_L) to copy)."""
        m = node.size // 2
        weights = node.cstable.to_weights()
        left = _InternalNode(
            keys=node.keys[:m],
            children=node.children[:m],
            cstable=CSTable(weights[:m]),
            counts=node.counts[:m],
        )
        right = _InternalNode(
            keys=node.keys[m:],
            children=node.children[m:],
            cstable=CSTable(weights[m:]),
            counts=node.counts[m:],
        )
        self.stats.internal_splits += 1
        self.stats.internal_ops += 1
        return left, right, node.keys[m]

    # ------------------------------------------------------------------
    # deletion (paper §IV-D)
    # ------------------------------------------------------------------
    def delete(self, vertex_id: int) -> bool:
        """Remove neighbor ``vertex_id``; returns ``False`` if absent.

        Leaf removal is swap-with-last (unordered list); an underflowing
        node merges with its nearest sibling, re-splitting if the merge
        itself would overflow.
        """
        leaf, path = self._descend(vertex_id)
        idx = leaf.ids.index_of(vertex_id)
        if idx is None:
            return False
        self._version += 1
        removed = leaf.fstable.delete(idx)
        leaf.ids.swap_delete(idx)
        self._size -= 1
        self.stats.leaf_ops += 1

        child: _Node = leaf
        for parent, ci in reversed(path):
            if removed:
                parent.cstable.add(ci, -removed)
            parent.counts[ci] -= 1
            if self._is_underflow(child) and parent.size >= 2:
                self._rebalance(parent, ci)
            child = parent
        root = self._root
        while not root.is_leaf and root.size == 1:
            root = root.children[0]
        self._root = root
        return True

    def _is_underflow(self, node: _Node) -> bool:
        if node.is_leaf:
            return node.size < self.config.leaf_min_fill
        return node.size < self.config.internal_min_fill

    def _rebalance(self, parent: _InternalNode, ci: int) -> None:
        """Merge ``children[ci]`` with its nearest sibling; if the merged
        node would overflow, redistribute by splitting it again."""
        sib = ci - 1 if ci > 0 else ci + 1
        lo, hi = (sib, ci) if sib < ci else (ci, sib)
        left, right = parent.children[lo], parent.children[hi]
        self.stats.merges += 1
        self.stats.internal_ops += 1
        if left.is_leaf:
            ids = left.ids.to_list() + right.ids.to_list()
            weights = left.fstable.to_weights() + right.fstable.to_weights()
            if len(ids) > self.config.capacity:
                l_ids, l_w, r_ids, r_w, sep = split_arrays(
                    ids, weights, self.config.alpha
                )
                self._replace_pair(
                    parent,
                    lo,
                    self._new_leaf(l_ids, l_w),
                    self._new_leaf(r_ids, r_w),
                    sep,
                )
            else:
                self._replace_merged(parent, lo, self._new_leaf(ids, weights))
        else:
            keys = left.keys + right.keys
            children = left.children + right.children
            weights = left.cstable.to_weights() + right.cstable.to_weights()
            counts = left.counts + right.counts
            if len(children) > self.config.capacity:
                m = len(children) // 2
                lnode = _InternalNode(
                    keys[:m], children[:m], CSTable(weights[:m]), counts[:m]
                )
                rnode = _InternalNode(
                    keys[m:], children[m:], CSTable(weights[m:]), counts[m:]
                )
                self._replace_pair(parent, lo, lnode, rnode, keys[m])
            else:
                merged = _InternalNode(
                    keys, children, CSTable(weights), counts
                )
                self._replace_merged(parent, lo, merged)

    def _replace_pair(
        self,
        parent: _InternalNode,
        lo: int,
        left: _Node,
        right: _Node,
        sep: int,
    ) -> None:
        """Install a redistributed (merge-then-split) sibling pair."""
        hi = lo + 1
        parent.children[lo] = left
        parent.children[hi] = right
        parent.keys[hi] = sep
        parent.cstable.update(lo, self._weight_of(left))
        parent.cstable.update(hi, self._weight_of(right))
        parent.counts[lo] = self._count_of(left)
        parent.counts[hi] = self._count_of(right)

    def _replace_merged(
        self, parent: _InternalNode, lo: int, merged: _Node
    ) -> None:
        """Install a merged node and drop its right sibling's slot."""
        hi = lo + 1
        parent.children[lo] = merged
        del parent.children[hi]
        del parent.keys[hi]
        del parent.counts[hi]
        parent.cstable.delete(hi)
        parent.cstable.update(lo, self._weight_of(merged))
        parent.counts[lo] = self._count_of(merged)

    # ------------------------------------------------------------------
    # batched updates (paper Appendix B: bottom-up rounds)
    # ------------------------------------------------------------------
    def apply_batch(self, ops) -> List[bool]:
        """Apply ``(kind, vertex_id, weight)`` triples as one batch.

        Descends once per op, applies all leaf modifications, then
        repairs the tree bottom-up in rounds — see
        :mod:`repro.core.tree_batch`.  Semantically identical to applying
        the ops one by one.
        """
        from repro.core.tree_batch import apply_tree_batch

        return apply_tree_batch(self, ops)

    # ------------------------------------------------------------------
    # bulk construction (bottom-up, the ingestion tier's tree builder)
    # ------------------------------------------------------------------
    @classmethod
    def bulk_build(
        cls,
        ids,
        weights=None,
        config: Optional[SamtreeConfig] = None,
        stats: Optional[OpStats] = None,
        *,
        assume_sorted_unique: bool = False,
        fill: float = BULK_FILL_FRACTION,
    ) -> "Samtree":
        """Construct a samtree bottom-up from parallel id/weight arrays.

        ``O(n)`` after the sort: leaves are packed at ``fill * capacity``
        from contiguous slices of the sorted arrays (each FSTable built
        with the linear vectorized Fenwick construction), then internal
        separator levels and their CSTables are assembled level by level
        until a single root remains.  The result satisfies every
        structural invariant of :meth:`check_invariants` and samples from
        the *identical* distribution as an insert-loop tree over the same
        edges (the stored weights are equal; only the node layout
        differs).

        Duplicate ids resolve last-wins, matching an upsert loop.  Pass
        ``assume_sorted_unique=True`` when the caller already sorted and
        deduplicated (the columnar store path does) to skip the
        ``argsort``.
        """
        tree = cls(config, stats)
        tree._bulk_load_arrays(
            ids, weights, assume_sorted_unique=assume_sorted_unique, fill=fill
        )
        return tree

    def _bulk_load_arrays(
        self,
        ids,
        weights=None,
        *,
        assume_sorted_unique: bool = False,
        fill: float = BULK_FILL_FRACTION,
    ) -> None:
        """Replace this tree's whole content from arrays (in place).

        Mutating in place (rather than swapping a fresh ``Samtree`` into
        the directory) keeps every outstanding reference — snapshot-cache
        entries in particular — pointed at a tree whose version bump they
        can observe, so the read layer can never serve a pre-rebuild
        snapshot of this source.
        """
        import numpy as np

        from repro.core.fenwick import FSTable as _FSTable

        if not 0.0 < fill <= 1.0:
            raise ConfigurationError(
                f"bulk fill fraction must be in (0, 1], got {fill}"
            )
        id_arr = np.asarray(ids, dtype=np.int64)
        if id_arr.ndim != 1:
            raise ConfigurationError(
                f"ids must be one-dimensional, got shape {id_arr.shape}"
            )
        n = int(id_arr.size)
        if weights is None:
            w_arr = np.ones(n, dtype=np.float64)
        else:
            w_arr = np.asarray(weights, dtype=np.float64)
            if w_arr.shape != id_arr.shape:
                raise ConfigurationError(
                    f"ids/weights shape mismatch: {id_arr.shape} vs "
                    f"{w_arr.shape}"
                )
        if n and bool((id_arr < 0).any()):
            raise InvalidWeightError(
                f"vertex IDs must be non-negative, got {int(id_arr.min())}"
            )
        if n and (not bool(np.isfinite(w_arr).all())
                  or bool((w_arr < 0.0).any())):
            bad = w_arr[~(np.isfinite(w_arr) & (w_arr >= 0.0))][0]
            raise InvalidWeightError(
                f"edge weights must be finite and non-negative, got {bad!r}"
            )
        if not assume_sorted_unique and n:
            order = np.argsort(id_arr, kind="stable")
            id_arr = id_arr[order]
            w_arr = w_arr[order]
            # Last-wins dedup: stable sort keeps submission order inside
            # each equal-id run, so keep each run's final element.
            keep = np.empty(n, dtype=bool)
            keep[:-1] = id_arr[1:] != id_arr[:-1]
            keep[-1] = True
            if not bool(keep.all()):
                id_arr = id_arr[keep]
                w_arr = w_arr[keep]
                n = int(id_arr.size)

        self._version += 1
        if n == 0:
            self._root = self._new_leaf([], [])
            self._size = 0
            return

        cap = self.config.capacity
        target = max(1, min(cap, int(round(cap * fill))))

        # -- leaf level ------------------------------------------------
        bounds = self._level_bounds(
            n, target, cap, self.config.leaf_min_fill
        )
        nodes: List[_Node] = []
        keys: List[int] = []
        node_weights: List[float] = []
        node_counts: List[int] = []
        compress = self.config.compress
        key_list = id_arr[bounds[:-1]].tolist()  # exact slice minima
        for (a, b), key in zip(zip(bounds[:-1], bounds[1:]), key_list):
            leaf = _LeafNode(
                make_id_list_from_array(compress, id_arr[a:b]),
                _FSTable.from_array(w_arr[a:b]),
            )
            nodes.append(leaf)
            keys.append(key)  # exact minimum: slices are sorted
            node_weights.append(leaf.fstable.total())
            node_counts.append(b - a)

        # -- internal separator levels, bottom-up ----------------------
        min_internal = self.config.internal_min_fill
        while len(nodes) > 1:
            bounds = self._level_bounds(
                len(nodes), target, cap, min_internal
            )
            parents: List[_Node] = []
            parent_keys: List[int] = []
            parent_weights: List[float] = []
            parent_counts: List[int] = []
            for a, b in zip(bounds[:-1], bounds[1:]):
                parents.append(
                    _InternalNode(
                        keys=keys[a:b],
                        children=nodes[a:b],
                        cstable=CSTable(node_weights[a:b]),
                        counts=node_counts[a:b],
                    )
                )
                parent_keys.append(keys[a])
                parent_weights.append(parents[-1].cstable.total())
                parent_counts.append(sum(node_counts[a:b]))
            nodes, keys = parents, parent_keys
            node_weights, node_counts = parent_weights, parent_counts

        self._root = nodes[0]
        self._size = n

    @staticmethod
    def _level_bounds(
        n: int, target: int, cap: int, min_fill: int
    ) -> List[int]:
        """Slice boundaries packing ``n`` elements into nodes near
        ``target`` occupancy while honouring ``[min_fill, cap]``.

        The node count is clamped to ``[ceil(n / cap), n // min_fill]``
        (at least 1), then sizes are distributed evenly, so every
        non-root node lands inside the paper's occupancy bounds — the
        clamp interval is never empty because ``min_fill <= (cap+1)/2``.
        """
        if n <= cap:
            # Fits in one node: never split what a single node can hold
            # (matches the incremental tree, which only splits on
            # overflow).
            return [0, n]
        want = -(-n // target)  # ceil
        lo = -(-n // cap)
        hi = max(1, n // max(1, min_fill))
        num = max(lo, min(want, hi))
        base, rem = divmod(n, num)
        bounds = [0]
        for j in range(num):
            bounds.append(bounds[-1] + base + (1 if j < rem else 0))
        return bounds

    # ------------------------------------------------------------------
    # sampling (paper §V-C: ITS at internal nodes, FTS at the leaf)
    # ------------------------------------------------------------------
    def sample(self, rng: Optional[random.Random] = None) -> int:
        """Draw one neighbor with probability ``w_{s,u} / w_s``."""
        if self._size == 0:
            raise EmptyStructureError("cannot sample from an empty samtree")
        total = self.total_weight
        if total <= 0.0:
            return self.sample_uniform(rng)
        rand = rng.random() if rng is not None else random.random()
        return self._sample_with(rand * total)

    def _sample_with(self, r: float) -> int:
        node = self._root
        while not node.is_leaf:
            i = node.cstable.search(r)
            if i > 0:
                r -= node.cstable.prefix_sum(i - 1)
            node = node.children[i]
        idx = node.fstable.sample_with(r)
        return node.ids[idx]

    def sample_many(
        self, k: int, rng: Optional[random.Random] = None
    ) -> List[int]:
        """Draw ``k`` neighbors with replacement (the GNN fan-out case).

        The batch form hoists the total-weight lookup and the descent
        dispatch out of the per-draw loop — the equivalent of what the
        operator layer's batched sampling kernels do.
        """
        if k < 0:
            raise ConfigurationError(f"sample count must be >= 0, got {k}")
        if self._size == 0:
            raise EmptyStructureError("cannot sample from an empty samtree")
        total = self.total_weight
        if total <= 0.0:
            return [self.sample_uniform(rng) for _ in range(k)]
        rand = rng.random if rng is not None else random.random
        root = self._root
        if root.is_leaf:
            fstable = root.fstable
            ids = root.ids
            sample_with = fstable.sample_with
            return [ids[sample_with(rand() * total)] for _ in range(k)]
        out = []
        for _ in range(k):
            r = rand() * total
            node = root
            while not node.is_leaf:
                i = node.cstable.search(r)
                if i > 0:
                    r -= node.cstable.prefix_sum(i - 1)
                node = node.children[i]
            out.append(node.ids[node.fstable.sample_with(r)])
        return out

    def sample_uniform(self, rng: Optional[random.Random] = None) -> int:
        """Draw one neighbor uniformly at random (unweighted sampling),
        descending by the per-child counts."""
        if self._size == 0:
            raise EmptyStructureError("cannot sample from an empty samtree")
        r = (rng or random).randrange(self._size)
        node = self._root
        while not node.is_leaf:
            for i, c in enumerate(node.counts):
                if r < c:
                    node = node.children[i]
                    break
                r -= c
            else:  # pragma: no cover - counts always total node size
                raise InvariantViolationError("count descent overran")
        return node.ids[r]

    # ------------------------------------------------------------------
    # iteration
    # ------------------------------------------------------------------
    def _leaves(self) -> Iterator[_LeafNode]:
        stack: List[_Node] = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield node
            else:
                stack.extend(reversed(node.children))

    def neighbors(self) -> Iterator[int]:
        """Iterate over neighbor IDs (leaf order; unordered within leaf)."""
        for leaf in self._leaves():
            yield from leaf.ids

    def iter_nodes(self) -> Iterator[Tuple[_Node, int]]:
        """Yield ``(node, depth)`` pairs in pre-order (root at depth 1).

        The samtree doctor's structural walk (:mod:`repro.obs.doctor`):
        callers duck-type through the node interface — ``node.is_leaf``,
        ``node.size``, and (for internal nodes) ``node.children`` — so
        the node classes themselves stay private to this module.
        """
        stack: List[Tuple[_Node, int]] = [(self._root, 1)]
        while stack:
            node, depth = stack.pop()
            yield node, depth
            if not node.is_leaf:
                stack.extend((child, depth + 1) for child in node.children)

    def items(self) -> Iterator[Tuple[int, float]]:
        """Iterate over ``(neighbor_id, weight)`` pairs."""
        for leaf in self._leaves():
            weights = leaf.fstable.to_weights()
            for i, vid in enumerate(leaf.ids):
                yield vid, weights[i]

    def to_dict(self) -> dict:
        """Materialise the adjacency as ``{neighbor_id: weight}``."""
        return dict(self.items())

    # ------------------------------------------------------------------
    # memory accounting & invariants
    # ------------------------------------------------------------------
    def nbytes(self, model: MemoryModel = DEFAULT_MEMORY_MODEL) -> int:
        """Modeled bytes of the whole tree under the shared layout model.

        Defined as the exact sum of :meth:`nbytes_breakdown` — the
        samtree doctor's per-component invariant (DESIGN.md §12) is
        therefore true by construction, not by coincidence.
        """
        return sum(self.nbytes_breakdown(model).values())

    def nbytes_breakdown(
        self, model: MemoryModel = DEFAULT_MEMORY_MODEL
    ) -> Dict[str, int]:
        """Per-component modeled bytes of this tree.

        Components (the samtree doctor's schema):

        * ``leaf_nodes``     — leaf headers + (possibly CP-IDs
          compressed) neighbor-ID lists;
        * ``fstables``       — the per-leaf Fenwick weight tables;
        * ``internal_nodes`` — internal headers, separator keys, child
          pointers, and per-child counts;
        * ``cstables``       — the per-internal-node cumulative
          subtree-weight tables.
        """
        leaf_nodes = fstables = internal_nodes = cstables = 0
        stack: List[_Node] = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                leaf_nodes += model.tree_node_header_bytes
                leaf_nodes += node.ids.nbytes()
                fstables += node.fstable.nbytes(model.weight_bytes)
            else:
                internal_nodes += model.tree_node_header_bytes
                internal_nodes += model.id_bytes * len(node.keys)
                internal_nodes += model.pointer_bytes * len(node.children)
                internal_nodes += 4 * len(node.counts)
                cstables += node.cstable.nbytes(model.weight_bytes)
                stack.extend(node.children)
        return {
            "leaf_nodes": leaf_nodes,
            "fstables": fstables,
            "internal_nodes": internal_nodes,
            "cstables": cstables,
        }

    def check_invariants(self) -> None:
        """Verify every structural invariant; raise on violation.

        Checks: parallel-array lengths, CSTable entries equal child
        subtree weights, counts equal child sizes, separators route
        correctly, occupancy bounds, uniform leaf depth, and the global
        size counter.
        """
        leaf_depths: List[int] = []
        total = self._check_node(self._root, depth=1, depths=leaf_depths,
                                 lo=None, hi=None, is_root=True)
        if total != self._size:
            raise InvariantViolationError(
                f"size counter {self._size} != leaf total {total}"
            )
        if len(set(leaf_depths)) > 1:
            raise InvariantViolationError(
                f"leaves at different depths: {sorted(set(leaf_depths))}"
            )

    def _check_node(
        self,
        node: _Node,
        depth: int,
        depths: List[int],
        lo: Optional[int],
        hi: Optional[int],
        is_root: bool,
    ) -> int:
        cap = self.config.capacity
        if node.is_leaf:
            depths.append(depth)
            if len(node.ids) != len(node.fstable):
                raise InvariantViolationError(
                    f"leaf ids ({len(node.ids)}) / fstable "
                    f"({len(node.fstable)}) length mismatch"
                )
            if node.size > cap:
                raise InvariantViolationError(
                    f"leaf overflow: {node.size} > capacity {cap}"
                )
            if not is_root and node.size < 1:
                raise InvariantViolationError("empty non-root leaf")
            for vid in node.ids:
                if lo is not None and vid < lo:
                    raise InvariantViolationError(
                        f"leaf id {vid} below separator bound {lo}"
                    )
                if hi is not None and vid >= hi:
                    raise InvariantViolationError(
                        f"leaf id {vid} not below separator bound {hi}"
                    )
            return node.size

        if not (
            len(node.keys) == len(node.children) == len(node.counts)
            == len(node.cstable)
        ):
            raise InvariantViolationError(
                "internal node parallel arrays disagree: "
                f"keys={len(node.keys)} children={len(node.children)} "
                f"counts={len(node.counts)} cstable={len(node.cstable)}"
            )
        if node.size > cap:
            raise InvariantViolationError(
                f"internal overflow: {node.size} > capacity {cap}"
            )
        if not is_root and node.size < 2:
            raise InvariantViolationError(
                f"non-root internal node with {node.size} children"
            )
        if any(
            node.keys[j] >= node.keys[j + 1] for j in range(node.size - 1)
        ):
            raise InvariantViolationError(
                f"separator keys not strictly increasing: {node.keys}"
            )
        total = 0
        for j, child in enumerate(node.children):
            child_lo = node.keys[j] if j > 0 else lo
            child_hi = node.keys[j + 1] if j + 1 < node.size else hi
            count = self._check_node(
                child, depth + 1, depths, child_lo, child_hi, is_root=False
            )
            if count != node.counts[j]:
                raise InvariantViolationError(
                    f"counts[{j}]={node.counts[j]} != subtree size {count}"
                )
            expected = self._weight_of(child)
            actual = node.cstable.weight(j)
            tol = 1e-6 * max(1.0, abs(expected))
            if abs(expected - actual) > tol:
                raise InvariantViolationError(
                    f"cstable[{j}]={actual} != child weight {expected}"
                )
            total += count
        return total
