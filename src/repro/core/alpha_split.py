"""The α-Split algorithm of PlatoD2GL (paper §IV-C, Algorithm 1).

When a samtree leaf overflows it must be split into two halves such that
every ID in the left half is smaller than every ID in the right half —
the parent's ordered separator list demands it — *without* sorting the
(deliberately unordered) leaf.  α-Split finds an approximate median pivot
with a relaxed quickselect:

* pick the element at the median position of the current sub-array as the
  candidate pivot;
* partition the sub-array around it (Hoare-style scan that places the
  pivot at its exact sorted position);
* accept the pivot if its final position lands within ``± α`` of the
  requested split position, otherwise recurse into the half containing
  the target position.

With ``α == 0`` this is exactly QuickSelect (average ``O(n)``, paper
Theorem 1); larger α terminates earlier at the cost of less balanced
halves (paper Figure 11d shows the speed/balance trade-off).

The partition moves a *companion* array (the weights recovered from the
leaf's FSTable) in lockstep so the caller can rebuild the two new leaves'
FSTables directly.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, IndexOutOfRangeError

__all__ = ["hoare_partition", "alpha_split", "split_arrays"]


def hoare_partition(
    ids: List[int],
    lo: int,
    hi: int,
    pivot_index: int,
    companion: Optional[List[float]] = None,
) -> int:
    """Partition ``ids[lo:hi + 1]`` around ``ids[pivot_index]`` in place.

    Returns the final index of the pivot: afterwards every element left of
    it is strictly smaller and every element right of it is strictly
    larger (IDs within one leaf are unique, so strictness holds).  The
    optional ``companion`` list receives the identical swaps, keeping the
    weight of each ID glued to it.

    This is the scheme of paper Algorithm 1 lines 1–3: swap the candidate
    pivot to the boundary, scan, and place it at its exact position.
    """
    if not lo <= pivot_index <= hi:
        raise IndexOutOfRangeError(
            f"pivot index {pivot_index} outside window [{lo}, {hi}]"
        )

    def swap(a: int, b: int) -> None:
        if a == b:
            return
        ids[a], ids[b] = ids[b], ids[a]
        if companion is not None:
            companion[a], companion[b] = companion[b], companion[a]

    pivot = ids[pivot_index]
    swap(pivot_index, hi)
    store = lo
    for j in range(lo, hi):
        if ids[j] < pivot:
            swap(store, j)
            store += 1
    swap(store, hi)
    return store


def alpha_split(
    ids: List[int],
    k: Optional[int] = None,
    alpha: int = 0,
    companion: Optional[List[float]] = None,
) -> int:
    """Find the α-approximate split position of the unordered ``ids``.

    Rearranges ``ids`` (and ``companion``) in place and returns a position
    ``p`` such that

    * ``ids[:p]`` are all strictly smaller than ``ids[p:]``;
    * ``k - α <= p <= k + α`` where ``k`` defaults to ``len(ids) // 2``
      (the paper initialises the target at the median for balance).

    The caller then splits the leaf into ``ids[:p]`` and ``ids[p:]``; the
    separator key for the right half is ``ids[p]`` (its exact minimum,
    because the pivot is placed at its sorted position).

    Average time ``O(n)`` (paper Theorem 1).
    """
    n = len(ids)
    if n == 0:
        raise IndexOutOfRangeError("cannot split an empty array")
    if alpha < 0:
        raise ConfigurationError(f"slackness alpha must be >= 0, got {alpha}")
    if companion is not None and len(companion) != n:
        raise ConfigurationError(
            f"companion length {len(companion)} != ids length {n}"
        )
    if k is None:
        k = n // 2
    if not 0 <= k < n:
        raise IndexOutOfRangeError(f"split position {k} out of range [0, {n})")

    lo, hi = 0, n - 1
    target = k
    while True:
        mid = (lo + hi) // 2
        pos = hoare_partition(ids, lo, hi, mid, companion)
        if target - alpha <= pos <= target + alpha and 0 < pos < n:
            # A split position of 0 or n would leave one half empty, which
            # a node split cannot accept — keep narrowing in that case.
            return pos
        if pos == target:
            # Exact hit at a degenerate boundary (n == 1 never reaches
            # here because the caller splits only overflowing leaves).
            return max(1, min(pos, n - 1))
        if target < pos:
            hi = pos - 1
        else:
            lo = pos + 1
        if lo > hi:
            # All candidates on that side exhausted; the boundary element
            # is the closest achievable pivot.
            return max(1, min(target, n - 1))


def split_arrays(
    ids: Sequence[int],
    weights: Sequence[float],
    alpha: int = 0,
) -> Tuple[List[int], List[float], List[int], List[float], int]:
    """Split parallel ``(ids, weights)`` around an α-approximate median.

    Convenience wrapper used by the samtree leaf split: returns
    ``(left_ids, left_weights, right_ids, right_weights, separator)``
    where ``separator`` is the minimum ID of the right half.
    """
    id_list = list(ids)
    weight_list = list(weights)
    pos = alpha_split(id_list, None, alpha, weight_list)
    return (
        id_list[:pos],
        weight_list[:pos],
        id_list[pos:],
        weight_list[pos:],
        id_list[pos],
    )
