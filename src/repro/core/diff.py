"""Graph diffing: the update stream that turns one store into another.

Replication, snapshot catch-up, and test assertions all need the same
primitive: given stores A and B, produce the :class:`EdgeOp` sequence
that transforms A into B.  The diff is minimal per edge — an edge gets
one insert, one update, or one delete — and deterministic (sorted), so
applying it is idempotent-by-construction and the empty diff doubles as
a store-equality check.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.types import DEFAULT_ETYPE, EdgeOp, GraphStoreAPI

__all__ = ["edge_set", "diff_stores", "apply_diff", "stores_equal"]

_EdgeKey = Tuple[int, int, int]  # (etype, src, dst)


def edge_set(store: GraphStoreAPI) -> Dict[_EdgeKey, float]:
    """Materialise a store's full edge map ``(etype, src, dst) -> w``."""
    getter = getattr(store, "etypes", None)
    etypes = list(getter()) if getter is not None else [DEFAULT_ETYPE]
    out: Dict[_EdgeKey, float] = {}
    for etype in etypes:
        for src in store.sources(etype):
            for dst, weight in store.neighbors(src, etype):
                out[(etype, src, dst)] = weight
    return out


def diff_stores(
    source: GraphStoreAPI,
    target: GraphStoreAPI,
    weight_tolerance: float = 1e-9,
) -> List[EdgeOp]:
    """Ops that transform ``source``'s graph into ``target``'s.

    Weight differences within ``weight_tolerance`` (relative to the
    larger magnitude, floored at absolute scale 1) are treated as equal
    — float drift from different op orders must not produce phantom
    updates.
    """
    src_edges = edge_set(source)
    dst_edges = edge_set(target)
    ops: List[EdgeOp] = []
    for key in sorted(src_edges.keys() - dst_edges.keys()):
        etype, src, dst = key
        ops.append(EdgeOp.delete(src, dst, etype))
    for key in sorted(dst_edges.keys() - src_edges.keys()):
        etype, src, dst = key
        ops.append(EdgeOp.insert(src, dst, dst_edges[key], etype))
    for key in sorted(src_edges.keys() & dst_edges.keys()):
        a, b = src_edges[key], dst_edges[key]
        tol = weight_tolerance * max(1.0, abs(a), abs(b))
        if abs(a - b) > tol:
            etype, src, dst = key
            ops.append(EdgeOp.update(src, dst, b, etype))
    return ops


def apply_diff(store: GraphStoreAPI, ops: List[EdgeOp]) -> int:
    """Apply a diff; returns the number of ops that changed the store."""
    changed = 0
    for op in ops:
        if store.apply(op):
            changed += 1
    return changed


def stores_equal(
    a: GraphStoreAPI,
    b: GraphStoreAPI,
    weight_tolerance: float = 1e-9,
) -> bool:
    """Whether two stores expose the same graph (any backend mix)."""
    return not diff_stores(a, b, weight_tolerance)
