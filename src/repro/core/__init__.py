"""Core of the PlatoD2GL reproduction: samtree, FSTable, CSTable, α-Split,
CP-IDs compression, the dynamic topology store, and the memory model.
"""

from repro.core.alpha_split import alpha_split, hoare_partition, split_arrays
from repro.core.compression import (
    CompressedIDList,
    PlainIDList,
    make_id_list,
)
from repro.core.cstable import CSTable
from repro.core.diff import apply_diff, diff_stores, edge_set, stores_equal
from repro.core.fenwick import FSTable
from repro.core.ingest import (
    OP_DELETE,
    OP_INSERT,
    OP_UPDATE,
    EdgeBatch,
    IngestStats,
    fold_run,
)
from repro.core.memory import DEFAULT_MEMORY_MODEL, MemoryModel, humanize_bytes
from repro.core.metrics import InstrumentedStore, LatencyHistogram, StoreMetrics
from repro.core.samtree import (
    BULK_FILL_FRACTION,
    OpStats,
    Samtree,
    SamtreeConfig,
)
from repro.core.snapshot import (
    SnapshotCache,
    SnapshotCacheStats,
    TreeSnapshot,
    coerce_generator,
    coerce_scalar_rng,
    resolve_rngs,
)
from repro.core.sampling import (
    SamplingStrategy,
    TopKByWeight,
    UniformWithReplacement,
    WeightedWithReplacement,
    WeightedWithoutReplacement,
    make_strategy,
)
from repro.core.temporal import TemporalGraphStore
from repro.core.topology import DynamicGraphStore
from repro.core.types import DEFAULT_ETYPE, Edge, EdgeOp, GraphStoreAPI, OpKind

__all__ = [
    "alpha_split",
    "hoare_partition",
    "split_arrays",
    "CompressedIDList",
    "PlainIDList",
    "make_id_list",
    "CSTable",
    "apply_diff",
    "diff_stores",
    "edge_set",
    "stores_equal",
    "FSTable",
    "EdgeBatch",
    "IngestStats",
    "fold_run",
    "OP_INSERT",
    "OP_UPDATE",
    "OP_DELETE",
    "BULK_FILL_FRACTION",
    "MemoryModel",
    "DEFAULT_MEMORY_MODEL",
    "humanize_bytes",
    "InstrumentedStore",
    "LatencyHistogram",
    "StoreMetrics",
    "OpStats",
    "Samtree",
    "SamtreeConfig",
    "SnapshotCache",
    "SnapshotCacheStats",
    "TreeSnapshot",
    "coerce_generator",
    "coerce_scalar_rng",
    "resolve_rngs",
    "SamplingStrategy",
    "TopKByWeight",
    "UniformWithReplacement",
    "WeightedWithReplacement",
    "WeightedWithoutReplacement",
    "make_strategy",
    "TemporalGraphStore",
    "DynamicGraphStore",
    "DEFAULT_ETYPE",
    "Edge",
    "EdgeOp",
    "GraphStoreAPI",
    "OpKind",
]
