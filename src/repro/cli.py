"""Command-line interface: ``python -m repro <command>``.

Operational entry points a deployment actually uses:

* ``stats``      — print Table III (published and scaled) for a dataset;
* ``build``      — build a store from a scaled dataset, report time and
                   modeled memory, optionally snapshot it to disk;
* ``inspect``    — load a snapshot and summarise it;
* ``sample``     — draw weighted neighbor samples from a snapshot;
* ``selftest``   — run the structural invariant checks on a snapshot.
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from typing import List, Optional

from repro.bench.workloads import build_store, make_store
from repro.core.memory import humanize_bytes
from repro.datasets.presets import load_dataset
from repro.datasets.statistics import format_table3, published_table3_rows
from repro.storage.checkpoint import load_store, save_store

__all__ = ["main"]


def _cmd_stats(args: argparse.Namespace) -> int:
    if args.dataset == "all":
        print("Published (paper Table III):")
        print(format_table3(published_table3_rows()))
        return 0
    data = load_dataset(args.dataset, scale=args.scale)
    print(format_table3(data.stats_rows()))
    print(f"\nbi-directed total: {data.num_edges:,} edge inserts")
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    data = load_dataset(args.dataset, scale=args.scale)
    store = make_store(args.system, capacity=args.capacity, alpha=args.alpha)
    mode = "per-op" if args.per_op else "bulk"
    scale = "default" if args.scale is None else f"1/{args.scale:g}"
    print(
        f"building {args.dataset} (scale {scale}, "
        f"{data.num_edges:,} edge inserts) into {args.system} "
        f"[{mode} ingestion]..."
    )
    result = build_store(
        store, data, batch_size=args.batch_size, use_bulk=not args.per_op
    )
    print(
        f"  built in {result.seconds:.2f}s "
        f"({result.ops_per_second:,.0f} edges/s)"
    )
    print(f"  edges: {store.num_edges:,}, sources: {store.num_sources:,}")
    print(f"  modeled memory: {humanize_bytes(store.nbytes())}")
    if args.output:
        if args.system not in ("PlatoD2GL", "PlatoD2GL (w/o CP)"):
            print("snapshots are supported for PlatoD2GL stores only",
                  file=sys.stderr)
            return 2
        written = save_store(store, args.output)
        print(f"  snapshot: {args.output} ({humanize_bytes(written)})")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    store = load_store(args.snapshot)
    print(f"snapshot: {args.snapshot}")
    print(f"  config: capacity={store.config.capacity} "
          f"alpha={store.config.alpha} compress={store.config.compress}")
    print(f"  edges: {store.num_edges:,}")
    print(f"  sources: {store.num_sources:,}")
    print(f"  relations: {store.etypes()}")
    print(f"  modeled memory: {humanize_bytes(store.nbytes())}")
    degrees = sorted(
        (store.degree(s, e) for e in store.etypes() for s in store.sources(e)),
        reverse=True,
    )
    if degrees:
        print(f"  max degree: {degrees[0]:,}; "
              f"median: {degrees[len(degrees) // 2]:,}")
    return 0


def _cmd_sample(args: argparse.Namespace) -> int:
    store = load_store(args.snapshot)
    rng = random.Random(args.seed)
    src = args.vertex
    if src is None:
        pool = list(store.sources(args.etype))
        if not pool:
            print("snapshot has no sources for that relation", file=sys.stderr)
            return 2
        src = pool[rng.randrange(len(pool))]
    start = time.perf_counter()
    draws = store.sample_neighbors(src, args.k, rng, args.etype)
    elapsed = time.perf_counter() - start
    print(f"{args.k} weighted draws from vertex {src} "
          f"(degree {store.degree(src, args.etype)}) in {elapsed * 1e3:.2f}ms:")
    print(" ", draws)
    return 0


def _cmd_selftest(args: argparse.Namespace) -> int:
    store = load_store(args.snapshot)
    store.check_invariants()
    print(f"OK: {store.num_edges:,} edges, every samtree invariant holds")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PlatoD2GL reproduction command-line tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_stats = sub.add_parser("stats", help="dataset statistics (Table III)")
    p_stats.add_argument(
        "dataset", choices=["OGBN", "Reddit", "WeChat", "all"]
    )
    p_stats.add_argument("--scale", type=float, default=None)
    p_stats.set_defaults(func=_cmd_stats)

    p_build = sub.add_parser("build", help="build a store from a dataset")
    p_build.add_argument("dataset", choices=["OGBN", "Reddit", "WeChat"])
    p_build.add_argument(
        "--system",
        default="PlatoD2GL",
        choices=["PlatoD2GL", "PlatoD2GL (w/o CP)", "PlatoGL", "AliGraph"],
    )
    p_build.add_argument("--scale", type=float, default=None)
    p_build.add_argument("--capacity", type=int, default=256)
    p_build.add_argument("--alpha", type=int, default=0)
    p_build.add_argument("--batch-size", type=int, default=4096)
    p_build.add_argument(
        "--per-op",
        action="store_true",
        help="ingest one edge at a time instead of the default columnar "
        "bulk path (same final store; used for comparisons)",
    )
    p_build.add_argument("--output", help="snapshot path to write")
    p_build.set_defaults(func=_cmd_build)

    p_inspect = sub.add_parser("inspect", help="summarise a snapshot")
    p_inspect.add_argument("snapshot")
    p_inspect.set_defaults(func=_cmd_inspect)

    p_sample = sub.add_parser("sample", help="draw neighbors from a snapshot")
    p_sample.add_argument("snapshot")
    p_sample.add_argument("--vertex", type=int, default=None)
    p_sample.add_argument("--k", type=int, default=10)
    p_sample.add_argument("--etype", type=int, default=0)
    p_sample.add_argument("--seed", type=int, default=0)
    p_sample.set_defaults(func=_cmd_sample)

    p_selftest = sub.add_parser(
        "selftest", help="validate a snapshot's invariants"
    )
    p_selftest.add_argument("snapshot")
    p_selftest.set_defaults(func=_cmd_selftest)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
