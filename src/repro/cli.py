"""Command-line interface: ``python -m repro <command>``.

Operational entry points a deployment actually uses:

* ``stats``      — print Table III (published and scaled) for a dataset;
* ``build``      — build a store from a scaled dataset, report time and
                   modeled memory, optionally snapshot it to disk;
* ``inspect``    — load a snapshot and summarise it;
* ``sample``     — draw weighted neighbor samples from a snapshot;
* ``selftest``   — run the structural invariant checks on a snapshot;
* ``obs``        — run a seeded churn+sample workload on an in-process
                   cluster (optionally with injected faults) and emit
                   the observability readout: a human report, the
                   Prometheus text exposition, or a JSON dump
                   (DESIGN.md §11);
* ``doctor``     — walk a store (saved snapshot or a seeded churned
                   cluster) and emit the samtree structural-health
                   report — depth/fill histograms, α-Split pivot
                   quality, per-component memory breakdown — with an
                   optional ``--fail-on fill=0.4,depth=4`` health gate
                   (DESIGN.md §12; exit code 3 on violation);
* ``serve-sim``  — run a seeded chaos scenario (flash crowd, regional
                   outage, brownout, ...) against the deadline-aware
                   online inference tier and print its SLO report
                   (DESIGN.md §15; exit code 3 when the availability
                   target is violated);
* ``watch``      — the same scenarios with the continuous monitor and
                   tracer attached: a live per-scrape view on the
                   simulated clock (rps, windowed p99, shed rate, alert
                   states), then the SLO report, the alert timeline,
                   and the critical-path layer table (DESIGN.md §16);
* ``alerts``     — run a monitored scenario and print just its alert
                   timeline (human/json), or the post-run Prometheus
                   exposition including the ``repro_monitor_*`` /
                   ``repro_alerts_*`` self-series (``--format
                   prometheus``; lints before printing);
* ``incidents``  — list/show/export the incident bundles that
                   ``watch``/``alerts --incidents-dir`` captured when
                   alerts fired (flight-recorder rings, metric window
                   diffs, traces, scenario spec + seeds; DESIGN.md §17);
* ``replay``     — rebuild the rig from a bundle's spec, re-run the
                   captured window on the simulated clock, and verify
                   the same alert fires at the same instant with a
                   matching event stream (exit 3 on divergence).
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from typing import List, Optional

from repro.bench.workloads import build_store, make_store
from repro.core.memory import humanize_bytes
from repro.datasets.presets import load_dataset
from repro.datasets.statistics import format_table3, published_table3_rows
from repro.storage.checkpoint import load_store, save_store

__all__ = ["main"]


def _cmd_stats(args: argparse.Namespace) -> int:
    if args.dataset == "all":
        print("Published (paper Table III):")
        print(format_table3(published_table3_rows()))
        return 0
    data = load_dataset(args.dataset, scale=args.scale)
    print(format_table3(data.stats_rows()))
    print(f"\nbi-directed total: {data.num_edges:,} edge inserts")
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    data = load_dataset(args.dataset, scale=args.scale)
    store = make_store(args.system, capacity=args.capacity, alpha=args.alpha)
    mode = "per-op" if args.per_op else "bulk"
    scale = "default" if args.scale is None else f"1/{args.scale:g}"
    print(
        f"building {args.dataset} (scale {scale}, "
        f"{data.num_edges:,} edge inserts) into {args.system} "
        f"[{mode} ingestion]..."
    )
    result = build_store(
        store, data, batch_size=args.batch_size, use_bulk=not args.per_op
    )
    print(
        f"  built in {result.seconds:.2f}s "
        f"({result.ops_per_second:,.0f} edges/s)"
    )
    print(f"  edges: {store.num_edges:,}, sources: {store.num_sources:,}")
    print(f"  modeled memory: {humanize_bytes(store.nbytes())}")
    if args.output:
        if args.system not in ("PlatoD2GL", "PlatoD2GL (w/o CP)"):
            print("snapshots are supported for PlatoD2GL stores only",
                  file=sys.stderr)
            return 2
        written = save_store(store, args.output)
        print(f"  snapshot: {args.output} ({humanize_bytes(written)})")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    store = load_store(args.snapshot)
    print(f"snapshot: {args.snapshot}")
    print(f"  config: capacity={store.config.capacity} "
          f"alpha={store.config.alpha} compress={store.config.compress}")
    print(f"  edges: {store.num_edges:,}")
    print(f"  sources: {store.num_sources:,}")
    print(f"  relations: {store.etypes()}")
    print(f"  modeled memory: {humanize_bytes(store.nbytes())}")
    degrees = sorted(
        (store.degree(s, e) for e in store.etypes() for s in store.sources(e)),
        reverse=True,
    )
    if degrees:
        print(f"  max degree: {degrees[0]:,}; "
              f"median: {degrees[len(degrees) // 2]:,}")
    return 0


def _cmd_sample(args: argparse.Namespace) -> int:
    store = load_store(args.snapshot)
    rng = random.Random(args.seed)
    src = args.vertex
    if src is None:
        pool = list(store.sources(args.etype))
        if not pool:
            print("snapshot has no sources for that relation", file=sys.stderr)
            return 2
        src = pool[rng.randrange(len(pool))]
    start = time.perf_counter()
    draws = store.sample_neighbors(src, args.k, rng, args.etype)
    elapsed = time.perf_counter() - start
    print(f"{args.k} weighted draws from vertex {src} "
          f"(degree {store.degree(src, args.etype)}) in {elapsed * 1e3:.2f}ms:")
    print(" ", draws)
    return 0


def _cmd_selftest(args: argparse.Namespace) -> int:
    store = load_store(args.snapshot)
    store.check_invariants()
    print(f"OK: {store.num_edges:,} edges, every samtree invariant holds")
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    """Seeded churn+sample workload on a LocalCluster, then telemetry."""
    import json

    from repro.distributed.cluster import LocalCluster
    from repro.distributed.faults import FaultPolicy
    from repro.distributed.retry import RetryPolicy
    from repro.distributed.rpc import NetworkModel
    from repro.obs.export import (
        lint_prometheus,
        to_json,
        to_prometheus_text,
    )
    from repro.obs.report import render_report
    from repro.obs.trace import Tracer

    import numpy as np

    from repro.datasets.stream import RequestStream

    rng = random.Random(args.seed)
    network = NetworkModel()
    tracer = Tracer(clock=network.now, seed=args.seed)
    fault_policy = None
    if args.fault_rate > 0:
        fault_policy = FaultPolicy(transient_error_rate=args.fault_rate)
    cluster = LocalCluster(
        num_servers=args.shards,
        network=network,
        replication_factor=args.replicas,
        durable=args.replicas > 1 or fault_policy is not None,
        fault_policy=fault_policy,
        fault_seed=args.seed,
        retry=RetryPolicy(max_attempts=6) if fault_policy else None,
        tracer=tracer,
        hot_set_capacity=256 if args.skew > 0 else 0,
    )
    client = cluster.client
    # Churn: columnar bulk load + per-op trickle (both write shapes).
    n = args.vertices
    srcs = [rng.randrange(n) for _ in range(args.edges)]
    dsts = [rng.randrange(n) for _ in range(args.edges)]
    client.bulk_load(srcs, dsts, 1.0)
    for _ in range(args.edges // 10):
        client.add_edge(rng.randrange(n), rng.randrange(n), rng.random())
        client.remove_edge(rng.randrange(n), rng.randrange(n))
    # Batched sampling rounds: uniform frontiers by default, a seeded
    # power-law trace with ``--skew`` (which also enables the hot-set
    # tracker, so the ``repro_hotset_*`` series carry real counts).
    sample_rng = np.random.default_rng(args.seed)
    requests = (
        RequestStream(n, exponent=args.skew, seed=args.seed)
        if args.skew > 0
        else None
    )
    for round_idx in range(args.rounds):
        if requests is not None:
            frontier = requests.batch(args.batch)
        else:
            frontier = [rng.randrange(n) for _ in range(args.batch)]
        client.sample_neighbors_many(frontier, args.k, sample_rng)
        if (
            args.hot_copies > 0
            and requests is not None
            and round_idx == args.rounds // 2
        ):
            # Mid-run, replicate the observed hot set like a production
            # control loop would, so the tail of the run exercises
            # replica spreading.
            cluster.replicate_hot(top_n=8, copies=args.hot_copies)
    if args.format == "prometheus":
        text = to_prometheus_text(cluster.registry)
        lint_prometheus(text)  # never emit an invalid exposition
        print(text, end="")
    elif args.format == "json":
        print(
            json.dumps(
                to_json(cluster.registry, tracer, top_slow=args.top),
                indent=2,
                sort_keys=True,
            )
        )
    elif args.format == "chrome":
        # chrome://tracing / ui.perfetto.dev flamegraph JSON.
        print(json.dumps(tracer.to_chrome_trace(), sort_keys=True))
    else:
        print(render_report(cluster, tracer=tracer, top_k=args.top))
    return 0


def _cmd_doctor(args: argparse.Namespace) -> int:
    """Structural-health report over a snapshot or a seeded cluster."""
    from repro.obs.doctor import (
        check_thresholds,
        diagnose,
        parse_fail_on,
    )
    from repro.obs.export import lint_prometheus, to_prometheus_text

    checks = parse_fail_on(args.fail_on) if args.fail_on else []

    if args.snapshot:
        target = load_store(args.snapshot)
    else:
        # Seeded churn workload on an in-process cluster: columnar bulk
        # load, per-op trickle (inserts + deletes, so splits *and*
        # merges fire), then batched sampling rounds to populate the
        # snapshot caches.  Mean degree is edges/vertices — the default
        # 300 vertices x 30k edges at capacity 64 yields multi-level
        # trees whose non-root leaves sit near the bulk fill fraction.
        from repro.core.samtree import SamtreeConfig
        from repro.distributed.cluster import LocalCluster

        rng = random.Random(args.seed)
        cluster = LocalCluster(
            num_servers=args.shards,
            config=SamtreeConfig(capacity=args.capacity),
            durable=True,
        )
        client = cluster.client
        n = args.vertices
        srcs = [rng.randrange(n) for _ in range(args.edges)]
        dsts = [rng.randrange(n) for _ in range(args.edges)]
        client.bulk_load(srcs, dsts, 1.0)
        for _ in range(args.edges // 20):
            client.add_edge(rng.randrange(n), rng.randrange(n), rng.random())
            client.remove_edge(rng.randrange(n), rng.randrange(n))
        for _ in range(5):
            frontier = [rng.randrange(n) for _ in range(64)]
            client.sample_neighbors_many(frontier, 10, rng)
        target = cluster

    report = diagnose(target)
    if args.format == "json":
        print(report.to_json())
    elif args.format == "prometheus":
        text = to_prometheus_text(report.to_registry())
        lint_prometheus(text)  # never emit an invalid exposition
        print(text, end="")
    else:
        print(report.render())
    violations = check_thresholds(report, checks)
    if violations:
        for violation in violations:
            print(f"FAIL {violation}", file=sys.stderr)
        return 3
    return 0


def _cmd_serve_sim(args: argparse.Namespace) -> int:
    """Run one chaos scenario against the serving tier, print the SLO."""
    import json

    from repro.serving import run_scenario

    rig, report = run_scenario(
        args.scenario,
        seed=args.seed,
        shedding=not args.no_shedding,
        rig_kwargs={
            "num_shards": args.shards,
            "num_sources": args.vertices,
        },
        target_availability=args.target,
    )
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.meets_target else 3


def _build_monitored_rig(args, trace: bool):
    """Shared rig+scenario setup of the ``watch``/``alerts`` commands.

    Goes through :func:`repro.obs.replay.make_spec`, so every monitored
    CLI run is described by a replayable spec — the flight recorder is
    always attached, and an :class:`IncidentManager` freezes a bundle on
    every firing alert (written to ``--incidents-dir`` when given).
    """
    from repro.obs.incident import IncidentManager
    from repro.obs.replay import (
        build_rig_from_spec,
        make_spec,
        scenario_from_spec,
    )

    spec = make_spec(
        args.scenario,
        seed=args.seed,
        rig_kwargs={
            "shedding": not args.no_shedding,
            "num_shards": args.shards,
            "num_sources": args.vertices,
            "trace": trace,
            "monitor_interval": args.interval,
        },
    )
    rig = build_rig_from_spec(spec)
    incidents = IncidentManager(
        rig.cluster, out_dir=getattr(args, "incidents_dir", None)
    )
    incidents.watch(rig.monitor.alerts)
    incidents.mark_start(spec)
    scenario = scenario_from_spec(spec, rig.num_sources)
    return rig, scenario, incidents


def _cmd_watch(args: argparse.Namespace) -> int:
    """Monitored scenario run with a live per-scrape terminal view."""
    import json

    from repro.obs.critical import analyze_critical_paths
    from repro.serving.scenarios import ScenarioRunner

    rig, scenario, incidents = _build_monitored_rig(args, trace=True)
    network = rig.cluster.network
    t0 = network.now()
    window = args.window
    samples = []

    def on_scrape(monitor, now) -> None:
        store = monitor.store
        rps = store.rate("repro_serving_submitted", window, at=now)
        fresh = store.rate("repro_serving_answered_fresh", window, at=now)
        shed = sum(
            store.rate(f"repro_serving_shed_{cause}", window, at=now)
            for cause in ("queue_full", "deadline_hopeless", "breaker_open")
        )
        p99 = store.quantile_over_time(
            0.99, "repro_serving_request_seconds", window, at=now
        )
        states = {
            name: alert.state
            for name, alert in monitor.alerts.alerts.items()
        }
        active = [f"{n}={s}" for n, s in sorted(states.items())
                  if s != "inactive"]
        samples.append(
            {
                "t": now - t0,
                "rps": rps,
                "fresh_per_s": fresh,
                "shed_per_s": shed,
                "p99_seconds": p99,
                "alerts": states,
            }
        )
        if args.format == "human":
            print(
                f"[{now - t0:7.3f}s] rps {rps:7.0f} | "
                f"fresh/s {fresh:7.0f} | shed/s {shed:6.0f} | "
                f"p99 {p99 * 1e3:7.3f}ms | "
                f"alerts: {' '.join(active) if active else '-'}"
            )

    runner = ScenarioRunner(rig, scenario, on_scrape=on_scrape)
    report = runner.run(target_availability=args.target)
    manager = rig.monitor.alerts
    critical = analyze_critical_paths(
        rig.tracer.traces(), root_name="serve.batch"
    )
    if args.format == "json":
        print(
            json.dumps(
                {
                    "scenario": scenario.name,
                    "slo": report.to_dict(),
                    "samples": samples,
                    "alerts": manager.to_dict(),
                    "critical_path": critical.to_dict(),
                    "incidents": [
                        dict(b["meta"]) for b in incidents.incidents
                    ],
                    "incidents_suppressed": incidents.suppressed,
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print()
        print(report.render())
        print()
        print("alert timeline:")
        if manager.events:
            for e in manager.timeline():
                print(
                    f"  t={e.t - t0:7.3f}s  {e.rule:<28} "
                    f"{e.from_state} -> {e.to_state}  "
                    f"(value {e.value:.2f})"
                )
        else:
            print("  (no transitions)")
        if incidents.incidents:
            print()
            print("incident bundles:")
            for b in incidents.incidents:
                m = b["meta"]
                where = (
                    f" -> {args.incidents_dir}/{m['id']}"
                    if args.incidents_dir
                    else ""
                )
                print(
                    f"  t={m['t_rel']:7.3f}s  {m['id']}{where}"
                )
        print()
        print(critical.render())
    return 0 if report.meets_target else 3


def _cmd_alerts(args: argparse.Namespace) -> int:
    """Monitored scenario run; print the alert timeline (or exposition)."""
    import json

    from repro.obs.export import lint_prometheus, to_prometheus_text
    from repro.serving.scenarios import ScenarioRunner

    rig, scenario, incidents = _build_monitored_rig(args, trace=False)
    t0 = rig.cluster.network.now()
    runner = ScenarioRunner(rig, scenario)
    runner.run(target_availability=args.target)
    manager = rig.monitor.alerts
    if args.format == "prometheus":
        # Post-run exposition: the workload series *plus* the monitor's
        # own repro_monitor_* / repro_alerts_* health series.
        text = to_prometheus_text(rig.cluster.registry)
        lint_prometheus(text)  # never emit an invalid exposition
        print(text, end="")
    elif args.format == "json":
        payload = manager.to_dict()
        payload["scenario"] = scenario.name
        payload["t0"] = t0
        payload["scrapes"] = rig.monitor.scrapes
        payload["incidents"] = [
            dict(b["meta"]) for b in incidents.incidents
        ]
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(
            f"alert timeline — scenario {scenario.name!r} "
            f"({rig.monitor.scrapes} scrapes, "
            f"{manager.evaluations} evaluations)"
        )
        if manager.events:
            for e in manager.timeline():
                labels = ",".join(
                    f"{k}={v}" for k, v in sorted(e.labels.items())
                )
                print(
                    f"  t={e.t - t0:7.3f}s  {e.rule:<28} "
                    f"{e.from_state} -> {e.to_state}  "
                    f"(value {e.value:.2f})  [{labels}]"
                )
        else:
            print("  (no transitions)")
        for alert in manager.alerts.values():
            print(f"  final: {alert.rule.name} = {alert.state}")
    if args.fail_on_firing and manager.firing():
        for alert in manager.firing():
            print(f"FAIL still firing: {alert.rule.name}", file=sys.stderr)
        return 3
    return 0


def _cmd_incidents(args: argparse.Namespace) -> int:
    """List, show, or export captured incident bundle directories."""
    import json
    import os

    from repro.obs.incident import list_bundles, load_bundle

    if args.action == "list":
        metas = list_bundles(args.dir)
        if args.format == "json":
            print(json.dumps({"dir": args.dir, "incidents": metas},
                             indent=2, sort_keys=True))
            return 0
        if not metas:
            print(f"no incident bundles under {args.dir!r}")
            return 0
        print(f"{len(metas)} incident bundle(s) under {args.dir!r}:")
        for m in metas:
            what = m.get("rule") or m.get("trigger", "?")
            t_rel = m.get("t_rel")
            when = f"t_rel={t_rel:.3f}s" if t_rel is not None else "t_rel=?"
            print(f"  {m['id']:<44} {what:<28} {when}")
        return 0

    if not args.id:
        print("--id is required for show/export", file=sys.stderr)
        return 2
    path = os.path.join(args.dir, args.id)
    bundle = load_bundle(path)

    if args.action == "export":
        text = json.dumps(bundle, indent=2, sort_keys=True)
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(text + "\n")
            print(f"exported {args.id} -> {args.out}")
        else:
            print(text)
        return 0

    # show
    if args.format == "json":
        print(json.dumps(bundle, indent=2, sort_keys=True))
        return 0
    meta = bundle["meta"]
    print(f"incident {meta['id']}")
    print(f"  trigger: {meta.get('trigger')}"
          + (f" ({meta.get('rule')})" if meta.get("rule") else ""))
    t_rel = meta.get("t_rel")
    print(f"  captured at t={meta.get('t')} "
          f"(t_rel={t_rel:.6f}s)" if t_rel is not None else
          f"  captured at t={meta.get('t')}")
    if meta.get("value") is not None:
        print(f"  value {meta['value']:.4f} vs threshold "
              f"{meta.get('threshold')}")
    spec = bundle.get("spec")
    if spec:
        print(f"  spec: scenario={spec.get('scenario')!r} "
              f"seed={spec.get('seed')} "
              f"scenario_seed={spec.get('scenario_seed')}")
    events = bundle.get("events") or {}
    print(f"  events: {events.get('events_total', 0)} recorded, "
          f"{events.get('dropped_total', 0)} dropped")
    for name, cat in sorted((events.get("categories") or {}).items()):
        if cat.get("total"):
            print(f"    {name:<12} {cat['total']:6d} total "
                  f"({len(cat.get('events', []))} retained)")
    diff = (bundle.get("metrics") or {}).get("window_diff") or {}
    hot = {k: v for k, v in diff.items() if v}
    if hot:
        window = (bundle.get("metrics") or {}).get("window_seconds", "?")
        print(f"  window diff ({window}s):")
        for key in sorted(hot, key=lambda k: -abs(hot[k]))[:8]:
            print(f"    {key:<44} {hot[key]:+.1f}")
    print(f"  traces: {len(bundle.get('traces') or [])} slow trees")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    """Replay an incident bundle; exit 3 when it diverges."""
    import json

    from repro.obs.replay import replay_bundle

    result = replay_bundle(args.bundle)
    if args.format == "json":
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(result.render())
    return 0 if result.converged else 3


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PlatoD2GL reproduction command-line tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_stats = sub.add_parser("stats", help="dataset statistics (Table III)")
    p_stats.add_argument(
        "dataset", choices=["OGBN", "Reddit", "WeChat", "all"]
    )
    p_stats.add_argument("--scale", type=float, default=None)
    p_stats.set_defaults(func=_cmd_stats)

    p_build = sub.add_parser("build", help="build a store from a dataset")
    p_build.add_argument("dataset", choices=["OGBN", "Reddit", "WeChat"])
    p_build.add_argument(
        "--system",
        default="PlatoD2GL",
        choices=["PlatoD2GL", "PlatoD2GL (w/o CP)", "PlatoGL", "AliGraph"],
    )
    p_build.add_argument("--scale", type=float, default=None)
    p_build.add_argument("--capacity", type=int, default=256)
    p_build.add_argument("--alpha", type=int, default=0)
    p_build.add_argument("--batch-size", type=int, default=4096)
    p_build.add_argument(
        "--per-op",
        action="store_true",
        help="ingest one edge at a time instead of the default columnar "
        "bulk path (same final store; used for comparisons)",
    )
    p_build.add_argument("--output", help="snapshot path to write")
    p_build.set_defaults(func=_cmd_build)

    p_inspect = sub.add_parser("inspect", help="summarise a snapshot")
    p_inspect.add_argument("snapshot")
    p_inspect.set_defaults(func=_cmd_inspect)

    p_sample = sub.add_parser("sample", help="draw neighbors from a snapshot")
    p_sample.add_argument("snapshot")
    p_sample.add_argument("--vertex", type=int, default=None)
    p_sample.add_argument("--k", type=int, default=10)
    p_sample.add_argument("--etype", type=int, default=0)
    p_sample.add_argument("--seed", type=int, default=0)
    p_sample.set_defaults(func=_cmd_sample)

    p_selftest = sub.add_parser(
        "selftest", help="validate a snapshot's invariants"
    )
    p_selftest.add_argument("snapshot")
    p_selftest.set_defaults(func=_cmd_selftest)

    p_obs = sub.add_parser(
        "obs",
        help="run a churn+sample workload on an in-process cluster and "
        "print the observability readout",
    )
    p_obs.add_argument(
        "--format",
        default="human",
        choices=["human", "prometheus", "json", "chrome"],
        help="human report, Prometheus text exposition, JSON dump, or "
        "chrome://tracing trace JSON",
    )
    p_obs.add_argument("--shards", type=int, default=4)
    p_obs.add_argument(
        "--replicas", type=int, default=1, help="replicas per shard"
    )
    p_obs.add_argument("--vertices", type=int, default=500)
    p_obs.add_argument("--edges", type=int, default=2000)
    p_obs.add_argument(
        "--rounds", type=int, default=20, help="batched sampling rounds"
    )
    p_obs.add_argument("--batch", type=int, default=64)
    p_obs.add_argument("--k", type=int, default=10, help="sample fanout")
    p_obs.add_argument(
        "--skew",
        type=float,
        default=0.0,
        help="Zipf exponent for the sampling trace (0 = uniform; "
        "> 0 also enables the hot-set tracker)",
    )
    p_obs.add_argument(
        "--hot-copies",
        type=int,
        default=0,
        help="with --skew, replicate the observed hot set to this many "
        "extra shards mid-run",
    )
    p_obs.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="transient fault probability per request (adds a retrying "
        "client when > 0)",
    )
    p_obs.add_argument(
        "--top", type=int, default=5, help="slow traces to show"
    )
    p_obs.add_argument("--seed", type=int, default=0)
    p_obs.set_defaults(func=_cmd_obs)

    p_doctor = sub.add_parser(
        "doctor",
        help="samtree structural-health report: depth/fill histograms, "
        "alpha-split pivot quality, per-component memory breakdown",
    )
    p_doctor.add_argument(
        "--snapshot",
        default=None,
        help="diagnose a saved store snapshot instead of running the "
        "seeded in-process workload",
    )
    p_doctor.add_argument(
        "--format",
        default="human",
        choices=["human", "json", "prometheus"],
        help="human report, JSON dump, or Prometheus text exposition",
    )
    p_doctor.add_argument(
        "--fail-on",
        default=None,
        metavar="SPEC",
        help="comma-separated health bounds, e.g. "
        "'fill=0.4,depth=4,imbalance=0.5,bytes=64MB'; exit 3 on "
        "violation (fill is a lower bound, the rest upper bounds)",
    )
    p_doctor.add_argument("--shards", type=int, default=2)
    p_doctor.add_argument("--vertices", type=int, default=300)
    p_doctor.add_argument("--edges", type=int, default=30000)
    p_doctor.add_argument(
        "--capacity", type=int, default=64, help="samtree node capacity"
    )
    p_doctor.add_argument("--seed", type=int, default=0)
    p_doctor.set_defaults(func=_cmd_doctor)

    p_serve = sub.add_parser(
        "serve-sim",
        help="run a seeded chaos scenario against the deadline-aware "
        "serving tier and print its SLO report",
    )
    p_serve.add_argument(
        "--scenario",
        default="calm",
        choices=[
            "calm",
            "diurnal",
            "flash_crowd",
            "churn_burst",
            "regional_outage",
            "brownout",
        ],
        help="seeded traffic/fault schedule to replay",
    )
    p_serve.add_argument(
        "--no-shedding",
        action="store_true",
        help="disable admission control (the control arm: under a flash "
        "crowd the tier collapses instead of degrading gracefully)",
    )
    p_serve.add_argument(
        "--format",
        default="human",
        choices=["human", "json"],
        help="human SLO block or JSON dump",
    )
    p_serve.add_argument(
        "--target",
        type=float,
        default=0.99,
        help="availability target for the error-budget burn (exit 3 "
        "when violated)",
    )
    p_serve.add_argument("--shards", type=int, default=4)
    p_serve.add_argument(
        "--vertices", type=int, default=400, help="vertex universe size"
    )
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.set_defaults(func=_cmd_serve_sim)

    scenario_choices = [
        "calm",
        "diurnal",
        "flash_crowd",
        "churn_burst",
        "regional_outage",
        "brownout",
    ]

    p_watch = sub.add_parser(
        "watch",
        help="run a monitored chaos scenario with a live per-scrape "
        "terminal view, then the SLO report, alert timeline, and "
        "critical-path layer table",
    )
    p_watch.add_argument(
        "--scenario", default="flash_crowd", choices=scenario_choices
    )
    p_watch.add_argument(
        "--interval",
        type=float,
        default=0.05,
        help="scrape interval in simulated seconds",
    )
    p_watch.add_argument(
        "--window",
        type=float,
        default=0.25,
        help="query window of the live view's rate/p99 columns",
    )
    p_watch.add_argument(
        "--format", default="human", choices=["human", "json"]
    )
    p_watch.add_argument("--no-shedding", action="store_true")
    p_watch.add_argument("--target", type=float, default=0.99)
    p_watch.add_argument("--shards", type=int, default=4)
    p_watch.add_argument("--vertices", type=int, default=400)
    p_watch.add_argument("--seed", type=int, default=0)
    p_watch.add_argument(
        "--incidents-dir",
        default=None,
        metavar="DIR",
        help="write an incident bundle directory under DIR for every "
        "firing alert (consumed by 'repro incidents' / 'repro replay')",
    )
    p_watch.set_defaults(func=_cmd_watch)

    p_alerts = sub.add_parser(
        "alerts",
        help="run a monitored chaos scenario and print its alert "
        "timeline (or the post-run Prometheus exposition)",
    )
    p_alerts.add_argument(
        "--scenario", default="flash_crowd", choices=scenario_choices
    )
    p_alerts.add_argument(
        "--interval",
        type=float,
        default=0.02,
        help="scrape interval in simulated seconds",
    )
    p_alerts.add_argument(
        "--format",
        default="human",
        choices=["human", "json", "prometheus"],
    )
    p_alerts.add_argument(
        "--fail-on-firing",
        action="store_true",
        help="exit 3 when any alert is still firing at scenario end",
    )
    p_alerts.add_argument("--no-shedding", action="store_true")
    p_alerts.add_argument("--target", type=float, default=0.99)
    p_alerts.add_argument("--shards", type=int, default=4)
    p_alerts.add_argument("--vertices", type=int, default=400)
    p_alerts.add_argument("--seed", type=int, default=0)
    p_alerts.add_argument(
        "--incidents-dir",
        default=None,
        metavar="DIR",
        help="write an incident bundle directory under DIR for every "
        "firing alert",
    )
    p_alerts.set_defaults(func=_cmd_alerts)

    p_incidents = sub.add_parser(
        "incidents",
        help="list, show, or export incident bundles captured by "
        "'repro watch/alerts --incidents-dir'",
    )
    p_incidents.add_argument(
        "action",
        choices=["list", "show", "export"],
        help="list bundle metadata, show one bundle, or export it as a "
        "single JSON document",
    )
    p_incidents.add_argument(
        "--dir",
        default="incidents",
        help="bundle directory root (default: ./incidents)",
    )
    p_incidents.add_argument(
        "--id", default=None, help="bundle id for show/export"
    )
    p_incidents.add_argument(
        "--out", default=None, help="export target file (default stdout)"
    )
    p_incidents.add_argument(
        "--format", default="human", choices=["human", "json"]
    )
    p_incidents.set_defaults(func=_cmd_incidents)

    p_replay = sub.add_parser(
        "replay",
        help="deterministically replay an incident bundle and verify "
        "the same alert fires at the same simulated instant with a "
        "matching event stream (exit 3 on divergence)",
    )
    p_replay.add_argument("bundle", help="bundle directory path")
    p_replay.add_argument(
        "--format", default="human", choices=["human", "json"]
    )
    p_replay.set_defaults(func=_cmd_replay)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
