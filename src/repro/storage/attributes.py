"""Attribute (feature) storage (paper §III: "As for the attribute
storage, the key-value store is used").

GNN training needs, besides topology, a feature vector per vertex (and
optionally labels).  PlatoD2GL keeps these in a plain key-value store —
attributes are point-updated, never range-sampled, so the KV indexing
overhead the samtree avoids for topology is the right tool here.

The store is schema'd: each named field has a fixed dimensionality and
dtype, so batch gathers return dense ``numpy`` matrices ready for the
operator layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Sequence

import numpy as np

from repro.core.memory import DEFAULT_MEMORY_MODEL, MemoryModel
from repro.errors import ConfigurationError, ShapeError, VertexNotFoundError

__all__ = ["AttributeSchema", "AttributeStore"]


@dataclass(frozen=True)
class AttributeSchema:
    """A named, fixed-width vertex attribute field."""

    name: str
    dim: int
    dtype: np.dtype = np.dtype(np.float32)

    def __post_init__(self) -> None:
        if self.dim < 1:
            raise ConfigurationError(
                f"attribute dim must be >= 1, got {self.dim}"
            )


class AttributeStore:
    """Per-vertex feature vectors behind a key-value interface.

    Examples
    --------
    >>> store = AttributeStore()
    >>> store.register("feat", dim=4)
    >>> store.put("feat", 7, [1.0, 2.0, 3.0, 4.0])
    >>> store.gather("feat", [7, 8]).shape
    (2, 4)
    """

    def __init__(self, model: MemoryModel = DEFAULT_MEMORY_MODEL) -> None:
        self._schemas: Dict[str, AttributeSchema] = {}
        self._fields: Dict[str, Dict[int, np.ndarray]] = {}
        self._model = model

    # ------------------------------------------------------------------
    # schema management
    # ------------------------------------------------------------------
    def register(
        self, name: str, dim: int, dtype: np.dtype = np.dtype(np.float32)
    ) -> None:
        """Declare a field; idempotent if the declaration is identical."""
        schema = AttributeSchema(name, dim, np.dtype(dtype))
        existing = self._schemas.get(name)
        if existing is not None:
            if existing != schema:
                raise ConfigurationError(
                    f"attribute {name!r} already registered with a "
                    f"different schema ({existing} vs {schema})"
                )
            return
        self._schemas[name] = schema
        self._fields[name] = {}

    def schema(self, name: str) -> AttributeSchema:
        """Return the schema of a field."""
        try:
            return self._schemas[name]
        except KeyError:
            raise ConfigurationError(f"unknown attribute field {name!r}") from None

    def fields(self) -> Iterator[str]:
        """Iterate over registered field names."""
        return iter(self._schemas)

    # ------------------------------------------------------------------
    # point access
    # ------------------------------------------------------------------
    def put(self, name: str, vertex: int, value: Sequence[float]) -> None:
        """Set the feature vector of one vertex."""
        schema = self.schema(name)
        arr = np.asarray(value, dtype=schema.dtype)
        if arr.shape != (schema.dim,):
            raise ShapeError(
                f"attribute {name!r} expects shape ({schema.dim},), "
                f"got {arr.shape}"
            )
        self._fields[name][int(vertex)] = arr

    def put_many(
        self, name: str, vertices: Sequence[int], values: np.ndarray
    ) -> None:
        """Set feature vectors for many vertices from a dense matrix."""
        schema = self.schema(name)
        matrix = np.asarray(values, dtype=schema.dtype)
        if matrix.shape != (len(vertices), schema.dim):
            raise ShapeError(
                f"attribute {name!r} expects shape "
                f"({len(vertices)}, {schema.dim}), got {matrix.shape}"
            )
        field = self._fields[name]
        for i, v in enumerate(vertices):
            field[int(v)] = matrix[i].copy()

    def get(self, name: str, vertex: int) -> np.ndarray:
        """Feature vector of one vertex; raises if missing."""
        field = self._fields[self.schema(name).name]
        try:
            return field[int(vertex)]
        except KeyError:
            raise VertexNotFoundError(
                f"vertex {vertex} has no {name!r} attribute"
            ) from None

    def get_or_default(self, name: str, vertex: int) -> np.ndarray:
        """Feature vector or a zero vector when missing (cold vertices)."""
        schema = self.schema(name)
        value = self._fields[name].get(int(vertex))
        if value is None:
            return np.zeros(schema.dim, dtype=schema.dtype)
        return value

    def delete(self, name: str, vertex: int) -> bool:
        """Drop one vertex's value; returns whether it existed."""
        return self._fields[self.schema(name).name].pop(int(vertex), None) is not None

    def has(self, name: str, vertex: int) -> bool:
        """Whether the vertex has a stored value for the field."""
        return int(vertex) in self._fields[self.schema(name).name]

    def num_vertices(self, name: str) -> int:
        """Number of vertices with a stored value for the field."""
        return len(self._fields[self.schema(name).name])

    # ------------------------------------------------------------------
    # batch access (the GNN gather path)
    # ------------------------------------------------------------------
    def gather(self, name: str, vertices: Iterable[int]) -> np.ndarray:
        """Dense ``(len(vertices), dim)`` matrix; missing rows are zero."""
        schema = self.schema(name)
        field = self._fields[name]
        ids = list(vertices)
        out = np.zeros((len(ids), schema.dim), dtype=schema.dtype)
        for i, v in enumerate(ids):
            row = field.get(int(v))
            if row is not None:
                out[i] = row
        return out

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def nbytes(self) -> int:
        """Keys + index entries + payload bytes under the memory model."""
        model = self._model
        per_pair = model.id_bytes + model.kv_index_entry_bytes
        total = 0
        for name, field in self._fields.items():
            itemsize = self._schemas[name].dtype.itemsize
            dim = self._schemas[name].dim
            total += len(field) * (per_pair + itemsize * dim)
        return total
