"""Storage substrates: cuckoo directory, block KV store, attribute store,
binary checkpointing, and the per-shard write-ahead log."""

from repro.storage.attributes import AttributeSchema, AttributeStore
from repro.storage.checkpoint import (
    load_attributes,
    load_store,
    save_attributes,
    save_store,
)
from repro.storage.cuckoo import CuckooHashMap
from repro.storage.kvstore import BlockKVStore
from repro.storage.wal import ShardWAL

__all__ = [
    "AttributeSchema",
    "AttributeStore",
    "load_attributes",
    "load_store",
    "save_attributes",
    "save_store",
    "CuckooHashMap",
    "BlockKVStore",
    "ShardWAL",
]
