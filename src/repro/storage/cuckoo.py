"""Concurrent cuckoo hashmap (paper §IV-B).

PlatoD2GL keeps one directory entry per source vertex — the value is the
tuple ``<|N_u|, T_u>`` (out-degree and samtree) — in a *concurrent cuckoo
hashmap* following MemC3 [7] and the algorithmic improvements of [23]:

* two hash functions, bucketised slots (4 ways per bucket, as MemC3);
* inserts displace residents along a bounded eviction path;
* a full table (or an eviction path that exceeds the bound) doubles the
  bucket count and rehashes;
* readers are lock-free: each slot holds one ``(key, value)`` pair, so a
  slot read is a single GIL-atomic list access and can never observe a
  torn key/value combination even while an eviction is relocating pairs.
  One write lock serialises mutators — a coarse but correct stand-in for
  MemC3's optimistic versioned reads, which CPython cannot express
  usefully; the PALM executor additionally partitions update batches so
  that no two threads ever write the same tree.

The map accepts any hashable key so heterogeneous stores can key the
directory by ``(edge_type, src)``.
"""

from __future__ import annotations

import threading
from typing import Any, Hashable, Iterator, List, Optional, Tuple

from repro.core.memory import DEFAULT_MEMORY_MODEL, MemoryModel
from repro.errors import ConfigurationError, HashMapFullError

__all__ = ["CuckooHashMap"]

#: Slots per bucket (MemC3 uses 4-way buckets).
_BUCKET_WAYS = 4

#: Maximum displacement-path length before we give up and resize.
_MAX_EVICTIONS = 500

#: Odd multiplier deriving the second bucket choice from the first hash.
_SEED = 0x9E3779B97F4A7C15

_MASK64 = 0xFFFFFFFFFFFFFFFF


class CuckooHashMap:
    """4-way bucketised cuckoo hash map with lock-free reads.

    Parameters
    ----------
    initial_buckets:
        Starting number of buckets (rounded up to a power of two).
    """

    def __init__(self, initial_buckets: int = 16) -> None:
        if initial_buckets < 1:
            raise ConfigurationError(
                f"initial_buckets must be >= 1, got {initial_buckets}"
            )
        n = 1
        while n < initial_buckets:
            n <<= 1
        self._num_buckets = n
        # One (key, value) tuple or None per slot: single-read atomicity.
        self._slots: List[Optional[Tuple[Hashable, Any]]] = [None] * (
            n * _BUCKET_WAYS
        )
        self._size = 0
        self._resize_lock = threading.Lock()

    # ------------------------------------------------------------------
    # hashing
    # ------------------------------------------------------------------
    def _buckets_for(self, key: Hashable) -> Tuple[int, int]:
        h = hash(key)
        mask = self._num_buckets - 1
        h2 = ((h * _SEED) & _MASK64) >> 17
        return h & mask, h2 & mask

    # ------------------------------------------------------------------
    # core slot operations (mutators hold the write lock)
    # ------------------------------------------------------------------
    def _find_slot(self, key: Hashable) -> int:
        """Index of the slot holding ``key`` or -1 (lock-free)."""
        slots = self._slots
        b1, b2 = self._buckets_for(key)
        base = b1 * _BUCKET_WAYS
        for s in range(base, base + _BUCKET_WAYS):
            pair = slots[s]
            if pair is not None and pair[0] == key:
                return s
        if b2 != b1:
            base = b2 * _BUCKET_WAYS
            for s in range(base, base + _BUCKET_WAYS):
                pair = slots[s]
                if pair is not None and pair[0] == key:
                    return s
        return -1

    def _free_slot(self, bucket: int) -> int:
        base = bucket * _BUCKET_WAYS
        for s in range(base, base + _BUCKET_WAYS):
            if self._slots[s] is None:
                return s
        return -1

    def _insert_with_evictions(self, key: Hashable, value: Any) -> bool:
        """Try to place ``key`` via cuckoo displacement; False = full."""
        pair = (key, value)
        bucket = self._buckets_for(key)[0]
        for attempt in range(_MAX_EVICTIONS):
            slot = self._free_slot(bucket)
            if slot < 0:
                # Try the alternate bucket before evicting.
                alt = self._alternate(pair[0], bucket)
                slot = self._free_slot(alt)
                if slot >= 0:
                    bucket = alt
            if slot >= 0:
                self._slots[slot] = pair
                return True
            # Evict a rotating resident of this bucket and re-home it in
            # its alternate bucket next round.
            victim = bucket * _BUCKET_WAYS + (attempt % _BUCKET_WAYS)
            pair, self._slots[victim] = self._slots[victim], pair
            bucket = self._alternate(pair[0], bucket)
        # Path too long: grow, then place the displaced pair.
        self._grow_locked()
        return self._insert_with_evictions(pair[0], pair[1])

    def _alternate(self, key: Hashable, bucket: int) -> int:
        b1, b2 = self._buckets_for(key)
        return b2 if bucket == b1 else b1

    def _grow_locked(self) -> None:
        """Double the bucket count and rehash (write lock already held)."""
        old = self._slots
        self._num_buckets *= 2
        if self._num_buckets > 1 << 34:  # pragma: no cover - safety net
            raise HashMapFullError("cuckoo hashmap grew past 2^34 buckets")
        self._slots = [None] * (self._num_buckets * _BUCKET_WAYS)
        for pair in old:
            if pair is not None:
                if not self._insert_with_evictions(pair[0], pair[1]):
                    raise HashMapFullError(
                        "rehash failed to place an existing key"
                    )

    # ------------------------------------------------------------------
    # public interface
    # ------------------------------------------------------------------
    def put(self, key: Hashable, value: Any) -> None:
        """Insert or overwrite ``key``."""
        with self._resize_lock:
            slot = self._find_slot(key)
            if slot >= 0:
                self._slots[slot] = (key, value)
                return
            if not self._insert_with_evictions(key, value):
                raise HashMapFullError(f"could not place key {key!r}")
            self._size += 1

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the value for ``key`` or ``default`` (lock-free)."""
        slots = self._slots
        b1, b2 = self._buckets_for(key)
        base = b1 * _BUCKET_WAYS
        for s in range(base, base + _BUCKET_WAYS):
            pair = slots[s]
            if pair is not None and pair[0] == key:
                return pair[1]
        if b2 != b1:
            base = b2 * _BUCKET_WAYS
            for s in range(base, base + _BUCKET_WAYS):
                pair = slots[s]
                if pair is not None and pair[0] == key:
                    return pair[1]
        return default

    def get_or_create(self, key: Hashable, factory) -> Any:
        """Return the value for ``key``, creating it atomically if absent.

        The hit path is lock-free; only a miss takes the write lock and
        re-checks before inserting.
        """
        slot = self._find_slot(key)
        if slot >= 0:
            pair = self._slots[slot]
            if pair is not None and pair[0] == key:
                return pair[1]
        with self._resize_lock:
            slot = self._find_slot(key)
            if slot >= 0:
                return self._slots[slot][1]
            value = factory()
            if not self._insert_with_evictions(key, value):
                raise HashMapFullError(f"could not place key {key!r}")
            self._size += 1
            return value

    def delete(self, key: Hashable) -> bool:
        """Remove ``key``; returns whether it was present."""
        with self._resize_lock:
            slot = self._find_slot(key)
            if slot < 0:
                return False
            self._slots[slot] = None
            self._size -= 1
            return True

    def __contains__(self, key: Hashable) -> bool:
        return self._find_slot(key) >= 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __iter__(self) -> Iterator[Hashable]:
        return self.keys()

    def keys(self) -> Iterator[Hashable]:
        """Iterate over keys (snapshot-free; callers should not mutate)."""
        for pair in self._slots:
            if pair is not None:
                yield pair[0]

    def items(self) -> Iterator[Tuple[Hashable, Any]]:
        """Iterate over ``(key, value)`` pairs."""
        for pair in self._slots:
            if pair is not None:
                yield pair

    def values(self) -> Iterator[Any]:
        """Iterate over values."""
        for pair in self._slots:
            if pair is not None:
                yield pair[1]

    @property
    def load_factor(self) -> float:
        """Fraction of slots occupied."""
        return self._size / (self._num_buckets * _BUCKET_WAYS)

    def nbytes(self, model: MemoryModel = DEFAULT_MEMORY_MODEL) -> int:
        """Modeled bytes: every slot pays a directory entry whether used
        or not (the table is pre-allocated), matching the paper's
        directory accounting."""
        return self._num_buckets * _BUCKET_WAYS * model.directory_entry_bytes
