"""Per-shard write-ahead log (WAL) for the distributed storage tier.

A production graph server must survive a crash without replaying weeks
of update streams.  The durability story mirrors classic database
recovery: every mutation is appended to an append-only log *before* it
touches the in-memory samtrees, periodic checkpoints
(:mod:`repro.storage.checkpoint`) capture the full store image, and
recovery is ``last checkpoint + WAL-tail replay``.

The log is a self-contained little-endian binary format — ``struct``
packing plus raw numpy column bytes, no pickle — so a log is safe to
replay from untrusted storage:

* one fixed file header (magic, version, shard id);
* one record per appended :class:`~repro.core.ingest.EdgeBatch`: a
  record header ``(n_rows, crc32)`` followed by the five columns
  (``src`` i64, ``dst`` i64, ``weight`` f64, ``etype`` i16, ``op`` u8)
  packed back to back.

Each record carries a CRC-32 of its payload.  Replay tolerates a *torn
tail* — a final record cut short by a crash mid-append — by stopping at
the first incomplete record; a checksum mismatch **before** the tail
raises :class:`~repro.errors.WALCorruptionError`.

The log can be file-backed (``path=...``; survives process restarts) or
memory-backed (the default; models a durable device for the in-process
cluster, surviving :meth:`GraphServer.crash`, which only drops volatile
state).
"""

from __future__ import annotations

import io
import os
import struct
import zlib
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.core.ingest import EdgeBatch
from repro.core.types import EdgeOp
from repro.errors import ConfigurationError, WALCorruptionError

__all__ = ["ShardWAL", "WAL_MAGIC", "WAL_VERSION"]

WAL_MAGIC = b"PD2W"
WAL_VERSION = 1

_FILE_HEADER = struct.Struct("<4sHHq")  # magic, version, flags, shard_id
_REC_HEADER = struct.Struct("<qI")  # n_rows, crc32(payload)

#: Bytes per row inside a record payload: src i64 + dst i64 + weight f64
#: + etype i16 + op u8.
_ROW_NBYTES = 8 + 8 + 8 + 2 + 1


def _pack_payload(batch: EdgeBatch) -> bytes:
    return b"".join(
        (
            np.ascontiguousarray(batch.src, dtype="<i8").tobytes(),
            np.ascontiguousarray(batch.dst, dtype="<i8").tobytes(),
            np.ascontiguousarray(batch.weight, dtype="<f8").tobytes(),
            np.ascontiguousarray(batch.etype, dtype="<i2").tobytes(),
            np.ascontiguousarray(batch.op, dtype="u1").tobytes(),
        )
    )


def _unpack_payload(payload: bytes, n: int) -> EdgeBatch:
    o = 0
    src = np.frombuffer(payload, dtype="<i8", count=n, offset=o)
    o += 8 * n
    dst = np.frombuffer(payload, dtype="<i8", count=n, offset=o)
    o += 8 * n
    weight = np.frombuffer(payload, dtype="<f8", count=n, offset=o)
    o += 8 * n
    etype = np.frombuffer(payload, dtype="<i2", count=n, offset=o)
    o += 2 * n
    op = np.frombuffer(payload, dtype="u1", count=n, offset=o)
    # Columns were validated when the batch was first constructed; a
    # byte-exact roundtrip cannot invalidate them.
    return EdgeBatch._from_validated(
        src.astype(np.int64),
        dst.astype(np.int64),
        weight.astype(np.float64),
        etype.astype(np.int16),
        op.astype(np.uint8),
    )


class ShardWAL:
    """Append-only columnar operation log of one storage shard.

    Parameters
    ----------
    path:
        File path of the log.  ``None`` (default) keeps the log in an
        in-memory buffer — the "durable device" of the in-process
        cluster, which outlives a simulated server crash.
    shard_id:
        Recorded in the file header; replay of a mismatched shard's log
        is refused.
    """

    def __init__(self, path: Optional[str] = None, shard_id: int = 0) -> None:
        self.path = path
        self.shard_id = int(shard_id)
        self._buf: Optional[io.BytesIO] = None if path else io.BytesIO()
        #: Records appended through this handle (best-effort; a
        #: pre-existing file-backed log may hold more).
        self.records_appended = 0
        self.bytes_appended = 0
        #: Whether the last replay stopped at a torn (truncated) tail.
        self.torn_tail_seen = False
        if path is not None and os.path.exists(path) and os.path.getsize(path):
            self._check_header_of(path)
        else:
            self._write_header()

    # ------------------------------------------------------------------
    # low-level IO
    # ------------------------------------------------------------------
    def _write_header(self) -> None:
        head = _FILE_HEADER.pack(WAL_MAGIC, WAL_VERSION, 0, self.shard_id)
        if self._buf is not None:
            self._buf.seek(0)
            self._buf.truncate()
            self._buf.write(head)
        else:
            with open(self.path, "wb") as f:  # type: ignore[arg-type]
                f.write(head)
        self.bytes_appended = _FILE_HEADER.size

    def _check_header_of(self, path: str) -> None:
        with open(path, "rb") as f:
            data = f.read(_FILE_HEADER.size)
        self._check_header_bytes(data)
        self.bytes_appended = os.path.getsize(path)

    def _check_header_bytes(self, data: bytes) -> None:
        if len(data) < _FILE_HEADER.size:
            raise ConfigurationError("WAL shorter than its file header")
        magic, version, _flags, shard_id = _FILE_HEADER.unpack_from(data, 0)
        if magic != WAL_MAGIC:
            raise ConfigurationError(f"not a PlatoD2GL WAL (magic {magic!r})")
        if version > WAL_VERSION:
            raise ConfigurationError(
                f"WAL version {version} is newer than supported ({WAL_VERSION})"
            )
        if shard_id != self.shard_id:
            raise ConfigurationError(
                f"WAL belongs to shard {shard_id}, not shard {self.shard_id}"
            )

    def _append_bytes(self, data: bytes) -> None:
        if self._buf is not None:
            self._buf.seek(0, io.SEEK_END)
            self._buf.write(data)
        else:
            with open(self.path, "ab") as f:  # type: ignore[arg-type]
                f.write(data)
        self.bytes_appended += len(data)

    def _read_all(self) -> bytes:
        if self._buf is not None:
            return self._buf.getvalue()
        if not os.path.exists(self.path):  # type: ignore[arg-type]
            return b""
        with open(self.path, "rb") as f:  # type: ignore[arg-type]
            return f.read()

    # ------------------------------------------------------------------
    # append path
    # ------------------------------------------------------------------
    def append_batch(self, batch: EdgeBatch) -> int:
        """Durably append one columnar batch; returns bytes written.

        Empty batches append nothing (no empty records on disk).
        """
        n = len(batch)
        if n == 0:
            return 0
        payload = _pack_payload(batch)
        record = _REC_HEADER.pack(n, zlib.crc32(payload)) + payload
        self._append_bytes(record)
        self.records_appended += 1
        return len(record)

    def append_ops(self, ops: Sequence[EdgeOp]) -> int:
        """Columnarise and append a scalar op batch (the ``apply_ops``
        write path shares the log format with the bulk path)."""
        if not ops:
            return 0
        return self.append_batch(EdgeBatch.from_edge_ops(ops))

    # ------------------------------------------------------------------
    # replay path
    # ------------------------------------------------------------------
    def replay(self) -> Iterator[EdgeBatch]:
        """Yield every complete record in append order.

        Stops silently at a torn tail (setting :attr:`torn_tail_seen`);
        raises :class:`WALCorruptionError` on a mid-file checksum
        mismatch.
        """
        data = self._read_all()
        if not data:
            return
        self._check_header_bytes(data)
        self.torn_tail_seen = False
        pos = _FILE_HEADER.size
        end = len(data)
        pending: List[EdgeBatch] = []
        while pos < end:
            if pos + _REC_HEADER.size > end:
                self.torn_tail_seen = True
                break
            n, crc = _REC_HEADER.unpack_from(data, pos)
            if n <= 0:
                raise WALCorruptionError(
                    f"WAL record at byte {pos} has invalid row count {n}"
                )
            body_start = pos + _REC_HEADER.size
            body_end = body_start + n * _ROW_NBYTES
            if body_end > end:
                self.torn_tail_seen = True
                break
            payload = data[body_start:body_end]
            if zlib.crc32(payload) != crc:
                # A bad checksum on the *final* record is a torn tail
                # (partially flushed append); earlier is corruption.
                if body_end == end or body_end + _REC_HEADER.size > end:
                    self.torn_tail_seen = True
                    break
                raise WALCorruptionError(
                    f"WAL record at byte {pos} failed its CRC check"
                )
            pending.append(_unpack_payload(payload, n))
            pos = body_end
        yield from pending

    def num_records(self) -> int:
        """Complete records currently in the log (scans the log)."""
        return sum(1 for _ in self.replay())

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def truncate(self) -> None:
        """Drop every record (called after a checkpoint captures them)."""
        self._write_header()
        self.records_appended = 0
        self.torn_tail_seen = False

    @property
    def nbytes(self) -> int:
        """Current size of the log in bytes."""
        if self._buf is not None:
            return len(self._buf.getvalue())
        if not os.path.exists(self.path):  # type: ignore[arg-type]
            return 0
        return os.path.getsize(self.path)  # type: ignore[arg-type]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        backing = self.path or "<memory>"
        return (
            f"ShardWAL(shard={self.shard_id}, backing={backing!r}, "
            f"nbytes={self.nbytes})"
        )
