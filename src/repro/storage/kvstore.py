"""Block-based key-value store: PlatoGL's storage substrate (paper §I, §IV).

PlatoGL stores a graph as ``<key, value>`` tuples where the key is a
source vertex *plus* "various information ... for uniquely mapping to a
specific block" and the value is a block of neighbors.  The cost the
paper attacks is structural: every key-value pair pays

* the composite key itself (source ID, block sequence, edge type, block
  metadata — :attr:`MemoryModel.kv_key_bytes`), and
* a hash-index entry mapping the key to its value
  (:attr:`MemoryModel.kv_index_entry_bytes`).

This module provides that substrate: a dict-backed store that *accounts*
its footprint under the shared memory model.  The PlatoGL baseline keeps
all of its blocks in one of these so its Table IV numbers emerge from
the same accounting rules as PlatoD2GL's samtrees.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Iterator, Tuple

from repro.core.memory import DEFAULT_MEMORY_MODEL, MemoryModel

__all__ = ["BlockKVStore"]


class BlockKVStore:
    """A key-value store whose pairs pay key + index overhead.

    ``value_nbytes`` — a callable sizing each stored value's payload —
    is supplied by the owner (PlatoGL sizes its neighbor blocks; the
    attribute store sizes feature vectors).
    """

    def __init__(
        self,
        value_nbytes: Callable[[Any], int],
        model: MemoryModel = DEFAULT_MEMORY_MODEL,
    ) -> None:
        self._data: Dict[Hashable, Any] = {}
        self._value_nbytes = value_nbytes
        self._model = model

    # ------------------------------------------------------------------
    # mapping interface
    # ------------------------------------------------------------------
    def put(self, key: Hashable, value: Any) -> None:
        """Insert or overwrite a pair."""
        self._data[key] = value

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Fetch a value or ``default``."""
        return self._data.get(key, default)

    def delete(self, key: Hashable) -> bool:
        """Remove a pair; returns whether it existed."""
        return self._data.pop(key, _MISSING) is not _MISSING

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._data)

    def items(self) -> Iterator[Tuple[Hashable, Any]]:
        """Iterate over pairs."""
        return iter(self._data.items())

    def keys_with_prefix(self, prefix: Tuple) -> Iterator[Hashable]:
        """Iterate over tuple keys starting with ``prefix`` (block scans)."""
        plen = len(prefix)
        for key in self._data:
            if isinstance(key, tuple) and key[:plen] == prefix:
                yield key

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def nbytes(self) -> int:
        """Keys + index entries + value payloads under the memory model."""
        model = self._model
        per_pair = model.kv_key_bytes + model.kv_index_entry_bytes
        total = per_pair * len(self._data)
        for value in self._data.values():
            total += self._value_nbytes(value)
        return total


_MISSING = object()
