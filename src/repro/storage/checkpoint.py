"""Checkpointing: binary snapshots of the dynamic graph store.

A production deployment restarts graph servers without replaying weeks
of update streams — it loads the last snapshot and replays only the
tail.  This module serialises a :class:`DynamicGraphStore` (and
optionally an :class:`AttributeStore`) to a compact binary image:

* a fixed header (magic, version, counts);
* one record per (etype, src) adjacency: the IDs and weights of the
  samtree's leaves in tree order, so loading rebuilds each samtree with
  bulk inserts (no need to serialise tree internals — the tree shape is
  a function of the insertion stream, and any valid shape is
  equivalent);
* attribute sections as (field, dtype, dim) blocks of packed rows.

The format is self-contained little-endian ``struct`` packing — no
pickle, so a snapshot is safe to load from untrusted storage.
"""

from __future__ import annotations

import io
import struct
from typing import BinaryIO, Union

import numpy as np

from repro.core.samtree import SamtreeConfig
from repro.errors import ConfigurationError
from repro.storage.attributes import AttributeStore

# NOTE: repro.core.topology imports repro.storage.cuckoo, which runs this
# package's __init__ — so the store class is imported lazily inside the
# functions to keep the import graph acyclic.

__all__ = ["save_store", "load_store", "save_attributes", "load_attributes"]

_MAGIC = b"PD2G"
_VERSION = 2
_HEADER = struct.Struct("<4sHHIIq")  # magic, version, flags, cap, alpha, nsrc
_ADJ_HEADER = struct.Struct("<qqI")  # etype, src, degree
_ATTR_MAGIC = b"PD2A"
_ATTR_HEADER = struct.Struct("<4sHI")  # magic, version, num_fields


def _write_adjacency(out: BinaryIO, etype: int, src: int, items) -> None:
    ids = []
    weights = []
    for vid, w in items:
        ids.append(vid)
        weights.append(w)
    out.write(_ADJ_HEADER.pack(etype, src, len(ids)))
    out.write(np.asarray(ids, dtype="<u8").tobytes())
    out.write(np.asarray(weights, dtype="<f8").tobytes())


def save_store(store, target: Union[str, BinaryIO]) -> int:
    """Serialise a store; returns the snapshot size in bytes.

    ``target`` is a path or a writable binary stream.
    """
    own = isinstance(target, str)
    out: BinaryIO = open(target, "wb") if own else target  # type: ignore[arg-type]
    try:
        keys = sorted(store._directory.keys())
        flags = 1 if store.config.compress else 0
        out.write(
            _HEADER.pack(
                _MAGIC,
                _VERSION,
                flags,
                store.config.capacity,
                store.config.alpha,
                len(keys),
            )
        )
        written = _HEADER.size
        for etype, src in keys:
            tree = store.tree(src, etype)
            buf = io.BytesIO()
            _write_adjacency(buf, etype, src, tree.items())
            data = buf.getvalue()
            out.write(data)
            written += len(data)
        return written
    finally:
        if own:
            out.close()


def _read_exact(src: BinaryIO, n: int) -> bytes:
    data = src.read(n)
    if len(data) != n:
        raise ConfigurationError(
            f"truncated snapshot: wanted {n} bytes, got {len(data)}"
        )
    return data


def load_store(source: Union[str, BinaryIO]):
    """Rebuild a :class:`~repro.core.topology.DynamicGraphStore` from a
    snapshot."""
    from repro.core.topology import DynamicGraphStore

    own = isinstance(source, str)
    src: BinaryIO = open(source, "rb") if own else source  # type: ignore[arg-type]
    try:
        magic, version, flags, capacity, alpha, nsrc = _HEADER.unpack(
            _read_exact(src, _HEADER.size)
        )
        if magic != _MAGIC:
            raise ConfigurationError(
                f"not a PlatoD2GL snapshot (magic {magic!r})"
            )
        if version > _VERSION:
            raise ConfigurationError(
                f"snapshot version {version} is newer than supported "
                f"({_VERSION})"
            )
        store = DynamicGraphStore(
            SamtreeConfig(
                capacity=capacity, alpha=alpha, compress=bool(flags & 1)
            )
        )
        for _ in range(nsrc):
            etype, vertex, degree = _ADJ_HEADER.unpack(
                _read_exact(src, _ADJ_HEADER.size)
            )
            ids = np.frombuffer(_read_exact(src, 8 * degree), dtype="<u8")
            weights = np.frombuffer(_read_exact(src, 8 * degree), dtype="<f8")
            # Bulk path: one batch per source rebuilds the samtree with
            # the Appendix-B rounds and keeps the counters exact.
            store.apply_source_batch(
                int(vertex),
                int(etype),
                [("insert", int(v), float(w)) for v, w in zip(ids, weights)],
            )
        return store
    finally:
        if own:
            src.close()


def save_attributes(
    attrs: AttributeStore, target: Union[str, BinaryIO]
) -> int:
    """Serialise an attribute store; returns bytes written."""
    own = isinstance(target, str)
    out: BinaryIO = open(target, "wb") if own else target  # type: ignore[arg-type]
    try:
        fields = list(attrs.fields())
        out.write(_ATTR_HEADER.pack(_ATTR_MAGIC, _VERSION, len(fields)))
        written = _ATTR_HEADER.size
        for name in fields:
            schema = attrs.schema(name)
            name_bytes = name.encode("utf-8")
            dtype_bytes = schema.dtype.str.encode("ascii")
            vertices = sorted(
                v for v in attrs._fields[name]
            )
            head = struct.pack(
                "<HHIq", len(name_bytes), len(dtype_bytes), schema.dim,
                len(vertices),
            )
            out.write(head)
            out.write(name_bytes)
            out.write(dtype_bytes)
            out.write(np.asarray(vertices, dtype="<u8").tobytes())
            matrix = attrs.gather(name, vertices)
            out.write(matrix.astype(schema.dtype).tobytes())
            written += (
                len(head)
                + len(name_bytes)
                + len(dtype_bytes)
                + 8 * len(vertices)
                + matrix.nbytes
            )
        return written
    finally:
        if own:
            out.close()


def load_attributes(source: Union[str, BinaryIO]) -> AttributeStore:
    """Rebuild an :class:`AttributeStore` from a snapshot."""
    own = isinstance(source, str)
    src: BinaryIO = open(source, "rb") if own else source  # type: ignore[arg-type]
    try:
        magic, version, num_fields = _ATTR_HEADER.unpack(
            _read_exact(src, _ATTR_HEADER.size)
        )
        if magic != _ATTR_MAGIC:
            raise ConfigurationError(
                f"not an attribute snapshot (magic {magic!r})"
            )
        if version > _VERSION:
            raise ConfigurationError(
                f"snapshot version {version} is newer than supported"
            )
        attrs = AttributeStore()
        for _ in range(num_fields):
            name_len, dtype_len, dim, count = struct.unpack(
                "<HHIq", _read_exact(src, 16)
            )
            name = _read_exact(src, name_len).decode("utf-8")
            dtype = np.dtype(_read_exact(src, dtype_len).decode("ascii"))
            attrs.register(name, dim, dtype)
            vertices = np.frombuffer(
                _read_exact(src, 8 * count), dtype="<u8"
            )
            matrix = np.frombuffer(
                _read_exact(src, count * dim * dtype.itemsize), dtype=dtype
            ).reshape(count, dim)
            attrs.put_many(name, [int(v) for v in vertices], matrix)
        return attrs
    finally:
        if own:
            src.close()
