"""Last-good embedding cache for degraded serving.

When a request's seed lives on a shard with no live replica (the
degraded-read :data:`~repro.core.types.UNAVAILABLE` marker, or a shed
decision that still deserves *an* answer), the service returns the last
fresh embedding it computed for that vertex — time-stamped on the
simulated clock and bounded by a staleness budget, mirroring the frozen
read path's epoch/staleness contract.  Callers always see the answer
flagged ``degraded=True``; an entry past its budget is as good as a
miss.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["DegradedAnswerCache"]


class DegradedAnswerCache:
    """Bounded LRU of ``vertex -> (embedding, stamped_at)``.

    ``staleness_budget_seconds`` bounds how old a served stale answer
    may be (simulated seconds since the embedding was computed);
    ``capacity`` bounds memory.  All times come from the caller so the
    cache lives on the cluster's simulated clock.
    """

    __slots__ = (
        "staleness_budget_seconds",
        "capacity",
        "_entries",
        "hits",
        "misses",
        "stale_rejects",
        "evictions",
    )

    def __init__(
        self,
        staleness_budget_seconds: float = 60.0,
        capacity: int = 65536,
    ) -> None:
        if staleness_budget_seconds <= 0:
            raise ConfigurationError(
                f"staleness_budget_seconds must be > 0, got "
                f"{staleness_budget_seconds}"
            )
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.staleness_budget_seconds = float(staleness_budget_seconds)
        self.capacity = capacity
        self._entries: "OrderedDict[int, tuple]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: Lookups that found an entry but past the staleness budget.
        self.stale_rejects = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def put(self, vertex: int, embedding: np.ndarray, now: float) -> None:
        """Refresh the last-good embedding of ``vertex`` at time ``now``."""
        key = int(vertex)
        if key in self._entries:
            del self._entries[key]
        elif len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[key] = (np.asarray(embedding, dtype=np.float32), now)

    def get(self, vertex: int, now: float) -> Optional[np.ndarray]:
        """Last-good embedding of ``vertex``, or ``None`` if absent/stale."""
        entry = self._entries.get(int(vertex))
        if entry is None:
            self.misses += 1
            return None
        embedding, stamped_at = entry
        if now - stamped_at > self.staleness_budget_seconds:
            self.stale_rejects += 1
            return None
        self.hits += 1
        self._entries.move_to_end(int(vertex))
        return embedding

    def age(self, vertex: int, now: float) -> Optional[float]:
        """Seconds since ``vertex``'s entry was stamped (None = absent)."""
        entry = self._entries.get(int(vertex))
        if entry is None:
            return None
        return now - entry[1]

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.stale_rejects = 0
        self.evictions = 0
