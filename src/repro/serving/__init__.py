"""Online inference tier: deadline-aware serving over the cluster.

The request-facing layer ROADMAP item 5 asks for — micro-batched
inference with admission control, per-shard circuit breakers, degraded
(stale-embedding) serving, and a seeded scenario harness with SLO
reporting.  See DESIGN.md §15.
"""

from repro.serving.admission import AdmissionGate, CircuitBreaker, TokenBucket
from repro.serving.degraded import DegradedAnswerCache
from repro.serving.scenarios import (
    SCENARIOS,
    Scenario,
    ScenarioRunner,
    ServingRig,
    build_serving_rig,
    run_scenario,
)
from repro.serving.service import Answer, InferenceService, Request, ServiceStats
from repro.serving.slo import SLOReport, build_report

__all__ = [
    "AdmissionGate",
    "Answer",
    "build_report",
    "build_serving_rig",
    "CircuitBreaker",
    "DegradedAnswerCache",
    "InferenceService",
    "Request",
    "run_scenario",
    "Scenario",
    "ScenarioRunner",
    "SCENARIOS",
    "ServiceStats",
    "ServingRig",
    "SLOReport",
    "TokenBucket",
]
