"""Admission control for the online inference tier.

Three gates run *before* the expensive sample+gather+compute pass:

* :class:`TokenBucket` — smooths sustained arrival rate (flash crowds
  drain the burst allowance, then shed);
* queue-depth bound — bounds worst-case queueing delay regardless of
  rate;
* :class:`CircuitBreaker` — per-shard closed→open→half-open breaker on
  consecutive hard failures (``RetryExhaustedError`` after failover), so
  a dead shard stops eating whole-batch deadlines cluster-wide.

Everything is measured on the simulated clock the caller passes in —
the same :class:`~repro.distributed.rpc.NetworkModel` clock retries and
deadlines use — so admission decisions are deterministic per seed.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError

__all__ = ["TokenBucket", "AdmissionGate", "CircuitBreaker"]

#: Shed causes (per-cause counters on :class:`ServiceStats`).
SHED_QUEUE_FULL = "queue_full"
SHED_DEADLINE_HOPELESS = "deadline_hopeless"
SHED_BREAKER_OPEN = "breaker_open"


class TokenBucket:
    """Classic token bucket on an external clock.

    ``rate`` tokens/second refill lazily up to ``burst``; :meth:`take`
    consumes one token or reports failure.  No internal time source —
    the caller supplies ``now`` so the bucket lives on simulated time.
    """

    __slots__ = ("rate", "burst", "tokens", "_last")

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0:
            raise ConfigurationError(f"rate must be > 0, got {rate}")
        if burst < 1:
            raise ConfigurationError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self._last = 0.0

    def _refill(self, now: float) -> None:
        if now > self._last:
            self.tokens = min(
                self.burst, self.tokens + (now - self._last) * self.rate
            )
            self._last = now

    def take(self, now: float) -> bool:
        """Consume one token at simulated time ``now``; False = dry."""
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def level(self, now: float) -> float:
        """Current token level (diagnostics)."""
        self._refill(now)
        return self.tokens


class AdmissionGate:
    """Rate + queue-depth gate in front of the micro-batcher.

    :meth:`check` returns ``None`` to admit or a shed-cause string
    (``queue_full`` / ``deadline_hopeless``).  Breaker-based shedding is
    decided by the service itself (it knows the request's shards).
    """

    __slots__ = ("bucket", "max_queue")

    def __init__(
        self,
        rate: float,
        burst: float,
        max_queue: int,
    ) -> None:
        if max_queue < 1:
            raise ConfigurationError(f"max_queue must be >= 1, got {max_queue}")
        self.bucket = TokenBucket(rate, burst)
        self.max_queue = max_queue

    def check(
        self,
        now: float,
        queue_depth: int,
        deadline: Optional[float],
        estimated_completion: float,
    ) -> Optional[str]:
        """Admit (``None``) or shed (cause string) one request.

        ``estimated_completion`` is the service's projected finish time
        for this request given the current queue; a deadline the
        estimate already blows is shed as hopeless *before* spending a
        token — rate capacity is saved for requests that can still win.
        """
        if deadline is not None and estimated_completion > deadline:
            return SHED_DEADLINE_HOPELESS
        if queue_depth >= self.max_queue:
            return SHED_QUEUE_FULL
        if not self.bucket.take(now):
            return SHED_QUEUE_FULL
        return None


class CircuitBreaker:
    """Per-shard breaker: closed → open → half-open → closed.

    ``failure_threshold`` consecutive hard failures open the breaker for
    ``reset_timeout`` simulated seconds; after the timeout a **single**
    probe request is let through (half-open).  Its success closes the
    breaker, its failure re-opens it for another timeout.
    """

    __slots__ = (
        "failure_threshold",
        "reset_timeout",
        "failures",
        "opened_at",
        "probing",
        "trips",
        "shard",
        "recorder",
    )

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout: float = 0.25,
        shard: Optional[int] = None,
        recorder=None,
    ) -> None:
        if failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout <= 0:
            raise ConfigurationError(
                f"reset_timeout must be > 0, got {reset_timeout}"
            )
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.failures = 0
        self.opened_at: Optional[float] = None
        #: True while the single half-open probe is in flight.
        self.probing = False
        self.trips = 0
        #: Which shard this breaker guards (recorder events name it).
        self.shard = shard
        #: Optional :class:`~repro.obs.flight.FlightRecorder`; breaker
        #: transitions land in its ``breaker`` ring.
        self.recorder = recorder

    def state(self, now: float) -> str:
        if self.opened_at is None:
            return "closed"
        if now - self.opened_at >= self.reset_timeout:
            return "half_open"
        return "open"

    def allow(self, now: float) -> bool:
        """Whether a request may touch the guarded shard right now.

        In the half-open state exactly one caller wins the probe slot;
        the rest stay shed until the probe resolves.
        """
        state = self.state(now)
        if state == "closed":
            return True
        if state == "half_open" and not self.probing:
            self.probing = True
            rec = self.recorder
            if rec is not None:
                rec.record(
                    "breaker", "half_open", t=now, shard=self.shard
                )
            return True
        return False

    def record_success(self) -> None:
        # Only a success that actually closes an open/half-open breaker
        # is a transition worth recording — the common per-seed success
        # on a closed breaker stays free.
        if self.opened_at is not None:
            rec = self.recorder
            if rec is not None:
                rec.record("breaker", "close", shard=self.shard)
        self.failures = 0
        self.opened_at = None
        self.probing = False

    def record_failure(self, now: float) -> None:
        self.probing = False
        self.failures += 1
        if self.opened_at is not None:
            # Failed while open / half-open: restart the timeout.
            self.opened_at = now
            rec = self.recorder
            if rec is not None:
                rec.record("breaker", "reopen", t=now, shard=self.shard)
            return
        if self.failures >= self.failure_threshold:
            self.opened_at = now
            self.trips += 1
            rec = self.recorder
            if rec is not None:
                rec.record("breaker", "open", t=now, shard=self.shard)
