"""Seeded traffic/fault scenarios and the simulated-clock runner.

A :class:`Scenario` is a precomputed, sorted event list on the cluster's
simulated clock — request arrivals, shard crashes/recoveries, fault
policy swaps (brownouts), and churn write bursts.  Generators are
deterministic per seed, so a scenario run is exactly reproducible and
its SLO numbers can be recorded and regression-gated.

Five generators cover the failure modes ROADMAP item 5 names:

* :func:`calm` — steady traffic, the SLO baseline;
* :func:`diurnal` — a sinusoidal day curve;
* :func:`flash_crowd` — a hot-key arrival spike several times the
  admission rate (the shedding story);
* :func:`churn_burst` — heavy write traffic interleaved with serving;
* :func:`regional_outage` — a full shard crash and later recovery (the
  degraded-serving story);
* :func:`brownout` — a cluster-wide latency-spike window via the
  :class:`~repro.distributed.faults.FaultInjector` policy knob.

:func:`build_serving_rig` wires a full stack (network, cluster, graph,
features, encoder, service) with a catalog pre-warm — the production
pattern where a periodic batch refresh keeps a last-good embedding per
key, and online serving degrades to it under faults.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.ingest import EdgeBatch
from repro.datasets.stream import RequestStream
from repro.distributed.cluster import LocalCluster
from repro.distributed.faults import FaultPolicy
from repro.distributed.rpc import NetworkModel
from repro.errors import ConfigurationError
from repro.gnn.inference import embed_vertices
from repro.gnn.models import GraphSAGE
from repro.obs.alerts import default_serving_rules
from repro.obs.monitor import Monitor
from repro.obs.trace import Tracer
from repro.serving.service import InferenceService
from repro.serving.slo import SLOReport, build_report
from repro.storage.attributes import AttributeStore

__all__ = [
    "Scenario",
    "ScenarioRunner",
    "ServingRig",
    "build_serving_rig",
    "calm",
    "diurnal",
    "flash_crowd",
    "churn_burst",
    "regional_outage",
    "brownout",
    "run_scenario",
    "SCENARIOS",
]

#: Event kinds: ("request", vertices, req_kind), ("crash", shard),
#: ("recover", None), ("policy", FaultPolicy | None), ("churn", EdgeBatch).
Event = Tuple[float, str, object]


@dataclass
class Scenario:
    """A named, seeded event schedule (times relative to run start).

    ``seed`` records the generator seed that produced the schedule —
    incident bundles carry it so a captured run can be rebuilt
    bit-identically by :mod:`repro.obs.replay`.
    """

    name: str
    duration: float
    events: List[Event] = field(default_factory=list)
    seed: Optional[int] = None

    def sorted_events(self) -> List[Event]:
        return sorted(self.events, key=lambda e: e[0])

    @property
    def num_requests(self) -> int:
        return sum(1 for e in self.events if e[1] == "request")


# ---------------------------------------------------------------------------
# arrival helpers
# ---------------------------------------------------------------------------
def _arrivals(rate: float, start: float, end: float) -> List[float]:
    """Deterministic arrival times at a constant rate."""
    if rate <= 0:
        return []
    gap = 1.0 / rate
    out = []
    t = start
    while t < end:
        out.append(t)
        t += gap
    return out


def _request_events(
    times: Sequence[float],
    stream: RequestStream,
    link_every: int = 8,
) -> List[Event]:
    """One request per arrival: mostly single-vertex embeds, every
    ``link_every``-th a two-vertex link-prediction request."""
    events: List[Event] = []
    for i, t in enumerate(times):
        if link_every and (i + 1) % link_every == 0:
            pair = stream.batch(2)
            events.append((t, "request", ([int(pair[0]), int(pair[1])],
                                          "link")))
        else:
            key = stream.batch(1)
            events.append((t, "request", ([int(key[0])], "embed")))
    return events


# ---------------------------------------------------------------------------
# scenario generators
# ---------------------------------------------------------------------------
def calm(
    num_sources: int,
    seed: int = 0,
    duration: float = 3.0,
    rate: float = 200.0,
    exponent: float = 0.99,
) -> Scenario:
    """Steady zipf traffic — the baseline every SLO comparison uses."""
    stream = RequestStream(num_sources, exponent=exponent, seed=seed)
    events = _request_events(_arrivals(rate, 0.0, duration), stream)
    return Scenario("calm", duration, events, seed=seed)


def diurnal(
    num_sources: int,
    seed: int = 0,
    duration: float = 4.0,
    base_rate: float = 200.0,
    amplitude: float = 0.8,
    period: float = 2.0,
    exponent: float = 0.99,
) -> Scenario:
    """A sinusoidal day curve: rate(t) = base * (1 + A sin(2πt/T))."""
    if not 0.0 <= amplitude < 1.0:
        raise ConfigurationError(
            f"amplitude must be in [0, 1), got {amplitude}"
        )
    stream = RequestStream(num_sources, exponent=exponent, seed=seed)
    times: List[float] = []
    t = 0.0
    while t < duration:
        times.append(t)
        rate = base_rate * (
            1.0 + amplitude * math.sin(2.0 * math.pi * t / period)
        )
        t += 1.0 / max(rate, 1.0)
    return Scenario("diurnal", duration, _request_events(times, stream),
                    seed=seed)


def flash_crowd(
    num_sources: int,
    seed: int = 0,
    duration: float = 3.0,
    base_rate: float = 200.0,
    spike_rate: float = 6000.0,
    spike_start: float = 1.0,
    spike_end: float = 1.5,
    hot_keys: int = 32,
    exponent: float = 0.99,
) -> Scenario:
    """A hot-key arrival spike several times the admission budget.

    Base zipf traffic runs the whole window; during the spike a crowd
    hammers the ``hot_keys`` most probable keys round-robin — the keys
    the catalog pre-warm and calm phase have already cached, so shed
    requests degrade to stale answers instead of failing.
    """
    stream = RequestStream(num_sources, exponent=exponent, seed=seed)
    events = _request_events(_arrivals(base_rate, 0.0, duration), stream)
    hot = stream.hot_sources(hot_keys)
    for i, t in enumerate(_arrivals(spike_rate, spike_start, spike_end)):
        key = int(hot[i % len(hot)])
        events.append((t, "request", ([key], "embed")))
    return Scenario("flash_crowd", duration, events, seed=seed)


def churn_burst(
    num_sources: int,
    seed: int = 0,
    duration: float = 3.0,
    rate: float = 200.0,
    burst_start: float = 1.0,
    burst_end: float = 2.0,
    writes_per_second: float = 40.0,
    batch_edges: int = 64,
    exponent: float = 0.99,
) -> Scenario:
    """Serving while a write burst churns the graph underneath."""
    stream = RequestStream(num_sources, exponent=exponent, seed=seed)
    events = _request_events(_arrivals(rate, 0.0, duration), stream)
    rng = np.random.default_rng(seed + 101)
    for t in _arrivals(writes_per_second, burst_start, burst_end):
        srcs = rng.integers(0, num_sources, batch_edges).astype(np.int64)
        dsts = rng.integers(0, num_sources, batch_edges).astype(np.int64)
        weights = rng.random(batch_edges)
        events.append((t, "churn", EdgeBatch.inserts(srcs, dsts, weights)))
    return Scenario("churn_burst", duration, events, seed=seed)


def regional_outage(
    num_sources: int,
    seed: int = 0,
    duration: float = 3.0,
    rate: float = 200.0,
    crash_at: float = 1.0,
    recover_at: float = 2.0,
    shard: int = 0,
    exponent: float = 0.99,
) -> Scenario:
    """A full shard outage: keys on the dead shard serve stale answers."""
    stream = RequestStream(num_sources, exponent=exponent, seed=seed)
    events = _request_events(_arrivals(rate, 0.0, duration), stream)
    events.append((crash_at, "crash", shard))
    events.append((recover_at, "recover", None))
    return Scenario("regional_outage", duration, events, seed=seed)


def brownout(
    num_sources: int,
    seed: int = 0,
    duration: float = 3.0,
    rate: float = 200.0,
    slow_start: float = 1.0,
    slow_end: float = 2.0,
    spike_rate: float = 0.5,
    spike_seconds: float = 2e-3,
    exponent: float = 0.99,
) -> Scenario:
    """A latency brownout: the fault injector slows RPCs for a window."""
    stream = RequestStream(num_sources, exponent=exponent, seed=seed)
    events = _request_events(_arrivals(rate, 0.0, duration), stream)
    events.append((
        slow_start,
        "policy",
        FaultPolicy(
            latency_spike_rate=spike_rate,
            latency_spike_seconds=spike_seconds,
        ),
    ))
    events.append((slow_end, "policy", None))
    return Scenario("brownout", duration, events, seed=seed)


SCENARIOS = {
    "calm": calm,
    "diurnal": diurnal,
    "flash_crowd": flash_crowd,
    "churn_burst": churn_burst,
    "regional_outage": regional_outage,
    "brownout": brownout,
}


# ---------------------------------------------------------------------------
# the rig
# ---------------------------------------------------------------------------
@dataclass
class ServingRig:
    """A fully wired serving stack (simulation fixture)."""

    cluster: LocalCluster
    service: InferenceService
    features: AttributeStore
    encoder: GraphSAGE
    num_sources: int
    #: Simulated-clock tracer (``trace=True``); serving batches open
    #: ``serve.batch`` trees the critical-path report consumes.
    tracer: Optional[Tracer] = None
    #: Continuous-monitoring loop (``monitor_interval`` set).
    monitor: Optional[Monitor] = None
    #: Flight recorder (``recorder=...``); every layer's structured
    #: events, the raw material of incident bundles.
    recorder: Optional[object] = None


def build_serving_rig(
    num_shards: int = 4,
    num_sources: int = 2000,
    degree: int = 8,
    feat_dim: int = 16,
    hidden_dim: int = 16,
    out_dim: int = 8,
    fanouts: Sequence[int] = (3, 2),
    seed: int = 0,
    shedding: bool = True,
    admission_rate: float = 1200.0,
    admission_burst: float = 16.0,
    max_queue: int = 256,
    batch_window: float = 4e-3,
    max_batch: int = 16,
    default_deadline: float = 30e-3,
    compute_seconds_per_seed: float = 2.5e-4,
    staleness_budget: float = 120.0,
    breaker_threshold: int = 3,
    breaker_reset: float = 0.25,
    prewarm: bool = True,
    trace: bool = False,
    trace_sample_rate: float = 1.0,
    slow_trace_threshold: float = 8e-3,
    monitor_interval: Optional[float] = None,
    alert_rules: Optional[Sequence] = None,
    recorder=None,
) -> ServingRig:
    """One cluster + graph + features + encoder + service, pre-warmed.

    The graph keeps sources and destinations in the same ``[0,
    num_sources)`` universe so multi-hop sampling stays inside the
    feature catalog.  ``prewarm=True`` runs the catalog refresh: every
    vertex's embedding is computed once (through the degraded-row-aware
    :func:`embed_vertices`) and stamped into the service's degraded
    cache — the "last-good" state online serving falls back to.

    ``trace=True`` attaches a simulated-clock :class:`Tracer` (serving
    batches produce ``serve.batch`` span trees; roots slower than
    ``slow_trace_threshold`` also land in the slow ring).  A
    ``monitor_interval`` attaches a continuous
    :class:`~repro.obs.monitor.Monitor` scraping the registry every
    that-many simulated seconds, with ``alert_rules`` (default: the
    serving tier's :func:`~repro.obs.alerts.default_serving_rules`)
    evaluated after each scrape.

    ``recorder`` attaches a flight recorder to every layer via
    :meth:`LocalCluster.attach_recorder` — pass ``True`` for a fresh
    default-capacity one or a pre-built
    :class:`~repro.obs.flight.FlightRecorder` instance.
    """
    network = NetworkModel()
    tracer = (
        Tracer(
            clock=network.now,
            sample_rate=trace_sample_rate,
            seed=seed,
            max_traces=512,
            slow_threshold_seconds=slow_trace_threshold,
        )
        if trace
        else None
    )
    cluster = LocalCluster(
        num_servers=num_shards,
        network=network,
        fault_policy=FaultPolicy(),  # zero-rate: the brownout knob's host
        fault_seed=seed,
        degraded_reads=True,
        tracer=tracer,
    )
    rng = np.random.default_rng(seed)
    srcs = np.repeat(np.arange(num_sources, dtype=np.int64), degree)
    dsts = rng.integers(0, num_sources, srcs.size).astype(np.int64)
    cluster.client.bulk_load(srcs, dsts, 1.0)

    features = AttributeStore()
    features.register("feat", feat_dim)
    features.put_many(
        "feat",
        list(range(num_sources)),
        rng.standard_normal((num_sources, feat_dim)).astype(np.float32),
    )
    encoder = GraphSAGE(
        feat_dim, hidden_dim, out_dim, num_layers=len(fanouts),
        rng=np.random.default_rng(seed + 1),
    )
    service = InferenceService(
        cluster,
        features,
        encoder,
        fanouts,
        batch_window=batch_window,
        max_batch=max_batch,
        default_deadline=default_deadline,
        admission_rate=admission_rate,
        admission_burst=admission_burst,
        max_queue=max_queue,
        shedding=shedding,
        staleness_budget=staleness_budget,
        breaker_threshold=breaker_threshold,
        breaker_reset=breaker_reset,
        compute_seconds_per_seed=compute_seconds_per_seed,
        rng=seed + 2,
    )
    if prewarm:
        catalog = list(range(num_sources))
        matrix, skipped = embed_vertices(
            cluster.client,
            features,
            encoder,
            catalog,
            fanouts,
            rng=seed + 3,
            skip_unavailable=True,
        )
        stamped = network.now()
        missing = set(skipped)
        for i, vertex in enumerate(catalog):
            if i not in missing:
                service.cache.put(vertex, matrix[i], stamped)
    if tracer is not None:
        # Prewarm traffic produced client.* traces; drop them so the
        # rings start the scenario holding serving trees only.
        tracer.reset()
    monitor = None
    if monitor_interval is not None:
        rules = (
            list(alert_rules)
            if alert_rules is not None
            else default_serving_rules()
        )
        # Keep-list scrape (standard practice on wide registries): the
        # serving rules, the watch CLI, and the monitor's self-metrics
        # only consume these prefixes, and the pushed-down filter means
        # the other ~160 cluster series never even run their view
        # callbacks.  ``cluster.attach_monitor`` directly scrapes
        # everything if a broader store is wanted.
        monitor = cluster.attach_monitor(
            interval=monitor_interval,
            rules=rules,
            name_filter=(
                "repro_serving_",
                "repro_monitor_",
                "repro_alerts_",
                "repro_recorder_",
            ),
        )
    attached_recorder = None
    if recorder is not None and recorder is not False:
        attached_recorder = cluster.attach_recorder(
            recorder if recorder is not True else None
        )
    return ServingRig(
        cluster,
        service,
        features,
        encoder,
        num_sources,
        tracer=tracer,
        monitor=monitor,
        recorder=attached_recorder,
    )


# ---------------------------------------------------------------------------
# the runner
# ---------------------------------------------------------------------------
class ScenarioRunner:
    """Drive a :class:`Scenario` through a service on simulated time.

    Between events the runner advances the clock to each pending batch
    window so micro-batches flush exactly when they would in a live
    process; event times are relative to run start, so a rig can run
    several scenarios back to back.  A rig with a monitor attached also
    stops at every due scrape instant, so the alert timeline advances
    *during* the scenario exactly as a live scrape loop would —
    ``on_scrape(monitor, now)`` (if given) is called after each scrape,
    which is how ``repro watch`` renders its live view.
    """

    def __init__(
        self,
        rig: ServingRig,
        scenario: Scenario,
        on_scrape=None,
    ) -> None:
        self.rig = rig
        self.scenario = scenario
        self.cluster = rig.cluster
        self.service = rig.service
        self.network = rig.cluster.network
        self.monitor = rig.monitor
        self.on_scrape = on_scrape
        self._t0 = 0.0

    def _sleep_to(self, t_abs: float) -> None:
        delta = t_abs - self.network.now()
        if delta > 0:
            self.network.sleep(delta)

    def _advance_to(self, t_abs: float) -> None:
        """Run pending flushes and scrapes up to ``t_abs``, then move
        there — the clock stops at every batch window *and* every due
        monitor scrape, whichever comes first."""
        while True:
            stops = []
            flush_at = self.service.next_flush_at()
            if flush_at is not None and flush_at <= t_abs:
                stops.append(flush_at)
            if self.monitor is not None:
                due = self.monitor.next_due()
                if due <= t_abs:
                    stops.append(due)
            if not stops:
                break
            self._sleep_to(min(stops))
            self.service.poll()
            if self.monitor is not None and self.monitor.poll():
                if self.on_scrape is not None:
                    self.on_scrape(self.monitor, self.network.now())
        self._sleep_to(t_abs)

    def _dispatch(self, kind: str, payload, t_abs: float) -> None:
        if kind == "request":
            vertices, req_kind = payload
            # Under overload the runner hands requests over late; the
            # scheduled arrival keeps latency/deadline accounting honest.
            self.service.submit(vertices, kind=req_kind, arrival=t_abs)
            return
        # Chaos events land in the recorder with the scenario's seed, so
        # a brownout/outage incident bundle names exactly which seeded
        # schedule produced it (and replays bit-identically from it).
        rec = getattr(self.cluster, "recorder", None)
        if kind == "crash":
            if rec is not None:
                rec.record(
                    "chaos", "crash", t=t_abs,
                    shard=int(payload), seed=self.scenario.seed,
                )
            self.cluster.crash_shard(int(payload))
        elif kind == "recover":
            if rec is not None:
                rec.record(
                    "chaos", "recover", t=t_abs, seed=self.scenario.seed
                )
            self.cluster.recover_all(sync=True)
        elif kind == "policy":
            injector = self.cluster.fault_injector
            if injector is None:
                raise ConfigurationError(
                    "scenario swaps fault policy but the cluster has no "
                    "fault injector"
                )
            if rec is not None:
                from dataclasses import asdict

                rec.record(
                    "chaos",
                    "policy",
                    t=t_abs,
                    policy=(asdict(payload) if payload is not None
                            else "restore"),
                    seed=self.scenario.seed,
                )
            injector.set_policy(
                payload if payload is not None else self._base_policy
            )
        elif kind == "churn":
            if rec is not None:
                rec.record(
                    "chaos",
                    "churn",
                    t=t_abs,
                    ops=len(payload),
                    src_sum=int(payload.src.sum()),
                    dst_sum=int(payload.dst.sum()),
                    seed=self.scenario.seed,
                )
            self.cluster.client.apply_edge_batch(payload)
        else:
            raise ConfigurationError(f"unknown scenario event kind {kind!r}")

    def run(
        self,
        target_availability: float = 0.99,
        reset_stats: bool = True,
    ) -> SLOReport:
        """Execute the scenario; returns its :class:`SLOReport`."""
        if reset_stats:
            self.service.reset_stats()
        injector = self.cluster.fault_injector
        self._base_policy = injector.policy if injector is not None else None
        self._t0 = self.network.now()
        for t_rel, kind, payload in self.scenario.sorted_events():
            self._advance_to(self._t0 + t_rel)
            self._dispatch(kind, payload, self._t0 + t_rel)
        self._advance_to(self._t0 + self.scenario.duration)
        self.service.flush()
        if self.monitor is not None:
            # Closing scrape: the timeline's last evaluation sees the
            # post-drain counters (a spike that cleared resolves here at
            # the latest, not at the next run).
            self.monitor.scrape()
            if self.on_scrape is not None:
                self.on_scrape(self.monitor, self.network.now())
        return build_report(
            self.service,
            scenario=self.scenario.name,
            target_availability=target_availability,
            simulated_seconds=self.network.now() - self._t0,
        )

    def run_until(self, t_stop_rel: float, reset_stats: bool = True) -> None:
        """Execute only the scenario prefix up to ``t_stop_rel``.

        The incident replay harness uses this to re-run exactly the
        window an original incident captured: same prologue as
        :meth:`run`, but the event loop stops at ``t_stop_rel``
        (relative simulated seconds from run start) and there is **no**
        final queue drain or closing scrape — state is left exactly as
        it was at the captured instant, mid-flight requests included.
        Events scheduled at the stop instant still dispatch (in the
        original run they execute after the scrape that fired there).
        """
        if reset_stats:
            self.service.reset_stats()
        injector = self.cluster.fault_injector
        self._base_policy = injector.policy if injector is not None else None
        self._t0 = self.network.now()
        for t_rel, kind, payload in self.scenario.sorted_events():
            if t_rel > t_stop_rel:
                break
            self._advance_to(self._t0 + t_rel)
            self._dispatch(kind, payload, self._t0 + t_rel)
        self._advance_to(self._t0 + t_stop_rel)


def run_scenario(
    name: str,
    seed: int = 0,
    shedding: bool = True,
    rig_kwargs: Optional[Dict] = None,
    scenario_kwargs: Optional[Dict] = None,
    target_availability: float = 0.99,
) -> Tuple[ServingRig, SLOReport]:
    """Convenience wrapper: build a rig, run one named scenario."""
    if name not in SCENARIOS:
        raise ConfigurationError(
            f"unknown scenario {name!r}; choose from "
            f"{sorted(SCENARIOS)}"
        )
    rig = build_serving_rig(
        seed=seed, shedding=shedding, **(rig_kwargs or {})
    )
    scenario = SCENARIOS[name](
        rig.num_sources, seed=seed + 7, **(scenario_kwargs or {})
    )
    runner = ScenarioRunner(rig, scenario)
    report = runner.run(target_availability=target_availability)
    return rig, report
