"""Deadline-aware online inference over a :class:`LocalCluster`.

The request path the paper's production setting implies (§II-A: serving
embedding queries against the live graph ``G^(t)``), hardened for the
chaos the cluster layer can inject:

* **micro-batching** — requests collect for at most ``batch_window``
  simulated seconds or ``max_batch`` requests, then one
  sample+gather+compute pass through the cluster's batched read path;
* **admission control** — a token-bucket + queue-depth gate
  (:class:`~repro.serving.admission.AdmissionGate`) sheds load *before*
  the expensive sample step, with per-cause counters; per-shard
  :class:`~repro.serving.admission.CircuitBreaker`\\ s stop a dead shard
  from eating whole-batch deadlines;
* **deadline threading** — each batch runs under
  :meth:`GraphClient.deadline_scope` with the tightest deadline of its
  requests, so retries never burn budget a request no longer has;
* **degraded serving** — seeds on UNAVAILABLE shards (and rescued shed
  requests) answer from a staleness-bounded
  :class:`~repro.serving.degraded.DegradedAnswerCache` of last-good
  embeddings, flagged ``degraded=True``; the service never raises on
  the request path — every submitted request resolves to exactly one
  :class:`Answer` with status ``fresh`` / ``degraded`` / ``failed``.

Everything runs on the cluster's simulated clock, so scenarios are
deterministic per seed and SLO numbers are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.snapshot import RNGLike, coerce_scalar_rng
from repro.core.types import DEFAULT_ETYPE
from repro.errors import ConfigurationError
from repro.gnn.models import SampledGNN
from repro.gnn.ops import l2_normalize
from repro.gnn.samplers import sample_blocks_partial
from repro.obs.hist import LatencyHistogram
from repro.obs.trace import NULL_SPAN
from repro.serving.admission import (
    SHED_BREAKER_OPEN,
    SHED_DEADLINE_HOPELESS,
    SHED_QUEUE_FULL,
    AdmissionGate,
    CircuitBreaker,
)
from repro.serving.degraded import DegradedAnswerCache
from repro.storage.attributes import AttributeStore

__all__ = ["Answer", "InferenceService", "Request", "ServiceStats"]


class ServiceStats:
    """Request-path counters (exported as ``repro_serving_*``).

    Every submitted request resolves to exactly one of
    ``answered_fresh`` / ``answered_degraded`` / ``failed``; the
    ``shed_*`` counters record admission decisions on an independent
    axis (a shed request still resolves — degraded when the cache
    rescues it, failed otherwise).  ``deadline_missed`` counts answers
    delivered past their deadline; availability counts only in-deadline
    fresh or degraded answers.
    """

    __slots__ = (
        "submitted",
        "answered_fresh",
        "answered_degraded",
        "failed",
        "shed_queue_full",
        "shed_deadline_hopeless",
        "shed_breaker_open",
        "deadline_missed",
        "batches",
        "batched_requests",
        "sample_errors",
        "cache_fallbacks",
        "compute_seconds",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.submitted = 0
        self.answered_fresh = 0
        self.answered_degraded = 0
        self.failed = 0
        self.shed_queue_full = 0
        self.shed_deadline_hopeless = 0
        self.shed_breaker_open = 0
        self.deadline_missed = 0
        self.batches = 0
        self.batched_requests = 0
        #: Whole-batch sampling exceptions converted to degraded/failed
        #: answers (the request path itself never raises).
        self.sample_errors = 0
        #: Answers served from the degraded cache instead of a fresh pass.
        self.cache_fallbacks = 0
        self.compute_seconds = 0.0

    @property
    def shed_total(self) -> int:
        return (
            self.shed_queue_full
            + self.shed_deadline_hopeless
            + self.shed_breaker_open
        )

    @property
    def availability(self) -> float:
        """Fraction of requests answered (fresh or degraded) in deadline."""
        if not self.submitted:
            return 1.0
        good = (
            self.answered_fresh + self.answered_degraded
            - self.deadline_missed
        )
        return max(0.0, good) / self.submitted

    @property
    def degraded_fraction(self) -> float:
        answered = self.answered_fresh + self.answered_degraded
        return self.answered_degraded / answered if answered else 0.0

    def to_dict(self) -> Dict[str, float]:
        out = {name: getattr(self, name) for name in self.__slots__}
        out["shed_total"] = self.shed_total
        out["availability"] = self.availability
        out["degraded_fraction"] = self.degraded_fraction
        return out


@dataclass
class Request:
    """One inference request; ``answer`` is set exactly once."""

    request_id: int
    vertices: List[int]
    kind: str  # "embed" | "link"
    deadline: Optional[float]
    submitted_at: float
    answer: Optional["Answer"] = None


@dataclass
class Answer:
    """Resolution of one request.

    ``status`` is ``fresh`` (all rows from a live pass), ``degraded``
    (at least one row from the stale cache — ``degraded`` is True), or
    ``failed`` (no answer producible).  ``shed_cause`` records the
    admission decision when one was made, independent of the status the
    cache rescue produced.
    """

    request_id: int
    status: str
    degraded: bool = False
    shed_cause: Optional[str] = None
    embeddings: Optional[np.ndarray] = None
    score: Optional[float] = None
    latency: float = 0.0
    completed_at: float = 0.0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status in ("fresh", "degraded")


class InferenceService:
    """Micro-batching, deadline-aware inference endpoint.

    Parameters
    ----------
    cluster:
        A :class:`~repro.distributed.cluster.LocalCluster` with a
        network model attached (the simulated clock) — degraded reads
        are forced on so shard outages surface as per-seed markers
        instead of exceptions.
    features, encoder, fanouts:
        The embedding model: a local :class:`AttributeStore`, a
        :class:`SampledGNN`, and per-layer fanouts (``len(fanouts)``
        must equal the encoder depth).
    batch_window:
        Maximum simulated seconds a request waits for batch-mates.
    max_batch:
        Requests per batch; a full queue flushes immediately.
    default_deadline:
        Per-request deadline (simulated seconds from submit) when the
        caller gives none.
    admission_rate, admission_burst, max_queue:
        Token-bucket rate/burst and queue-depth bound of the admission
        gate.  ``shedding=False`` disables the gate (and expired-in-
        queue shedding) — the control arm of the SLO benchmark.
    staleness_budget, cache_capacity:
        Degraded-answer cache bounds.
    breaker_threshold, breaker_reset:
        Per-shard circuit breaker: consecutive hard failures to open,
        and the open→half-open timeout (simulated seconds).
    compute_seconds_per_seed:
        Modeled forward-pass cost charged to the simulated clock per
        seed vertex in a batch.
    """

    def __init__(
        self,
        cluster,
        features: AttributeStore,
        encoder: SampledGNN,
        fanouts: Sequence[int],
        feat_name: str = "feat",
        batch_window: float = 4e-3,
        max_batch: int = 32,
        default_deadline: float = 30e-3,
        admission_rate: float = 2000.0,
        admission_burst: float = 64.0,
        max_queue: int = 128,
        shedding: bool = True,
        staleness_budget: float = 60.0,
        cache_capacity: int = 65536,
        breaker_threshold: int = 3,
        breaker_reset: float = 0.25,
        compute_seconds_per_seed: float = 2e-5,
        rng: RNGLike = None,
        etype: int = DEFAULT_ETYPE,
    ) -> None:
        network = getattr(cluster, "network", None)
        if network is None:
            raise ConfigurationError(
                "InferenceService needs a cluster with a NetworkModel "
                "(the simulated clock deadlines are measured on)"
            )
        if len(fanouts) != encoder.num_layers:
            raise ConfigurationError(
                f"fanouts length {len(fanouts)} != encoder depth "
                f"{encoder.num_layers}"
            )
        if batch_window <= 0:
            raise ConfigurationError("batch_window must be > 0")
        if max_batch < 1:
            raise ConfigurationError("max_batch must be >= 1")
        if default_deadline <= 0:
            raise ConfigurationError("default_deadline must be > 0")
        self.cluster = cluster
        self.client = cluster.client
        self.network = network
        # Batch stages trace into the cluster's tracer (when attached),
        # nesting over the client's rpc.* spans — the tree critical-path
        # analysis attributes p999 time with.
        self.tracer = getattr(cluster, "tracer", None)
        # Shard outages must surface as per-seed markers, not exceptions.
        self.client.degraded_reads = True
        self.features = features
        self.encoder = encoder
        self.fanouts = list(fanouts)
        self.feat_name = feat_name
        self.batch_window = batch_window
        self.max_batch = max_batch
        self.default_deadline = default_deadline
        self.shedding = shedding
        self.gate = AdmissionGate(admission_rate, admission_burst, max_queue)
        self.cache = DegradedAnswerCache(staleness_budget, cache_capacity)
        self.breakers: Dict[int, CircuitBreaker] = {
            shard: CircuitBreaker(breaker_threshold, breaker_reset,
                                  shard=shard)
            for shard in range(len(cluster.servers))
        }
        #: Optional flight recorder (set via :meth:`set_recorder`).
        self.recorder = None
        self.compute_seconds_per_seed = compute_seconds_per_seed
        self.rng = coerce_scalar_rng(rng if rng is not None else 0)
        self.etype = etype
        self.stats = ServiceStats()
        self.latency_hist = LatencyHistogram()
        self.queue: List[Request] = []
        self._next_id = 0
        #: EWMA of measured per-request flush seconds (admission estimate).
        self._est_request_seconds = 1e-3
        self._register(getattr(cluster, "registry", None))
        # The cluster's reset_stats / doctor / report probe this handle.
        cluster.inference_service = self

    def _register(self, registry) -> None:
        if registry is None:
            return
        from repro.obs.instrument import register_stats

        # Guarded: a replacement service against the same registry must
        # not trip the duplicate-registration check.
        if not registry.has("repro_serving_submitted"):
            register_stats(registry, "repro_serving", self.stats)
            registry.register_view(
                "repro_serving_availability",
                lambda s=self.stats: s.availability,
                help="Fraction of requests answered in deadline",
                kind="gauge",
            )
            registry.register_view(
                "repro_serving_breaker_trips",
                lambda svc=self: float(
                    sum(b.trips for b in svc.breakers.values())
                ),
                help="Closed->open circuit breaker transitions",
            )
        if not registry.has("repro_serving_request_seconds"):
            registry.register_histogram(
                "repro_serving_request_seconds",
                self.latency_hist,
                help="End-to-end request latency (simulated seconds)",
            )

    def _tspan(self, name: str, **tags):
        """A serving-stage span (no-op without a cluster tracer)."""
        if self.tracer is None:
            return NULL_SPAN
        return self.tracer.span(name, **tags)

    def set_recorder(self, recorder) -> None:
        """Attach a flight recorder to the request path and the
        per-shard breakers (``None`` detaches)."""
        self.recorder = recorder
        for breaker in self.breakers.values():
            breaker.recorder = recorder

    # ------------------------------------------------------------------
    # request intake
    # ------------------------------------------------------------------
    def submit(
        self,
        vertices: Sequence[int],
        kind: str = "embed",
        deadline: Optional[float] = None,
        arrival: Optional[float] = None,
    ) -> Request:
        """Submit one request; returns its :class:`Request` handle.

        ``deadline`` is relative (simulated seconds from arrival); shed
        requests resolve immediately (cache rescue or failure), admitted
        requests resolve at the batch flush that includes them.

        ``arrival`` is the request's scheduled arrival time on the
        simulated clock (default: now).  The single-threaded scenario
        runner can only hand requests over after earlier work finished —
        under overload that is *later* than they arrived — so latency
        and deadlines are measured from arrival, exactly as a real
        server's accept queue would.
        """
        if kind not in ("embed", "link"):
            raise ConfigurationError(f"kind must be embed|link, got {kind!r}")
        verts = [int(v) for v in vertices]
        if not verts:
            raise ConfigurationError("a request needs at least one vertex")
        if kind == "link" and len(verts) != 2:
            raise ConfigurationError("link requests take exactly 2 vertices")
        now = self.network.now()
        arrived = now if arrival is None else min(float(arrival), now)
        request = Request(
            request_id=self._next_id,
            vertices=verts,
            kind=kind,
            deadline=arrived + (deadline if deadline is not None
                                else self.default_deadline),
            submitted_at=arrived,
        )
        self._next_id += 1
        self.stats.submitted += 1

        # Breaker gate: a hard-open breaker on any touched shard sheds
        # before queueing (half-open probes are admitted).
        open_shard = any(
            self.breakers[self.client.partitioner.shard_for(v)].state(now)
            == "open"
            for v in verts
        )
        rec = self.recorder
        if open_shard:
            self.stats.shed_breaker_open += 1
            if rec is not None:
                rec.record(
                    "admission",
                    "shed",
                    t=now,
                    request_id=request.request_id,
                    cause=SHED_BREAKER_OPEN,
                )
            self._resolve_from_cache(request, SHED_BREAKER_OPEN, now)
            return request

        if self.shedding:
            estimated = (
                now
                + self.batch_window
                + self._est_request_seconds * (len(self.queue) + 1)
            )
            cause = self.gate.check(
                now, len(self.queue), request.deadline, estimated
            )
            if cause is not None:
                if cause == SHED_QUEUE_FULL:
                    self.stats.shed_queue_full += 1
                else:
                    self.stats.shed_deadline_hopeless += 1
                if rec is not None:
                    rec.record(
                        "admission",
                        "shed",
                        t=now,
                        request_id=request.request_id,
                        cause=cause,
                    )
                self._resolve_from_cache(request, cause, now)
                return request

        if rec is not None:
            rec.record(
                "admission",
                "admit",
                t=now,
                request_id=request.request_id,
                queue_depth=len(self.queue),
            )
        self.queue.append(request)
        if len(self.queue) >= self.max_batch:
            self._flush()
        return request

    def poll(self) -> int:
        """Flush any batch whose window has elapsed; returns #flushes."""
        flushes = 0
        while self.queue and (
            self.network.now() >= self.queue[0].submitted_at
            + self.batch_window
        ):
            self._flush()
            flushes += 1
        return flushes

    def next_flush_at(self) -> Optional[float]:
        """Simulated time the oldest queued request's window elapses."""
        if not self.queue:
            return None
        return self.queue[0].submitted_at + self.batch_window

    def flush(self) -> None:
        """Force-drain the queue (scenario teardown)."""
        while self.queue:
            self._flush()

    # ------------------------------------------------------------------
    # batch execution
    # ------------------------------------------------------------------
    def _flush(self) -> None:
        batch = self.queue[: self.max_batch]
        del self.queue[: len(batch)]
        now = self.network.now()
        self.stats.batches += 1
        self.stats.batched_requests += len(batch)

        rec = self.recorder
        live: List[Request] = []
        for request in batch:
            # Expired while queued: with shedding on, cut losses before
            # the sample; without, process anyway (it will miss).
            if (
                self.shedding
                and request.deadline is not None
                and now >= request.deadline
            ):
                self.stats.shed_deadline_hopeless += 1
                if rec is not None:
                    rec.record(
                        "admission",
                        "shed",
                        t=now,
                        request_id=request.request_id,
                        cause=SHED_DEADLINE_HOPELESS,
                    )
                self._resolve_from_cache(
                    request, SHED_DEADLINE_HOPELESS, now
                )
                continue
            live.append(request)
        if not live:
            return

        # Per-shard breaker probe gating, once per shard per batch.
        shard_of = self.client.partitioner.shard_for
        batch_shards = {shard_of(v) for r in live for v in r.vertices}
        allowed_shards = {
            shard for shard in batch_shards
            if self.breakers[shard].allow(now)
        }
        runnable: List[Request] = []
        for request in live:
            if all(shard_of(v) in allowed_shards for v in request.vertices):
                runnable.append(request)
            else:
                self.stats.shed_breaker_open += 1
                if rec is not None:
                    rec.record(
                        "admission",
                        "shed",
                        t=now,
                        request_id=request.request_id,
                        cause=SHED_BREAKER_OPEN,
                    )
                self._resolve_from_cache(request, SHED_BREAKER_OPEN, now)
        if not runnable:
            return

        seeds: List[int] = []
        offsets: List[int] = [0]
        for request in runnable:
            seeds.extend(request.vertices)
            offsets.append(len(seeds))
        deadlines = [r.deadline for r in runnable if r.deadline is not None]
        scope = min(deadlines) if deadlines else None

        flush_started = now
        batch_span = self._tspan(
            "serve.batch", requests=len(runnable), seeds=len(seeds)
        )
        with batch_span:
            try:
                with self._tspan("serve.sample", seeds=len(seeds)):
                    with self.client.deadline_scope(scope):
                        blocks, served_idx, unavailable_idx = (
                            sample_blocks_partial(
                                self.client,
                                seeds,
                                self.fanouts,
                                self.rng,
                                self.etype,
                            )
                        )
            except Exception as exc:  # deadline blown mid-batch, hard faults
                self.stats.sample_errors += 1
                batch_span.set_tag("error", type(exc).__name__)
                completed = self.network.now()
                for request in runnable:
                    self._resolve_from_cache(
                        request, None, completed, error=repr(exc)
                    )
                return

            embeddings: Dict[int, np.ndarray] = {}
            if blocks is not None:
                with self._tspan("serve.gather", levels=len(blocks.levels)):
                    feats = [
                        self.features.gather(self.feat_name, level.tolist())
                        for level in blocks.levels
                    ]
                with self._tspan("serve.compute", seeds=len(served_idx)):
                    out = self.encoder.forward(feats, blocks.fanouts)
                    for layer in self.encoder.layers:
                        layer._cache.clear()
                    out = l2_normalize(out.astype(np.float32))
                    cost = self.compute_seconds_per_seed * len(served_idx)
                    self.stats.compute_seconds += cost
                    self.network.sleep(cost)
                completed = self.network.now()
                for row, i in enumerate(served_idx):
                    embeddings[i] = out[row]
                    self.cache.put(seeds[i], out[row], completed)
                # Admission estimate: EWMA of marginal per-request batch
                # cost (sample + compute, amortised over the batch).
                per_request = (completed - flush_started) / len(runnable)
                self._est_request_seconds = (
                    0.8 * self._est_request_seconds + 0.2 * per_request
                )
            else:
                completed = self.network.now()

        # Breaker feedback: UNAVAILABLE seeds fail their shard, served
        # seeds heal it.
        for i in unavailable_idx:
            self.breakers[shard_of(seeds[i])].record_failure(completed)
        for i in served_idx:
            self.breakers[shard_of(seeds[i])].record_success()

        unavailable = set(unavailable_idx)
        for j, request in enumerate(runnable):
            positions = range(offsets[j], offsets[j + 1])
            rows: List[Optional[np.ndarray]] = []
            degraded = False
            for i in positions:
                if i in unavailable:
                    stale = self.cache.get(seeds[i], completed)
                    if stale is None:
                        rows.append(None)
                    else:
                        rows.append(stale)
                        degraded = True
                else:
                    rows.append(embeddings[i])
            if any(row is None for row in rows):
                self._finish(
                    request,
                    Answer(
                        request_id=request.request_id,
                        status="failed",
                        error="seed unavailable and not in degraded cache",
                    ),
                    completed,
                )
                continue
            if degraded:
                self.stats.cache_fallbacks += 1
            matrix = np.stack(rows)
            score = (
                float(matrix[0] @ matrix[1])
                if request.kind == "link"
                else None
            )
            self._finish(
                request,
                Answer(
                    request_id=request.request_id,
                    status="degraded" if degraded else "fresh",
                    degraded=degraded,
                    embeddings=matrix,
                    score=score,
                ),
                completed,
            )

    # ------------------------------------------------------------------
    # resolution helpers
    # ------------------------------------------------------------------
    def _resolve_from_cache(
        self,
        request: Request,
        cause: Optional[str],
        now: float,
        error: Optional[str] = None,
    ) -> None:
        """Answer a request without a fresh pass: stale cache or failure."""
        rows = [self.cache.get(v, now) for v in request.vertices]
        if all(row is not None for row in rows):
            matrix = np.stack(rows)
            self.stats.cache_fallbacks += 1
            answer = Answer(
                request_id=request.request_id,
                status="degraded",
                degraded=True,
                shed_cause=cause,
                embeddings=matrix,
                score=(
                    float(matrix[0] @ matrix[1])
                    if request.kind == "link"
                    else None
                ),
                error=error,
            )
        else:
            answer = Answer(
                request_id=request.request_id,
                status="failed",
                shed_cause=cause,
                error=error or "no fresh answer and degraded cache miss",
            )
        self._finish(request, answer, now)

    def _finish(self, request: Request, answer: Answer, now: float) -> None:
        answer.completed_at = now
        answer.latency = max(0.0, now - request.submitted_at)
        request.answer = answer
        self.latency_hist.record(answer.latency)
        if answer.status == "fresh":
            self.stats.answered_fresh += 1
        elif answer.status == "degraded":
            self.stats.answered_degraded += 1
        else:
            self.stats.failed += 1
        if (
            answer.ok
            and request.deadline is not None
            and now > request.deadline
        ):
            self.stats.deadline_missed += 1

    def reset_stats(self) -> None:
        """Zero request counters, the latency histogram, and cache stats
        (breaker state is operational and survives)."""
        self.stats.reset()
        self.latency_hist.reset()
        self.cache.reset_stats()
